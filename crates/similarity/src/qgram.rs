//! q-gram profiles and Jaccard similarity over them.
//!
//! q-grams are the third similarity predicate family the paper names for
//! MDs (§2.2). A string's q-gram profile is the multiset of its length-`q`
//! character windows, with `q-1` padding sentinels on each side so that
//! prefixes/suffixes carry weight. Similarity is Jaccard over the profiles
//! (multiset intersection / union).
//!
//! Profiles are stored as a **sorted run-length vector of 64-bit gram
//! hashes** rather than a `HashMap<Vec<char>, u32>`: intersection becomes
//! a cache-friendly sorted merge with zero per-gram allocation, and the
//! same hashes feed the inverted lists of [`crate::qgram_index`]. Two
//! distinct grams colliding on a 64-bit hash would overestimate overlap;
//! at 2⁻⁶⁴ per pair this never occurs on real vocabularies, and for the
//! blocking index an overestimate is conservative (extra candidates, never
//! a lost match).
//!
//! ASCII window hashing dispatches through [`crate::simd`] — multiple FNV
//! lanes per vector on AVX2/SSE4.2, bit-identical to the scalar chain — and
//! the batched index build recycles whole profile vectors through
//! [`ProfilePool`] instead of allocating per chunk.

/// Sentinel used to pad string boundaries; outside any realistic alphabet.
const PAD: char = '\u{1}';

/// FNV-1a over the code points of one length-`q` window. All grams of a
/// profile share one length, so no prefix ambiguity enters the hash.
#[inline]
fn hash_gram(w: &[char]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &c in w {
        h ^= c as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Byte-window variant of [`hash_gram`]. For ASCII text the byte value *is*
/// the code point (and [`PAD`] is byte `0x01`), so this produces bit-for-bit
/// the same hashes as the char path — profiles built on either path compare.
#[inline]
pub(crate) fn hash_gram_bytes(w: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in w {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Reusable buffers for profile construction: the padded string and the raw
/// window hashes before they are sorted into runs. One per probe thread.
#[derive(Debug, Default, Clone)]
pub struct ProfileScratch {
    chars: Vec<char>,
    bytes: Vec<u8>,
    hashes: Vec<u64>,
}

impl ProfileScratch {
    /// Fresh scratch with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The multiset of padded q-grams of a string, as sorted `(hash, count)`
/// runs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QGramProfile {
    q: usize,
    /// Sorted by hash; counts are multiplicities.
    grams: Vec<(u64, u32)>,
    total: u32,
}

impl QGramProfile {
    /// Build the profile of `s` for window size `q` (≥ 1).
    pub fn new(s: &str, q: usize) -> Self {
        Self::new_with(s, q, &mut ProfileScratch::new())
    }

    /// [`QGramProfile::new`] reusing `scratch` buffers for the padded string
    /// and unsorted hashes (the profile's own run vector is still allocated;
    /// use [`QGramProfile::rebuild`] to recycle that too).
    pub fn new_with(s: &str, q: usize, scratch: &mut ProfileScratch) -> Self {
        let mut p = QGramProfile {
            q,
            grams: Vec::new(),
            total: 0,
        };
        p.rebuild(s, q, scratch);
        p
    }

    /// Rebuild this profile in place for a new string, reusing every buffer.
    /// ASCII strings are hashed as byte windows (identical hashes — for
    /// ASCII the byte value is the code point); others fall back to chars.
    pub fn rebuild(&mut self, s: &str, q: usize, scratch: &mut ProfileScratch) {
        assert!(q >= 1, "q-gram size must be at least 1");
        self.q = q;
        self.grams.clear();
        let hashes = &mut scratch.hashes;
        hashes.clear();
        if s.is_ascii() {
            let padded = &mut scratch.bytes;
            padded.clear();
            padded.resize(q - 1, PAD as u8);
            padded.extend_from_slice(s.as_bytes());
            padded.resize(padded.len() + q - 1, PAD as u8);
            if padded.len() >= q {
                crate::simd::hash_gram_windows(padded, q, hashes);
            }
        } else {
            let padded = &mut scratch.chars;
            padded.clear();
            padded.resize(q - 1, PAD);
            padded.extend(s.chars());
            padded.resize(padded.len() + q - 1, PAD);
            if padded.len() >= q {
                hashes.extend(padded.windows(q).map(hash_gram));
            }
        }
        self.total = hashes.len() as u32;
        hashes.sort_unstable();
        for &h in hashes.iter() {
            match self.grams.last_mut() {
                Some((g, c)) if *g == h => *c += 1,
                _ => self.grams.push((h, 1)),
            }
        }
    }

    /// Window size.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Character length of the profiled string: a padded profile of a
    /// length-`n` string has exactly `n + q − 1` windows (`q − 1` for the
    /// empty string, whose `n` is 0).
    pub fn char_len(&self) -> usize {
        (self.total as usize).saturating_sub(self.q - 1)
    }

    /// Number of grams (with multiplicity).
    pub fn len(&self) -> usize {
        self.total as usize
    }

    /// Is the profile empty (only possible for the empty string with q=1)?
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The sorted `(gram hash, multiplicity)` runs — the inverted index of
    /// [`crate::qgram_index`] builds its posting lists from these.
    pub fn grams(&self) -> &[(u64, u32)] {
        &self.grams
    }

    /// Multiset-intersection size with another profile (sorted merge,
    /// allocation-free).
    pub fn intersection(&self, other: &QGramProfile) -> usize {
        assert_eq!(self.q, other.q, "profiles must share the q value");
        let (a, b) = (&self.grams, &other.grams);
        let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    inter += a[i].1.min(b[j].1) as usize;
                    i += 1;
                    j += 1;
                }
            }
        }
        inter
    }

    /// Multiset Jaccard similarity `|A ∩ B| / |A ∪ B|` in `[0, 1]`.
    pub fn jaccard(&self, other: &QGramProfile) -> f64 {
        let inter = self.intersection(other);
        let union = self.len() + other.len() - inter;
        if union == 0 {
            // Both profiles empty ⇒ both strings empty ⇒ identical.
            return 1.0;
        }
        inter as f64 / union as f64
    }
}

/// One-shot q-gram Jaccard similarity.
pub fn qgram_jaccard(a: &str, b: &str, q: usize) -> f64 {
    QGramProfile::new(a, q).jaccard(&QGramProfile::new(b, q))
}

/// A reusable profile-build arena: one [`ProfileScratch`] plus a vector of
/// [`QGramProfile`]s whose per-profile run allocations are retained across
/// batches (profiles are rebuilt in place, never dropped). Checked out of
/// the global [`ProfilePool`] by each worker of the batched index build.
#[derive(Debug, Default)]
pub struct ProfileArena {
    scratch: ProfileScratch,
    profiles: Vec<QGramProfile>,
    /// Logical length of the current batch; `profiles[len..]` are warm
    /// spares kept for their capacity.
    len: usize,
}

impl ProfileArena {
    /// Start a new batch, keeping every profile allocation for reuse.
    pub fn begin(&mut self) {
        self.len = 0;
    }

    /// Append the profile of `s` to the current batch, rebuilding a retired
    /// profile in place when one is available.
    pub fn push(&mut self, s: &str, q: usize) {
        if self.len < self.profiles.len() {
            self.profiles[self.len].rebuild(s, q, &mut self.scratch);
        } else {
            self.profiles
                .push(QGramProfile::new_with(s, q, &mut self.scratch));
        }
        self.len += 1;
    }

    /// The profiles of the current batch, in push order.
    pub fn profiles(&self) -> &[QGramProfile] {
        &self.profiles[..self.len]
    }
}

/// Process-wide bounded pool of [`ProfileArena`]s. The batched `from_parts`
/// index build previously allocated a fresh profile vector (and every
/// per-profile run vector inside it) per worker chunk per rebuild; rounds
/// of self-matching rebuild the master index every round, so those arenas
/// are now recycled here instead.
#[derive(Debug, Default)]
pub struct ProfilePool {
    arenas: std::sync::Mutex<Vec<ProfileArena>>,
}

/// Arenas retained by the pool at most; checkouts beyond this are built
/// fresh and dropped on return. Bounds worst-case idle memory while
/// covering any realistic worker count.
const MAX_POOLED_ARENAS: usize = 32;

impl ProfilePool {
    /// The process-wide pool.
    pub fn global() -> &'static ProfilePool {
        static POOL: std::sync::OnceLock<ProfilePool> = std::sync::OnceLock::new();
        POOL.get_or_init(ProfilePool::default)
    }

    /// Check out an arena (recycled if one is pooled, fresh otherwise),
    /// ready for a new batch. Returned to the pool when the guard drops.
    pub fn checkout(&'static self) -> PooledArena {
        let mut arena = self
            .arenas
            .lock()
            .expect("profile pool lock")
            .pop()
            .unwrap_or_default();
        arena.begin();
        PooledArena {
            pool: self,
            arena: Some(arena),
        }
    }

    fn give_back(&self, arena: ProfileArena) {
        let mut arenas = self.arenas.lock().expect("profile pool lock");
        if arenas.len() < MAX_POOLED_ARENAS {
            arenas.push(arena);
        }
    }

    /// Number of arenas currently idle in the pool (test/bench observability).
    pub fn idle(&self) -> usize {
        self.arenas.lock().expect("profile pool lock").len()
    }
}

/// Checkout guard for a pooled [`ProfileArena`]; derefs to the arena and
/// returns it to the pool on drop.
#[derive(Debug)]
pub struct PooledArena {
    pool: &'static ProfilePool,
    arena: Option<ProfileArena>,
}

impl std::ops::Deref for PooledArena {
    type Target = ProfileArena;
    fn deref(&self) -> &ProfileArena {
        self.arena.as_ref().expect("arena present until drop")
    }
}

impl std::ops::DerefMut for PooledArena {
    fn deref_mut(&mut self) -> &mut ProfileArena {
        self.arena.as_mut().expect("arena present until drop")
    }
}

impl Drop for PooledArena {
    fn drop(&mut self) {
        if let Some(arena) = self.arena.take() {
            self.pool.give_back(arena);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_strings_score_one() {
        assert_eq!(qgram_jaccard("database", "database", 2), 1.0);
    }

    #[test]
    fn disjoint_strings_score_zero() {
        assert_eq!(qgram_jaccard("aaa", "bbb", 2), 0.0);
    }

    #[test]
    fn empty_vs_empty_is_one() {
        assert_eq!(qgram_jaccard("", "", 2), 1.0);
    }

    #[test]
    fn empty_vs_nonempty_is_zero() {
        assert_eq!(qgram_jaccard("", "abc", 2), 0.0);
    }

    #[test]
    fn profile_counts_multiplicity() {
        // "aaa" with q=2 padded: #a aa aa a# → aa twice.
        let p = QGramProfile::new("aaa", 2);
        assert_eq!(p.len(), 4);
        let other = QGramProfile::new("aa", 2); // #a aa a#
        assert_eq!(p.intersection(&other), 3);
    }

    #[test]
    fn grams_are_sorted_runs() {
        let p = QGramProfile::new("banana", 2);
        assert!(p.grams().windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(
            p.grams().iter().map(|&(_, c)| c as usize).sum::<usize>(),
            p.len()
        );
    }

    #[test]
    fn similar_strings_score_high() {
        let s = qgram_jaccard("Robert Brady", "Robert Bradey", 2);
        assert!(s > 0.7, "got {s}");
        let d = qgram_jaccard("Robert Brady", "Mark Smith", 2);
        assert!(d < 0.2, "got {d}");
    }

    #[test]
    #[should_panic(expected = "q-gram size")]
    fn zero_q_rejected() {
        QGramProfile::new("abc", 0);
    }

    #[test]
    #[should_panic(expected = "share the q value")]
    fn mismatched_q_rejected() {
        QGramProfile::new("a", 2).jaccard(&QGramProfile::new("a", 3));
    }

    #[test]
    fn byte_and_char_gram_hashes_agree_on_ascii() {
        let w = ['\u{1}', 'a', 'Z', '~'];
        let b: Vec<u8> = w.iter().map(|&c| c as u8).collect();
        for q in 1..=4 {
            assert_eq!(hash_gram(&w[..q]), hash_gram_bytes(&b[..q]));
        }
    }

    #[test]
    fn char_len_recovers_string_length() {
        for q in 1..4 {
            for s in ["", "a", "banana", "日本語"] {
                assert_eq!(
                    QGramProfile::new(s, q).char_len(),
                    s.chars().count(),
                    "s={s:?} q={q}"
                );
            }
        }
    }

    #[test]
    fn arena_rebuilds_profiles_in_place() {
        let mut arena = ProfileArena::default();
        arena.begin();
        for s in ["banana", "bandana", ""] {
            arena.push(s, 2);
        }
        assert_eq!(arena.profiles().len(), 3);
        assert_eq!(arena.profiles()[1], QGramProfile::new("bandana", 2));
        // A second, shorter batch truncates logically but keeps capacity.
        arena.begin();
        arena.push("cab", 3);
        assert_eq!(arena.profiles().len(), 1);
        assert_eq!(arena.profiles()[0], QGramProfile::new("cab", 3));
    }

    #[test]
    fn pool_recycles_arenas() {
        let pool = ProfilePool::global();
        {
            let mut arena = pool.checkout();
            arena.push("warm", 2);
        }
        let idle = pool.idle();
        assert!(idle >= 1, "returned arena should be pooled, idle={idle}");
        let arena = pool.checkout();
        assert_eq!(arena.profiles().len(), 0, "checkout starts a fresh batch");
    }

    proptest! {
        /// The ASCII byte path and the char path hash identically, and a
        /// dirty reused scratch never leaks state between builds.
        #[test]
        fn rebuild_matches_fresh_build(a in "[a-d]{0,12}", b in "[abé日]{0,12}", q in 1usize..4) {
            let mut scratch = ProfileScratch::new();
            let mut p = QGramProfile::new_with(&a, q, &mut scratch); // dirty the scratch
            p.rebuild(&b, q, &mut scratch);
            prop_assert_eq!(p, QGramProfile::new(&b, q));
        }

        #[test]
        fn jaccard_in_unit_interval(a in "[a-d]{0,12}", b in "[a-d]{0,12}", q in 1usize..4) {
            let s = qgram_jaccard(&a, &b, q);
            prop_assert!((0.0..=1.0).contains(&s));
        }

        #[test]
        fn jaccard_symmetric(a in "[a-d]{0,12}", b in "[a-d]{0,12}", q in 1usize..4) {
            prop_assert_eq!(qgram_jaccard(&a, &b, q).to_bits(), qgram_jaccard(&b, &a, q).to_bits());
        }

        #[test]
        fn jaccard_identity(a in "[a-d]{0,12}", q in 1usize..4) {
            prop_assert_eq!(qgram_jaccard(&a, &a, q), 1.0);
        }

        #[test]
        fn intersection_bounded_by_sizes(a in "[a-d]{0,12}", b in "[a-d]{0,12}", q in 1usize..4) {
            let pa = QGramProfile::new(&a, q);
            let pb = QGramProfile::new(&b, q);
            let i = pa.intersection(&pb);
            prop_assert!(i <= pa.len() && i <= pb.len());
        }

        /// The char-multiset overlap (q=1 profile intersection) upper-bounds
        /// the number of Jaro matching characters — the invariant the Jaro
        /// prefilter of the q-gram index rests on.
        #[test]
        fn one_gram_overlap_bounds_jaro_matches(a in "[a-d]{0,10}", b in "[a-d]{0,10}") {
            let overlap = QGramProfile::new(&a, 1).intersection(&QGramProfile::new(&b, 1));
            let j = crate::jaro::jaro(&a, &b);
            let (la, lb) = (a.chars().count(), b.chars().count());
            if la > 0 && lb > 0 {
                // j ≤ (m/la + m/lb + 1)/3 with m ≤ overlap.
                let m = overlap as f64;
                let ceiling = (m / la as f64 + m / lb as f64 + 1.0) / 3.0;
                prop_assert!(j <= ceiling + 1e-9, "jaro {j} exceeds overlap ceiling {ceiling}");
            }
        }
    }
}
