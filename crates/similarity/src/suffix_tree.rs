//! Generalized suffix tree over a corpus of strings.
//!
//! §5.2 of the paper: "we generalize suffix trees as an index for LCS. For
//! each attribute that needs similarity checking, a generalized suffix tree
//! is maintained on those strings in the active domain of the attribute in
//! Dm. … To look up a string v of length |v|, we can extract the subtree T
//! of the suffix tree that only contains branches related to v, which
//! contains at most |v|² nodes. We traverse T bottom-up to pick top-l
//! similar strings in terms of the length of the LCS."
//!
//! Construction is Ukkonen's online algorithm — O(total corpus length) — over
//! the concatenation of the corpus strings joined by per-string unique
//! separator symbols (code points above the Unicode range, so they can never
//! collide with content and never occur twice, which keeps every *internal*
//! node's path label separator-free, i.e. a genuine substring of a single
//! corpus string).
//!
//! Queries follow the paper's O(|v|²) walk: for every suffix of the query we
//! descend from the root as far as the tree allows ([`matching
//! statistics`](GeneralizedSuffixTree::matching_statistics)); the subtree
//! below each deepest point names exactly the corpus strings containing that
//! match. [`crate::blocking::LcsBlocker`] builds top-`l` retrieval on top.

use std::collections::BTreeMap;

/// First symbol value used for separators (one past the Unicode maximum).
const SEPARATOR_BASE: u32 = 0x11_0000;

/// Sentinel edge end meaning "the current end of the text" during
/// construction; patched to the final length afterwards.
const OPEN_END: usize = usize::MAX;

#[derive(Debug)]
struct Node {
    /// Incoming edge label: `text[start..end]`.
    start: usize,
    end: usize,
    /// Suffix link (root for nodes without one).
    slink: usize,
    /// Children keyed by the first symbol of the outgoing edge. Ordered
    /// (`BTreeMap`) so every traversal — in particular the top-`l` DFS
    /// that breaks LCS ties — visits children in a canonical,
    /// process-independent order; a `HashMap` here made tie-breaking
    /// depend on `RandomState`, which leaked nondeterminism into blocked
    /// MD candidate lists whenever more than `l` values tied.
    next: BTreeMap<u32, usize>,
    /// Length of the path label from the root to this node (filled in after
    /// construction).
    depth: usize,
    /// For leaves: the corpus string whose suffix this leaf represents
    /// (`None` for leaves whose suffix starts at a separator).
    string_id: Option<u32>,
}

impl Node {
    fn new(start: usize, end: usize) -> Self {
        Node {
            start,
            end,
            slink: 0,
            next: BTreeMap::new(),
            depth: 0,
            string_id: None,
        }
    }
}

/// A location reached while matching a query against the tree: the node at
/// or *below* the end of the match (for mid-edge matches, the edge's child).
/// Every corpus string in this node's subtree contains the matched text.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MatchLoc {
    /// Matched length for this query suffix.
    pub len: usize,
    /// Attribution node index (see above), if anything matched.
    node: usize,
}

/// Generalized suffix tree over an immutable corpus.
pub struct GeneralizedSuffixTree {
    text: Vec<u32>,
    nodes: Vec<Node>,
    /// For every text position, the corpus string it belongs to (`None` on
    /// separators).
    pos_string: Vec<Option<u32>>,
    corpus_len: usize,
}

impl GeneralizedSuffixTree {
    /// Build the tree over `strings`. Order defines the string ids reported
    /// by queries.
    pub fn build<S: AsRef<str>>(strings: &[S]) -> Self {
        assert!(
            strings.len() <= (u32::MAX - SEPARATOR_BASE) as usize,
            "corpus too large for separator space"
        );
        let mut text: Vec<u32> = Vec::new();
        let mut pos_string: Vec<Option<u32>> = Vec::new();
        for (i, s) in strings.iter().enumerate() {
            for ch in s.as_ref().chars() {
                text.push(ch as u32);
                pos_string.push(Some(i as u32));
            }
            text.push(SEPARATOR_BASE + i as u32);
            pos_string.push(None);
        }
        let mut tree = Builder::new(&text).run();
        // Patch leaf ends, compute depths and attribute leaves to strings.
        let text_len = text.len();
        for node in tree.iter_mut() {
            if node.end == OPEN_END {
                node.end = text_len;
            }
        }
        let mut gst = GeneralizedSuffixTree {
            text,
            nodes: tree,
            pos_string,
            corpus_len: strings.len(),
        };
        gst.compute_depths_and_ids();
        gst
    }

    /// Number of corpus strings.
    pub fn corpus_len(&self) -> usize {
        self.corpus_len
    }

    /// Number of tree nodes (diagnostic; linear in the corpus size).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn compute_depths_and_ids(&mut self) {
        // Iterative DFS from the root.
        let mut stack = vec![0usize];
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(n) = stack.pop() {
            order.push(n);
            let children: Vec<usize> = self.nodes[n].next.values().copied().collect();
            for c in children {
                let d = self.nodes[n].depth + (self.nodes[c].end - self.nodes[c].start);
                self.nodes[c].depth = d;
                stack.push(c);
            }
        }
        let text_len = self.text.len();
        for i in 0..self.nodes.len() {
            if i != 0 && self.nodes[i].next.is_empty() {
                // Leaf: suffix starts at text_len - depth.
                let suffix_start = text_len - self.nodes[i].depth;
                self.nodes[i].string_id = self.pos_string[suffix_start];
            }
        }
    }

    /// Does the corpus contain `pat` as a substring of some string?
    pub fn contains_substring(&self, pat: &str) -> bool {
        let syms: Vec<u32> = pat.chars().map(|c| c as u32).collect();
        self.walk_from_root(&syms).len == syms.len()
    }

    /// Descend from the root matching `syms` as far as possible, returning
    /// only the deepest location (membership checks).
    fn walk_from_root(&self, syms: &[u32]) -> MatchLoc {
        let mut deepest = MatchLoc { len: 0, node: 0 };
        self.walk_path(syms, |loc| deepest = loc);
        deepest
    }

    /// Descend from the root matching `syms`, invoking `visit` for every
    /// location on the path whose subtree attribution changes: each internal
    /// node reached exactly (with its depth as the matched length) and, if
    /// the match ends mid-edge, the edge's child with the full matched
    /// length.
    ///
    /// Per-string semantics: a corpus string `s` contains the prefix
    /// `syms[..len]` iff `s` lies in the subtree of a visited location with
    /// that `len` — crediting only the deepest location would wrongly zero
    /// out strings that share a shorter prefix of the match.
    fn walk_path(&self, syms: &[u32], mut visit: impl FnMut(MatchLoc)) {
        let mut node = 0usize;
        let mut matched = 0usize;
        loop {
            if matched == syms.len() {
                return;
            }
            let Some(&child) = self.nodes[node].next.get(&syms[matched]) else {
                return;
            };
            let c = &self.nodes[child];
            let edge = &self.text[c.start..c.end];
            let mut k = 0usize;
            while k < edge.len() && matched < syms.len() && edge[k] == syms[matched] {
                k += 1;
                matched += 1;
            }
            // Whether we consumed the whole edge or stopped midway, every
            // string under `child` shares the matched prefix.
            visit(MatchLoc {
                len: matched,
                node: child,
            });
            if k < edge.len() {
                return;
            }
            node = child;
        }
    }

    /// Matching statistics: for every start position `i` of `query`, the
    /// longest prefix of `query[i..]` occurring in the corpus and the node
    /// whose subtree holds every string containing it.
    ///
    /// This is the paper's O(|v|²) "extract the subtree related to v" walk.
    pub fn matching_statistics(&self, query: &str) -> Vec<MatchLoc> {
        let syms: Vec<u32> = query.chars().map(|c| c as u32).collect();
        (0..syms.len())
            .map(|i| self.walk_from_root(&syms[i..]))
            .collect()
    }

    /// All attribution locations across every query suffix (see
    /// [`Self::walk_path`]); the complete O(|v|²) evidence set from which
    /// exact per-string LCS lengths are derived.
    fn all_locations(&self, query: &str) -> Vec<MatchLoc> {
        let syms: Vec<u32> = query.chars().map(|c| c as u32).collect();
        let mut locs = Vec::new();
        for i in 0..syms.len() {
            self.walk_path(&syms[i..], |loc| locs.push(loc));
        }
        locs
    }

    /// Collect the distinct corpus strings in `node`'s subtree into `out`,
    /// honouring `seen` as a dedup set; stops early once `limit` total
    /// strings are in `out`.
    fn collect_strings(
        &self,
        node: usize,
        seen: &mut [bool],
        out: &mut Vec<(usize, usize)>,
        lcs_len: usize,
        limit: usize,
    ) {
        let mut stack = vec![node];
        while let Some(n) = stack.pop() {
            if out.len() >= limit {
                return;
            }
            let nd = &self.nodes[n];
            if nd.next.is_empty() {
                if let Some(id) = nd.string_id {
                    let id = id as usize;
                    if !seen[id] {
                        seen[id] = true;
                        out.push((id, lcs_len));
                    }
                }
            } else {
                stack.extend(nd.next.values().copied());
            }
        }
    }

    /// Top-`l` corpus strings by LCS length with `query`, as
    /// `(string_id, lcs_len)` pairs in non-increasing `lcs_len` order.
    /// Strings whose LCS is below `min_len` are not reported.
    ///
    /// The result is exact: positions are processed in decreasing matched
    /// length, so the first time a string surfaces, the current length *is*
    /// its LCS with the query.
    pub fn top_l_by_lcs(&self, query: &str, l: usize, min_len: usize) -> Vec<(usize, usize)> {
        if l == 0 {
            return Vec::new();
        }
        let mut stats = self.all_locations(query);
        stats.retain(|m| m.len >= min_len.max(1));
        stats.sort_by_key(|m| std::cmp::Reverse(m.len));
        let mut seen = vec![false; self.corpus_len];
        let mut out = Vec::with_capacity(l.min(self.corpus_len));
        for m in stats {
            if out.len() >= l {
                break;
            }
            self.collect_strings(m.node, &mut seen, &mut out, m.len, l);
        }
        out
    }

    /// LCS length of `query` with *every* corpus string (index = string id).
    /// Reference path used by tests and small corpora; O(|v|·corpus).
    pub fn lcs_with_all(&self, query: &str) -> Vec<usize> {
        let mut best = vec![0usize; self.corpus_len];
        for m in self.all_locations(query) {
            if m.len == 0 {
                continue;
            }
            // Full DFS, updating every string in the subtree.
            let mut stack = vec![m.node];
            while let Some(n) = stack.pop() {
                let nd = &self.nodes[n];
                if nd.next.is_empty() {
                    if let Some(id) = nd.string_id {
                        let id = id as usize;
                        best[id] = best[id].max(m.len);
                    }
                } else {
                    stack.extend(nd.next.values().copied());
                }
            }
        }
        best
    }
}

/// Ukkonen construction state.
struct Builder<'a> {
    text: &'a [u32],
    nodes: Vec<Node>,
    active_node: usize,
    active_edge: usize,
    active_len: usize,
    remainder: usize,
    need_slink: usize,
}

impl<'a> Builder<'a> {
    fn new(text: &'a [u32]) -> Self {
        Builder {
            text,
            nodes: vec![Node::new(0, 0)], // root
            active_node: 0,
            active_edge: 0,
            active_len: 0,
            remainder: 0,
            need_slink: 0,
        }
    }

    fn edge_length(&self, node: usize, pos: usize) -> usize {
        let n = &self.nodes[node];
        n.end.min(pos + 1) - n.start
    }

    fn add_slink(&mut self, node: usize) {
        if self.need_slink != 0 {
            self.nodes[self.need_slink].slink = node;
        }
        self.need_slink = node;
    }

    fn extend(&mut self, pos: usize) {
        self.need_slink = 0;
        self.remainder += 1;
        let c = self.text[pos];
        while self.remainder > 0 {
            if self.active_len == 0 {
                self.active_edge = pos;
            }
            let edge_sym = self.text[self.active_edge];
            let existing = self.nodes[self.active_node].next.get(&edge_sym).copied();
            match existing {
                None => {
                    let leaf = self.new_node(pos, OPEN_END);
                    self.nodes[self.active_node].next.insert(edge_sym, leaf);
                    let an = self.active_node;
                    self.add_slink(an);
                }
                Some(nxt) => {
                    let el = self.edge_length(nxt, pos);
                    if self.active_len >= el {
                        // Walk down and retry.
                        self.active_edge += el;
                        self.active_len -= el;
                        self.active_node = nxt;
                        continue;
                    }
                    if self.text[self.nodes[nxt].start + self.active_len] == c {
                        // Rule 3: the symbol is already on the edge.
                        self.active_len += 1;
                        let an = self.active_node;
                        self.add_slink(an);
                        break;
                    }
                    // Split the edge.
                    let split = self.new_node(
                        self.nodes[nxt].start,
                        self.nodes[nxt].start + self.active_len,
                    );
                    self.nodes[self.active_node].next.insert(edge_sym, split);
                    let leaf = self.new_node(pos, OPEN_END);
                    self.nodes[split].next.insert(c, leaf);
                    self.nodes[nxt].start += self.active_len;
                    let nxt_sym = self.text[self.nodes[nxt].start];
                    self.nodes[split].next.insert(nxt_sym, nxt);
                    self.add_slink(split);
                }
            }
            self.remainder -= 1;
            if self.active_node == 0 && self.active_len > 0 {
                self.active_len -= 1;
                self.active_edge = pos - self.remainder + 1;
            } else {
                self.active_node = self.nodes[self.active_node].slink;
            }
        }
    }

    fn new_node(&mut self, start: usize, end: usize) -> usize {
        self.nodes.push(Node::new(start, end));
        self.nodes.len() - 1
    }

    fn run(mut self) -> Vec<Node> {
        for pos in 0..self.text.len() {
            self.extend(pos);
        }
        self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcs::longest_common_substring_len;
    use proptest::prelude::*;

    #[test]
    fn contains_substrings_of_every_corpus_string() {
        let gst = GeneralizedSuffixTree::build(&["banana", "bandana"]);
        for s in ["banana", "bandana"] {
            let cs: Vec<char> = s.chars().collect();
            for i in 0..cs.len() {
                for j in i + 1..=cs.len() {
                    let sub: String = cs[i..j].iter().collect();
                    assert!(gst.contains_substring(&sub), "missing {sub}");
                }
            }
        }
        assert!(!gst.contains_substring("nand"));
        assert!(!gst.contains_substring("xyz"));
        assert!(gst.contains_substring("")); // trivially present
    }

    #[test]
    fn lcs_with_all_matches_dp() {
        let corpus = ["10 Oak St", "5 Wren St", "Po Box 25"];
        let gst = GeneralizedSuffixTree::build(&corpus);
        for q in ["10 Oak Rd", "Wren", "Box 25", "zzz", ""] {
            let got = gst.lcs_with_all(q);
            for (i, s) in corpus.iter().enumerate() {
                assert_eq!(
                    got[i],
                    longest_common_substring_len(q, s),
                    "query {q} vs corpus[{i}]={s}"
                );
            }
        }
    }

    #[test]
    fn top_l_returns_best_strings_first() {
        let corpus = ["abcdefgh", "abcxxxxx", "zzzzzzzz"];
        let gst = GeneralizedSuffixTree::build(&corpus);
        let top = gst.top_l_by_lcs("abcdefgh", 2, 1);
        assert_eq!(top[0], (0, 8));
        assert_eq!(top[1], (1, 3));
    }

    #[test]
    fn top_l_honours_min_len() {
        let corpus = ["abcdefgh", "abxxxxxx", "zzzzzzzz"];
        let gst = GeneralizedSuffixTree::build(&corpus);
        let top = gst.top_l_by_lcs("abcdefgh", 3, 4);
        assert_eq!(top, vec![(0, 8)]); // "ab" (len 2) filtered out
    }

    #[test]
    fn top_l_zero_is_empty() {
        let gst = GeneralizedSuffixTree::build(&["abc"]);
        assert!(gst.top_l_by_lcs("abc", 0, 1).is_empty());
    }

    #[test]
    fn duplicate_corpus_strings_both_reported() {
        let gst = GeneralizedSuffixTree::build(&["same", "same"]);
        let top = gst.top_l_by_lcs("same", 5, 1);
        let mut ids: Vec<usize> = top.iter().map(|(i, _)| *i).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1]);
        assert!(top.iter().all(|&(_, l)| l == 4));
    }

    #[test]
    fn top_l_tie_breaking_is_deterministic_across_instances() {
        // More tied values than l: which ties fill the top-l slots must
        // be a pure function of the corpus, not of per-instance hash
        // state (child maps are ordered — a RandomState HashMap here once
        // leaked run-to-run nondeterminism into blocked MD candidates).
        let corpus: Vec<String> = (0..40).map(|i| format!("prefix{:02}", i)).collect();
        let a = GeneralizedSuffixTree::build(&corpus);
        let b = GeneralizedSuffixTree::build(&corpus);
        for q in ["prefix99", "prefix", "pre"] {
            assert_eq!(
                a.top_l_by_lcs(q, 5, 1),
                b.top_l_by_lcs(q, 5, 1),
                "query {q}"
            );
        }
    }

    #[test]
    fn empty_corpus_strings_are_harmless() {
        let gst = GeneralizedSuffixTree::build(&["", "abc", ""]);
        assert!(gst.contains_substring("abc"));
        let got = gst.lcs_with_all("abc");
        assert_eq!(got, vec![0, 3, 0]);
    }

    #[test]
    fn separators_never_match_content() {
        // A match can never span two corpus strings.
        let gst = GeneralizedSuffixTree::build(&["ab", "cd"]);
        assert!(!gst.contains_substring("abcd"));
        assert!(!gst.contains_substring("bc"));
    }

    #[test]
    fn unicode_content_is_supported() {
        let gst = GeneralizedSuffixTree::build(&["café au lait", "caffè latte"]);
        assert!(gst.contains_substring("café"));
        assert!(gst.contains_substring("è l"));
        assert_eq!(gst.lcs_with_all("caf")[0], 3);
    }

    proptest! {
        /// GST-derived LCS agrees with the quadratic DP for random corpora
        /// and queries — the core correctness property of the index.
        #[test]
        fn gst_lcs_matches_dp(
            corpus in proptest::collection::vec("[a-c]{0,8}", 1..6),
            query in "[a-c]{0,8}"
        ) {
            let gst = GeneralizedSuffixTree::build(&corpus);
            let got = gst.lcs_with_all(&query);
            for (i, s) in corpus.iter().enumerate() {
                prop_assert_eq!(got[i], longest_common_substring_len(&query, s));
            }
        }

        /// Every substring of every corpus string is found; random other
        /// strings are found iff some corpus string contains them.
        #[test]
        fn membership_is_exact(
            corpus in proptest::collection::vec("[a-b]{0,6}", 1..5),
            probe in "[a-b]{0,4}"
        ) {
            let gst = GeneralizedSuffixTree::build(&corpus);
            let expected = corpus.iter().any(|s| s.contains(&probe));
            prop_assert_eq!(gst.contains_substring(&probe), expected);
        }

        /// top_l with l = corpus size and min 1 reports exactly the strings
        /// with non-zero LCS, each with its true LCS.
        #[test]
        fn top_l_is_exact_when_unbounded(
            corpus in proptest::collection::vec("[a-c]{0,6}", 1..5),
            query in "[a-c]{1,6}"
        ) {
            let gst = GeneralizedSuffixTree::build(&corpus);
            let mut got = gst.top_l_by_lcs(&query, corpus.len(), 1);
            got.sort_unstable();
            let mut want: Vec<(usize, usize)> = corpus
                .iter()
                .enumerate()
                .map(|(i, s)| (i, longest_common_substring_len(&query, s)))
                .filter(|&(_, l)| l >= 1)
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }

        /// Matched lengths reported by top_l never increase along the list.
        #[test]
        fn top_l_lengths_are_sorted(
            corpus in proptest::collection::vec("[a-c]{0,6}", 1..6),
            query in "[a-c]{0,6}", l in 1usize..4
        ) {
            let gst = GeneralizedSuffixTree::build(&corpus);
            let top = gst.top_l_by_lcs(&query, l, 1);
            prop_assert!(top.windows(2).all(|w| w[0].1 >= w[1].1));
            prop_assert!(top.len() <= l);
        }
    }
}
