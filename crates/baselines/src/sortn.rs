//! SortN: multi-pass sorted-neighborhood record matching (Hernandez &
//! Stolfo 1998), driven by MD premises.
//!
//! Records from the dirty relation and the master relation are merged into
//! one list, sorted by a composite key built from the MD premise attributes,
//! and only records within a sliding window are compared. A (data, master)
//! pair is reported as a match when the premise of *some* MD holds — i.e.
//! SortN uses the same matching rules as UniClean but performs **no
//! repairing**, which is exactly what Exp-2 isolates: dirty key attributes
//! scatter true duplicates across the sort order and out of each other's
//! windows.

use std::collections::HashSet;

use uniclean_model::{Relation, TupleId};
use uniclean_rules::Md;

/// SortN parameters.
#[derive(Clone, Copy, Debug)]
pub struct SortNConfig {
    /// Sliding-window size (records, not pairs).
    pub window: usize,
    /// Number of passes with rotated key fields (multi-pass SN).
    pub passes: usize,
    /// Characters taken from each key field.
    pub prefix: usize,
}

impl Default for SortNConfig {
    fn default() -> Self {
        SortNConfig {
            window: 7,
            passes: 3,
            prefix: 4,
        }
    }
}

/// Run sorted-neighborhood matching of `d` against master `dm` using the
/// premises of `mds`. Returns (data tuple, master tuple) pairs.
pub fn sortn_match(
    d: &Relation,
    dm: &Relation,
    mds: &[Md],
    cfg: SortNConfig,
) -> Vec<(TupleId, TupleId)> {
    if mds.is_empty() || d.is_empty() || dm.is_empty() {
        return Vec::new();
    }
    // Key fields: the distinct premise attribute pairs across all MDs.
    let mut fields: Vec<(uniclean_model::AttrId, uniclean_model::AttrId)> = Vec::new();
    for md in mds {
        for p in md.premises() {
            if !fields.contains(&(p.attr, p.master_attr)) {
                fields.push((p.attr, p.master_attr));
            }
        }
    }
    let mut found: HashSet<(TupleId, TupleId)> = HashSet::new();
    for pass in 0..cfg.passes.max(1) {
        // Rotate the field order per pass so a dirty leading field does not
        // doom every pass.
        let mut order = fields.clone();
        order.rotate_left(pass % fields.len());
        // (key, is_master, id)
        let mut entries: Vec<(String, bool, u32)> = Vec::with_capacity(d.len() + dm.len());
        for (tid, t) in d.iter() {
            let key: String = order
                .iter()
                .map(|(a, _)| prefix_of(&t.value(*a).render(), cfg.prefix))
                .collect();
            entries.push((key, false, tid.0));
        }
        for (sid, s) in dm.iter() {
            let key: String = order
                .iter()
                .map(|(_, b)| prefix_of(&s.value(*b).render(), cfg.prefix))
                .collect();
            entries.push((key, true, sid.0));
        }
        entries.sort();
        let w = cfg.window.max(2);
        for i in 0..entries.len() {
            for j in i + 1..(i + w).min(entries.len()) {
                let (ref _ka, ma, ia) = entries[i];
                let (ref _kb, mb, ib) = entries[j];
                let (tid, sid) = match (ma, mb) {
                    (false, true) => (TupleId(ia), TupleId(ib)),
                    (true, false) => (TupleId(ib), TupleId(ia)),
                    _ => continue, // same side
                };
                if found.contains(&(tid, sid)) {
                    continue;
                }
                let t = d.tuple(tid);
                let s = dm.tuple(sid);
                if mds.iter().any(|md| md.premise_matches(t, s)) {
                    found.insert((tid, sid));
                }
            }
        }
    }
    let mut out: Vec<(TupleId, TupleId)> = found.into_iter().collect();
    out.sort();
    out
}

fn prefix_of(s: &str, n: usize) -> String {
    s.chars().take(n).collect()
}

/// The matches UniClean identifies: pairs whose MD premise holds on the
/// *repaired* relation. "Repairing helps matching" (Exp-2) is the gap
/// between this and [`sortn_match`] on the dirty relation.
pub fn uniclean_matches(repaired: &Relation, dm: &Relation, mds: &[Md]) -> Vec<(TupleId, TupleId)> {
    let mut found: HashSet<(TupleId, TupleId)> = HashSet::new();
    for md in mds {
        for (tid, t) in repaired.iter() {
            for (sid, s) in dm.iter() {
                if md.premise_matches(t, s) {
                    found.insert((tid, sid));
                }
            }
        }
    }
    let mut out: Vec<(TupleId, TupleId)> = found.into_iter().collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use uniclean_model::{Schema, Tuple};
    use uniclean_rules::parse_rules;

    fn setup() -> (Arc<Schema>, Arc<Schema>, Vec<Md>) {
        let tran = Schema::of_strings("tran", &["LN", "city", "phn"]);
        let card = Schema::of_strings("card", &["LN", "city", "tel"]);
        let mds = parse_rules(
            "md psi: tran[LN] = card[LN] AND tran[city] = card[city] -> tran[phn] <=> card[tel]",
            &tran,
            Some(&card),
        )
        .unwrap()
        .positive_mds;
        (tran, card, mds)
    }

    #[test]
    fn clean_keys_are_matched() {
        let (tran, card, mds) = setup();
        let d = Relation::new(
            tran,
            vec![
                Tuple::of_strs(&["Brady", "Ldn", "000"], 0.5),
                Tuple::of_strs(&["Zzz", "Nowhere", "111"], 0.5),
            ],
        );
        let dm = Relation::new(
            card,
            vec![Tuple::of_strs(&["Brady", "Ldn", "3887644"], 1.0)],
        );
        let matches = sortn_match(&d, &dm, &mds, SortNConfig::default());
        assert_eq!(matches, vec![(TupleId(0), TupleId(0))]);
    }

    #[test]
    fn dirty_keys_escape_the_window() {
        // The dirty LN pushes the record far from its master row in sort
        // order; with a small window, SortN misses it — the motivation for
        // interleaving repairing (Exp-2).
        let (tran, card, mds) = setup();
        let mut tuples = vec![Tuple::of_strs(&["Xrady", "Ldn", "000"], 0.5)];
        // Padding records between X… and B… in sort order.
        for i in 0..30 {
            tuples.push(Tuple::of_strs(&[&format!("M{i:02}"), "Ldn", "222"], 0.5));
        }
        let d = Relation::new(tran, tuples);
        let dm = Relation::new(
            card,
            vec![Tuple::of_strs(&["Brady", "Ldn", "3887644"], 1.0)],
        );
        let matches = sortn_match(
            &d,
            &dm,
            &mds,
            SortNConfig {
                window: 3,
                passes: 1,
                prefix: 4,
            },
        );
        assert!(matches.is_empty(), "typo'd key must be missed: {matches:?}");
    }

    #[test]
    fn multi_pass_recovers_secondary_keys() {
        // Pass 2 sorts by city first, putting the pair back in one window
        // despite the damaged LN — the premise still fails though (equality
        // on LN), so no match is *reported*; the pair is only compared.
        // With an unconstrained premise on city only, the match is found.
        let tran = Schema::of_strings("tran", &["LN", "city", "phn"]);
        let card = Schema::of_strings("card", &["LN", "city", "tel"]);
        let mds = parse_rules(
            "md psi: tran[city] = card[city] -> tran[phn] <=> card[tel]",
            &tran,
            Some(&card),
        )
        .unwrap()
        .positive_mds;
        let d = Relation::new(tran, vec![Tuple::of_strs(&["Xrady", "Ldn", "000"], 0.5)]);
        let dm = Relation::new(
            card,
            vec![Tuple::of_strs(&["Brady", "Ldn", "3887644"], 1.0)],
        );
        let matches = sortn_match(
            &d,
            &dm,
            &mds,
            SortNConfig {
                window: 4,
                passes: 2,
                prefix: 4,
            },
        );
        assert_eq!(matches.len(), 1);
    }

    #[test]
    fn uniclean_matches_scan_is_exact() {
        let (tran, card, mds) = setup();
        let d = Relation::new(
            tran,
            vec![
                Tuple::of_strs(&["Brady", "Ldn", "000"], 0.5),
                Tuple::of_strs(&["Smith", "Edi", "111"], 0.5),
            ],
        );
        let dm = Relation::new(
            card,
            vec![
                Tuple::of_strs(&["Brady", "Ldn", "3887644"], 1.0),
                Tuple::of_strs(&["Smith", "Edi", "3256778"], 1.0),
            ],
        );
        let matches = uniclean_matches(&d, &dm, &mds);
        assert_eq!(
            matches,
            vec![(TupleId(0), TupleId(0)), (TupleId(1), TupleId(1))]
        );
    }

    #[test]
    fn empty_inputs_yield_no_matches() {
        let (tran, card, mds) = setup();
        let d = Relation::empty(tran);
        let dm = Relation::empty(card);
        assert!(sortn_match(&d, &dm, &mds, SortNConfig::default()).is_empty());
        assert!(uniclean_matches(&d, &dm, &mds).is_empty());
    }
}
