//! Quaid: the CFD-only heuristic repair of Cong et al. 2007.
//!
//! UniClean's `hRepair` *is* an extension of this algorithm (§7); Quaid is
//! recovered by (a) dropping every MD (no matching, no master data), and
//! (b) forgetting fix marks, so no cell is frozen — there are no
//! deterministic or reliable fixes to preserve. Exp-1 plots Quaid as the
//! weakest baseline: all of its fixes are possible fixes.

use uniclean_core::{h_repair, CleanConfig, FixReport};
use uniclean_model::{FixMark, Relation};
use uniclean_rules::RuleSet;

/// Run the CFD-only heuristic repair on a copy of `d`.
pub fn quaid_repair(d: &Relation, rules: &RuleSet, cfg: &CleanConfig) -> (Relation, FixReport) {
    let cfd_rules = rules.without_mds();
    // Forget marks and confidence-derived assertions: Quaid treats every
    // cell as up for grabs, guided only by the cost model.
    let mut work = d.clone();
    for id in work.ids().collect::<Vec<_>>() {
        let mut t = work.tuple_mut(id);
        for cell in 0..t.arity() {
            t.set_mark(uniclean_model::AttrId::from(cell), FixMark::Untouched);
        }
    }
    let report = h_repair(&mut work, None, &cfd_rules, None, cfg);
    (work, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniclean_model::{Schema, Tuple, TupleId, Value};
    use uniclean_rules::{parse_rules, satisfies_all};

    #[test]
    fn quaid_repairs_cfd_violations() {
        let s = Schema::of_strings("tran", &["AC", "city"]);
        let parsed = parse_rules("cfd phi1: tran([AC=131] -> [city=Edi])", &s, None).unwrap();
        let rules = RuleSet::cfds_only(s.clone(), parsed.cfds);
        let d = Relation::new(s.clone(), vec![Tuple::of_strs(&["131", "Ldn"], 0.5)]);
        let (repaired, report) = quaid_repair(&d, &rules, &CleanConfig::default());
        assert_eq!(
            repaired.tuple(TupleId(0)).value(s.attr_id_or_panic("city")),
            &Value::str("Edi")
        );
        assert_eq!(report.len(), 1);
        assert!(report.records().iter().all(|r| r.mark == FixMark::Possible));
        assert!(satisfies_all(
            rules.cfds(),
            &[],
            &repaired,
            &Relation::empty(s)
        ));
    }

    #[test]
    fn quaid_ignores_mds_entirely() {
        let tran = Schema::of_strings("tran", &["LN", "phn"]);
        let card = Schema::of_strings("card", &["LN", "tel"]);
        let parsed = parse_rules(
            "md psi: tran[LN] = card[LN] -> tran[phn] <=> card[tel]",
            &tran,
            Some(&card),
        )
        .unwrap();
        let rules = RuleSet::new(
            tran.clone(),
            Some(card),
            vec![],
            parsed.positive_mds,
            vec![],
        );
        let d = Relation::new(tran, vec![Tuple::of_strs(&["Brady", "000"], 0.5)]);
        let (repaired, report) = quaid_repair(&d, &rules, &CleanConfig::default());
        assert!(report.is_empty(), "no CFDs → nothing to repair");
        assert_eq!(
            repaired.tuple(TupleId(0)).value(uniclean_model::AttrId(1)),
            &Value::str("000")
        );
    }

    #[test]
    fn deterministic_marks_do_not_protect_cells_from_quaid() {
        // The same conflict where hRepair preserves a frozen cell: Quaid
        // resolves purely by cost, ignoring the mark.
        let s = Schema::of_strings("r", &["K", "B"]);
        let parsed = parse_rules("cfd fd: r([K] -> [B])", &s, None).unwrap();
        let rules = RuleSet::cfds_only(s.clone(), parsed.cfds);
        let b = s.attr_id_or_panic("B");
        let mut marked = Tuple::of_strs(&["k", "minority"], 0.0);
        marked.set(b, Value::str("minority"), 0.0, FixMark::Deterministic);
        let mut majority1 = Tuple::of_strs(&["k", "major"], 0.0);
        majority1.set(b, Value::str("major"), 0.9, FixMark::Untouched);
        let mut majority2 = Tuple::of_strs(&["k", "major"], 0.0);
        majority2.set(b, Value::str("major"), 0.9, FixMark::Untouched);
        let d = Relation::new(s, vec![marked, majority1, majority2]);
        let (repaired, _) = quaid_repair(&d, &rules, &CleanConfig::default());
        assert_eq!(repaired.tuple(TupleId(0)).value(b), &Value::str("major"));
    }
}
