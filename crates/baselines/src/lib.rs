//! Baselines the paper compares against (§8 "Algorithms"):
//!
//! * [`sortn`] — **SortN**, "the sorted neighborhood method of [Hernandez
//!   and Stolfo 1998] for record matching based on MDs only";
//! * [`quaid`] — **Quaid**, "the heuristic repairing algorithm of [Cong et
//!   al. 2007] based on CFDs only".

pub mod quaid;
pub mod sortn;

pub use quaid::quaid_repair;
pub use sortn::{sortn_match, uniclean_matches, SortNConfig};
