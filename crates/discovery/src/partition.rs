//! Stripped partitions (position-list indexes).
//!
//! The partition `π_X` of a relation groups tuple ids by their `X`
//! projection; *stripped* means singleton groups are dropped (they can
//! never witness or violate a dependency). Two classic facts drive
//! profiling:
//!
//! * `X → A` holds iff `error(π_X) = error(π_{X∪A})`, where
//!   `error(π) = Σ_c (|c| − 1)` over the stripped classes — the number of
//!   tuples that would have to change for `X` to be a key;
//! * `π_{X∪Y}` is the product `π_X · π_Y`, computable in one pass over the
//!   smaller partition.

use std::collections::HashMap;

use uniclean_model::{AttrId, Relation, Value};

/// A stripped partition: equivalence classes of tuple indices with ≥ 2
/// members, classes and members sorted for determinism.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    classes: Vec<Vec<u32>>,
    /// Number of tuples in the underlying relation.
    n: usize,
}

impl Partition {
    /// Partition of a single attribute column. Nulls form their own class
    /// (they compare equal to each other for grouping purposes — profiling
    /// treats null as a value).
    pub fn of_attr(d: &Relation, a: AttrId) -> Self {
        let mut groups: HashMap<&Value, Vec<u32>> = HashMap::new();
        for (tid, t) in d.iter() {
            groups.entry(t.value(a)).or_default().push(tid.0);
        }
        Self::from_groups(groups.into_values(), d.len())
    }

    /// Partition of an attribute set (product of the columns).
    pub fn of_attrs(d: &Relation, attrs: &[AttrId]) -> Self {
        match attrs {
            [] => {
                // Empty projection: every tuple agrees.
                let all: Vec<u32> = (0..d.len() as u32).collect();
                Self::from_groups(std::iter::once(all), d.len())
            }
            [a] => Self::of_attr(d, *a),
            [first, rest @ ..] => {
                let mut p = Self::of_attr(d, *first);
                for a in rest {
                    p = p.product(&Self::of_attr(d, *a), d.len());
                }
                p
            }
        }
    }

    fn from_groups(groups: impl IntoIterator<Item = Vec<u32>>, n: usize) -> Self {
        let mut classes: Vec<Vec<u32>> = groups.into_iter().filter(|g| g.len() >= 2).collect();
        for c in &mut classes {
            c.sort_unstable();
        }
        classes.sort();
        Partition { classes, n }
    }

    /// The product `π_self · π_other` (groups agreeing on both).
    pub fn product(&self, other: &Partition, n: usize) -> Partition {
        // Map tuple → class id in `other` (singletons get usize::MAX).
        let mut class_of = vec![usize::MAX; n];
        for (ci, c) in other.classes.iter().enumerate() {
            for &t in c {
                class_of[t as usize] = ci;
            }
        }
        let mut out: Vec<Vec<u32>> = Vec::new();
        let mut sub: HashMap<usize, Vec<u32>> = HashMap::new();
        for c in &self.classes {
            sub.clear();
            for &t in c {
                let oc = class_of[t as usize];
                if oc != usize::MAX {
                    sub.entry(oc).or_default().push(t);
                }
            }
            out.extend(sub.drain().map(|(_, v)| v).filter(|v| v.len() >= 2));
        }
        Self::from_groups(out, n)
    }

    /// `error(π) = Σ_c (|c| − 1)`: tuples that must change for the
    /// attribute set to become a key.
    pub fn error(&self) -> usize {
        self.classes.iter().map(|c| c.len() - 1).sum()
    }

    /// Number of stripped (≥ 2 member) classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Is the underlying attribute set a key (no two tuples agree)?
    pub fn is_key(&self) -> bool {
        self.classes.is_empty()
    }

    /// The classes (sorted, members sorted).
    pub fn classes(&self) -> &[Vec<u32>] {
        &self.classes
    }

    /// Does `X → A` hold, where `self = π_X` and `with_a = π_{X∪A}`?
    pub fn refines_to(&self, with_a: &Partition) -> bool {
        self.error() == with_a.error()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniclean_model::{Schema, Tuple};

    fn rel(rows: &[[&str; 3]]) -> Relation {
        let s = Schema::of_strings("r", &["A", "B", "C"]);
        Relation::new(s, rows.iter().map(|r| Tuple::of_strs(r, 0.0)).collect())
    }

    #[test]
    fn single_attribute_partition() {
        let d = rel(&[
            ["x", "1", "p"],
            ["x", "2", "q"],
            ["y", "1", "p"],
            ["x", "3", "p"],
        ]);
        let a = d.schema().attr_id("A").unwrap();
        let p = Partition::of_attr(&d, a);
        assert_eq!(p.classes(), &[vec![0, 1, 3]]); // "y" is a stripped singleton
        assert_eq!(p.error(), 2);
        assert!(!p.is_key());
    }

    #[test]
    fn key_attribute_has_empty_partition() {
        let d = rel(&[["x", "1", "p"], ["y", "2", "q"], ["z", "3", "r"]]);
        let a = d.schema().attr_id("A").unwrap();
        let p = Partition::of_attr(&d, a);
        assert!(p.is_key());
        assert_eq!(p.error(), 0);
    }

    #[test]
    fn product_intersects_classes() {
        let d = rel(&[
            ["x", "1", "p"],
            ["x", "1", "q"],
            ["x", "2", "p"],
            ["y", "1", "p"],
        ]);
        let a = d.schema().attr_id("A").unwrap();
        let b = d.schema().attr_id("B").unwrap();
        let pab = Partition::of_attrs(&d, &[a, b]);
        assert_eq!(pab.classes(), &[vec![0, 1]]);
    }

    #[test]
    fn fd_check_via_error_equality() {
        // A → C holds here (x↦p…, wait x maps to p and q? rows: (x,p),(x,q) — no).
        let holds = rel(&[["x", "1", "p"], ["x", "2", "p"], ["y", "1", "q"]]);
        let a = holds.schema().attr_id("A").unwrap();
        let c = holds.schema().attr_id("C").unwrap();
        let pa = Partition::of_attr(&holds, a);
        let pac = Partition::of_attrs(&holds, &[a, c]);
        assert!(pa.refines_to(&pac), "A → C holds");

        let fails = rel(&[["x", "1", "p"], ["x", "2", "q"], ["y", "1", "p"]]);
        let pa = Partition::of_attr(&fails, a);
        let pac = Partition::of_attrs(&fails, &[a, c]);
        assert!(!pa.refines_to(&pac), "A → C violated by (x,p)/(x,q)");
    }

    #[test]
    fn empty_attr_set_is_one_class() {
        let d = rel(&[["x", "1", "p"], ["y", "2", "q"]]);
        let p = Partition::of_attrs(&d, &[]);
        assert_eq!(p.class_count(), 1);
        assert_eq!(p.error(), 1);
    }

    #[test]
    fn product_is_commutative_on_error() {
        let d = rel(&[
            ["x", "1", "p"],
            ["x", "1", "q"],
            ["y", "2", "p"],
            ["y", "1", "p"],
        ]);
        let a = d.schema().attr_id("A").unwrap();
        let b = d.schema().attr_id("B").unwrap();
        let ab = Partition::of_attr(&d, a).product(&Partition::of_attr(&d, b), d.len());
        let ba = Partition::of_attr(&d, b).product(&Partition::of_attr(&d, a), d.len());
        assert_eq!(ab, ba);
    }
}
