//! Constant-CFD mining.
//!
//! A constant CFD `([A = a] → [B = b])` is a pattern-level rule: *within
//! the extent of `A = a`*, attribute `B` is constantly `b`. Mining is
//! frequent-pattern style: enumerate values `a` of `A` with support at
//! least `min_support`, and emit the rule when the extent agrees on `B`
//! (and the rule is not subsumed by the plain FD `A → B`, which would make
//! the pattern pointless).

use std::collections::HashMap;

use uniclean_model::{AttrId, Relation, Value};
use uniclean_rules::{Cfd, PatternValue};

use crate::partition::Partition;

/// Mining bounds.
#[derive(Clone, Debug)]
pub struct ConstantCfdConfig {
    /// Minimum number of tuples matching the LHS pattern, default 3.
    pub min_support: usize,
    /// Skip LHS attributes with more distinct values than this (near-key
    /// columns generate one rule per tuple — noise, not knowledge),
    /// default 50.
    pub max_lhs_distinct: usize,
}

impl Default for ConstantCfdConfig {
    fn default() -> Self {
        ConstantCfdConfig {
            min_support: 3,
            max_lhs_distinct: 50,
        }
    }
}

/// Mine constant CFDs `([A = a] → [B = b])` from `d`.
pub fn discover_constant_cfds(d: &Relation, cfg: &ConstantCfdConfig) -> Vec<Cfd> {
    let schema = d.schema().clone();
    let attrs: Vec<AttrId> = schema.attr_ids().collect();
    let mut out = Vec::new();
    let mut n = 0usize;

    // Which plain FDs A → B hold? Their constant specializations are
    // subsumed and skipped.
    let parts: Vec<Partition> = attrs.iter().map(|a| Partition::of_attr(d, *a)).collect();
    let fd_holds = |a: usize, b: usize| -> bool {
        parts[a].refines_to(&Partition::of_attrs(d, &[attrs[a], attrs[b]]))
    };

    for (ai, &a) in attrs.iter().enumerate() {
        // Extents of each value of A.
        let mut extents: HashMap<&Value, Vec<u32>> = HashMap::new();
        for (tid, t) in d.iter() {
            if !t.value(a).is_null() {
                extents.entry(t.value(a)).or_default().push(tid.0);
            }
        }
        if extents.len() > cfg.max_lhs_distinct {
            continue;
        }
        let mut keyed: Vec<(&Value, Vec<u32>)> = extents.into_iter().collect();
        keyed.sort_by(|x, y| x.0.cmp(y.0));
        for (val, extent) in keyed {
            if extent.len() < cfg.min_support {
                continue;
            }
            for (bi, &b) in attrs.iter().enumerate() {
                if a == b || fd_holds(ai, bi) {
                    continue;
                }
                let first = d.tuple(uniclean_model::TupleId(extent[0])).value(b).clone();
                if first.is_null() {
                    continue;
                }
                let constant = extent
                    .iter()
                    .all(|&t| d.tuple(uniclean_model::TupleId(t)).value(b) == &first);
                if constant {
                    n += 1;
                    out.push(Cfd::new(
                        format!("ccfd{n:03}"),
                        schema.clone(),
                        vec![a],
                        vec![PatternValue::Const(val.clone())],
                        vec![b],
                        vec![PatternValue::Const(first)],
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniclean_model::{Schema, Tuple};
    use uniclean_rules::satisfies_cfd;

    fn rel(rows: &[[&str; 3]]) -> Relation {
        let s = Schema::of_strings("r", &["City", "State", "Other"]);
        Relation::new(s, rows.iter().map(|r| Tuple::of_strs(r, 0.0)).collect())
    }

    #[test]
    fn mines_city_state_pattern() {
        // City → State does NOT hold globally (Springfield is ambiguous),
        // but [City=Boston] → [State=MA] does.
        let d = rel(&[
            ["Boston", "MA", "1"],
            ["Boston", "MA", "2"],
            ["Boston", "MA", "3"],
            ["Springfield", "IL", "4"],
            ["Springfield", "MA", "5"],
            ["Springfield", "MO", "6"],
        ]);
        let cfds = discover_constant_cfds(
            &d,
            &ConstantCfdConfig {
                min_support: 3,
                ..Default::default()
            },
        );
        assert!(
            cfds.iter()
                .any(|c| c.to_string().contains("[City=Boston] -> [State=MA]")),
            "expected Boston rule in {cfds:?}"
        );
        assert!(
            !cfds
                .iter()
                .any(|c| c.to_string().contains("City=Springfield] -> [State")),
            "ambiguous Springfield must not yield a State rule"
        );
        for c in &cfds {
            assert!(satisfies_cfd(c, &d), "{c} does not hold");
        }
    }

    #[test]
    fn global_fd_suppresses_specializations() {
        // City → State holds globally: no constant rules for (City, State).
        let d = rel(&[
            ["Boston", "MA", "1"],
            ["Boston", "MA", "2"],
            ["Boston", "MA", "3"],
            ["Chicago", "IL", "4"],
            ["Chicago", "IL", "5"],
            ["Chicago", "IL", "6"],
        ]);
        let cfds = discover_constant_cfds(
            &d,
            &ConstantCfdConfig {
                min_support: 3,
                ..Default::default()
            },
        );
        assert!(
            !cfds.iter().any(|c| c.to_string().contains("-> [State=")),
            "FD-subsumed rules must be skipped: {cfds:?}"
        );
    }

    #[test]
    fn support_threshold_filters_rare_patterns() {
        let d = rel(&[
            ["Boston", "MA", "1"],
            ["Boston", "MA", "2"],
            ["Springfield", "IL", "3"],
            ["Springfield", "MO", "4"],
        ]);
        let cfds = discover_constant_cfds(
            &d,
            &ConstantCfdConfig {
                min_support: 3,
                ..Default::default()
            },
        );
        assert!(cfds.is_empty(), "support 2 < 3 everywhere: {cfds:?}");
    }

    #[test]
    fn near_key_lhs_is_skipped() {
        let rows: Vec<[String; 3]> = (0..60)
            .map(|i| [format!("c{i}"), "X".into(), "y".into()])
            .collect();
        let s = Schema::of_strings("r", &["City", "State", "Other"]);
        let d = Relation::new(
            s,
            rows.iter()
                .map(|r| Tuple::of_strs(&[r[0].as_str(), r[1].as_str(), r[2].as_str()], 0.0))
                .collect(),
        );
        let cfds = discover_constant_cfds(
            &d,
            &ConstantCfdConfig {
                min_support: 1,
                max_lhs_distinct: 50,
            },
        );
        assert!(
            !cfds.iter().any(|c| c.to_string().contains("City=")),
            "60 distinct cities exceed the 50 cap"
        );
    }
}
