//! MD suggestion from keys of the master data.
//!
//! Following the spirit of [Song and Chen 2009]: a minimal key `X` of the
//! (clean) master relation identifies entities — "same `X` ⇒ same entity"
//! is a plausible matching rule, yielding the MD
//! `⋀_{x∈X} R[x] = Rm[x] → R[A] ⇌ Rm[A]` for the remaining attributes.
//! Suggestion emits conservative equality premises; the caller may relax
//! individual attributes to similarity predicates (names to `~lev(2)`
//! etc.) before use.

use std::sync::Arc;

use uniclean_model::{AttrId, Relation, Schema};
use uniclean_rules::{Cfd, Md, MdPremise};
use uniclean_similarity::SimilarityPredicate;

use crate::partition::Partition;

/// Suggest MDs by finding minimal keys of `master` with at most
/// `max_key_size` attributes and lifting each into a matching rule.
///
/// A key identifies the *entity*, not the row, so the identified attributes
/// must be entity-level: the RHS of each suggested MD is restricted to
/// attributes that some FD of `sample_fds` (mined on a clean, multi-row
/// sample over the data schema) derives from the key — `Score`-style
/// row-level attributes never qualify. Attributes are paired by *name*
/// across the master and data schemas; keys containing an attribute with no
/// same-named data-side counterpart are skipped. Returns one (multi-RHS) MD
/// per key, to be normalized by the rule-set machinery.
pub fn suggest_mds(
    master: &Relation,
    data_schema: &Arc<Schema>,
    max_key_size: usize,
    sample_fds: &[Cfd],
) -> Vec<Md> {
    let mschema = master.schema().clone();
    let attrs: Vec<AttrId> = mschema.attr_ids().collect();
    let mut keys: Vec<Vec<AttrId>> = Vec::new();

    // Levelwise minimal-key search.
    let mut level: Vec<Vec<AttrId>> = attrs.iter().map(|a| vec![*a]).collect();
    for _size in 1..=max_key_size.max(1) {
        let mut next: Vec<Vec<AttrId>> = Vec::new();
        for cand in &level {
            // Minimality: skip supersets of found keys.
            if keys.iter().any(|k| k.iter().all(|a| cand.contains(a))) {
                continue;
            }
            if Partition::of_attrs(master, cand).is_key() {
                keys.push(cand.clone());
            } else {
                for &a in &attrs {
                    if cand.iter().all(|x| x.0 < a.0) {
                        let mut ext = cand.clone();
                        ext.push(a);
                        next.push(ext);
                    }
                }
            }
        }
        level = next;
        if level.is_empty() {
            break;
        }
    }

    let mut out = Vec::new();
    let mut n = 0usize;
    for key in keys {
        // Pair key attributes by name with the data schema.
        let mut premises = Vec::new();
        let mut ok = true;
        for &ma in &key {
            match data_schema.attr_id(mschema.attr_name(ma)) {
                Some(da) => premises.push(MdPremise {
                    attr: da,
                    master_attr: ma,
                    pred: SimilarityPredicate::Equal,
                }),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }
        // Identify the attributes the key provably determines on the
        // sample: FDs whose LHS is contained in the (data-side) key.
        let data_key: Vec<AttrId> = premises.iter().map(|p| p.attr).collect();
        let rhs: Vec<(AttrId, AttrId)> = attrs
            .iter()
            .filter(|a| !key.contains(a))
            .filter_map(|&ma| {
                let da = data_schema.attr_id(mschema.attr_name(ma))?;
                let determined = sample_fds.iter().any(|f| {
                    f.is_normalized()
                        && f.rhs()[0] == da
                        && f.lhs().iter().all(|x| data_key.contains(x))
                });
                determined.then_some((da, ma))
            })
            .collect();
        if rhs.is_empty() {
            continue;
        }
        n += 1;
        out.push(Md::new(
            format!("md-sugg{n:02}"),
            data_schema.clone(),
            mschema.clone(),
            premises,
            rhs,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniclean_model::Tuple;
    use uniclean_rules::satisfies_md;

    fn master() -> Relation {
        let s = Schema::of_strings("card", &["id", "name", "phone"]);
        Relation::new(
            s,
            vec![
                Tuple::of_strs(&["1", "Mark Smith", "111"], 1.0),
                Tuple::of_strs(&["2", "Robert Brady", "222"], 1.0),
                Tuple::of_strs(&["3", "Mark Smith", "333"], 1.0),
            ],
        )
    }

    /// FDs over the data schema saying every key determines the others.
    fn all_fds(s: &Arc<Schema>) -> Vec<Cfd> {
        use uniclean_rules::PatternValue;
        let mut out = Vec::new();
        for a in s.attr_ids() {
            for b in s.attr_ids() {
                if a != b {
                    out.push(Cfd::new(
                        format!("f{}{}", a.0, b.0),
                        s.clone(),
                        vec![a],
                        vec![PatternValue::Wildcard],
                        vec![b],
                        vec![PatternValue::Wildcard],
                    ));
                }
            }
        }
        out
    }

    #[test]
    fn unique_columns_become_match_keys() {
        let m = master();
        let data_schema = Schema::of_strings("tran", &["id", "name", "phone"]);
        let mds = suggest_mds(&m, &data_schema, 1, &all_fds(&data_schema));
        // id and phone are unique; name is not (two Mark Smiths).
        let names: Vec<&str> = mds
            .iter()
            .map(|md| m.schema().attr_name(md.premises()[0].master_attr))
            .collect();
        assert!(names.contains(&"id"), "{names:?}");
        assert!(names.contains(&"phone"), "{names:?}");
        assert!(
            !names.contains(&"name"),
            "ambiguous name must not be a key: {names:?}"
        );
        // Each suggested MD identifies the remaining attributes.
        for md in &mds {
            assert_eq!(md.rhs().len(), 2);
            assert!(md.premises()[0].pred.is_equality());
        }
    }

    #[test]
    fn suggested_mds_hold_on_matching_data() {
        let m = master();
        let data_schema = Schema::of_strings("tran", &["id", "name", "phone"]);
        let mds = suggest_mds(&m, &data_schema, 1, &all_fds(&data_schema));
        let d = Relation::new(
            data_schema,
            vec![Tuple::of_strs(&["1", "Mark Smith", "111"], 0.5)],
        );
        for md in &mds {
            assert!(satisfies_md(md, &d, &m), "{}", md.name());
        }
    }

    #[test]
    fn composite_keys_found_at_level_two() {
        // No single attribute is unique; (a, b) is.
        let s = Schema::of_strings("m", &["a", "b", "c"]);
        let m = Relation::new(
            s,
            vec![
                Tuple::of_strs(&["x", "1", "p"], 1.0),
                Tuple::of_strs(&["x", "2", "q"], 1.0),
                Tuple::of_strs(&["y", "1", "r"], 1.0),
                Tuple::of_strs(&["y", "2", "p"], 1.0),
            ],
        );
        let data_schema = Schema::of_strings("d", &["a", "b", "c"]);
        let fds = {
            use uniclean_rules::PatternValue;
            vec![Cfd::new(
                "ab_c",
                data_schema.clone(),
                vec![
                    data_schema.attr_id_or_panic("a"),
                    data_schema.attr_id_or_panic("b"),
                ],
                vec![PatternValue::Wildcard, PatternValue::Wildcard],
                vec![data_schema.attr_id_or_panic("c")],
                vec![PatternValue::Wildcard],
            )]
        };
        let none = suggest_mds(&m, &data_schema, 1, &fds);
        assert!(none.is_empty(), "no single-attribute key exists");
        let mds = suggest_mds(&m, &data_schema, 2, &fds);
        assert_eq!(mds.len(), 1);
        assert_eq!(mds[0].premises().len(), 2);
    }

    #[test]
    fn unpaired_attributes_are_skipped() {
        let m = master();
        let data_schema = Schema::of_strings("tran", &["name", "phone"]); // no `id`
        let mds = suggest_mds(&m, &data_schema, 1, &all_fds(&data_schema));
        // The id-keyed MD is skipped; the phone-keyed one survives with the
        // pairable RHS (name).
        assert!(mds
            .iter()
            .all(|md| { m.schema().attr_name(md.premises()[0].master_attr) != "id" }));
        assert!(!mds.is_empty());
    }
}
