//! TANE-style levelwise discovery of minimal functional dependencies.
//!
//! Level `k` considers candidate LHS sets of size `k`; `X → A` is emitted
//! when the stripped-partition errors of `X` and `X ∪ {A}` coincide and no
//! proper subset of `X` already determines `A` (minimality). Keys prune
//! their supersets (a key determines everything, so supersets add nothing
//! minimal). LHS size is bounded by configuration — profiling beyond 2–3
//! attributes explodes combinatorially and real rule sets rarely need it.

use std::collections::{HashMap, HashSet};

use uniclean_model::{AttrId, Relation, Schema};
use uniclean_rules::{Cfd, PatternValue};

use crate::partition::Partition;

/// Discovery bounds.
#[derive(Clone, Debug)]
pub struct FdConfig {
    /// Maximum LHS size (levels), default 2.
    pub max_lhs: usize,
    /// Skip LHS candidates whose partition has fewer duplicate witnesses
    /// than this (an FD with no agreeing pairs holds vacuously and is
    /// worthless evidence), default 1.
    pub min_support_pairs: usize,
}

impl Default for FdConfig {
    fn default() -> Self {
        FdConfig {
            max_lhs: 2,
            min_support_pairs: 1,
        }
    }
}

/// A discovered FD `lhs → rhs` rendered as a plain-FD [`Cfd`].
fn make_fd(schema: &std::sync::Arc<Schema>, n: usize, lhs: &[AttrId], rhs: AttrId) -> Cfd {
    Cfd::new(
        format!("fd{n:03}"),
        schema.clone(),
        lhs.to_vec(),
        vec![PatternValue::Wildcard; lhs.len()],
        vec![rhs],
        vec![PatternValue::Wildcard],
    )
}

/// Discover minimal FDs of `d` with LHS size ≤ `cfg.max_lhs`.
///
/// Sound and complete within the level bound: every emitted FD holds on
/// `d`; every minimal FD with a small enough LHS and non-vacuous support is
/// emitted (property-tested against a brute-force checker).
pub fn discover_fds(d: &Relation, cfg: &FdConfig) -> Vec<Cfd> {
    let schema = d.schema().clone();
    let attrs: Vec<AttrId> = schema.attr_ids().collect();
    let mut out: Vec<Cfd> = Vec::new();
    let mut n = 0usize;

    // Cache of partitions per attribute set (keyed by sorted attr indices).
    let mut parts: HashMap<Vec<u16>, Partition> = HashMap::new();
    let key_of = |set: &[AttrId]| -> Vec<u16> {
        let mut k: Vec<u16> = set.iter().map(|a| a.0).collect();
        k.sort_unstable();
        k
    };
    for &a in &attrs {
        parts.insert(key_of(&[a]), Partition::of_attr(d, a));
    }

    // determined[rhs] = set of minimal LHS (sorted keys) already found.
    let mut determined: HashMap<AttrId, Vec<Vec<u16>>> = HashMap::new();
    // Keys found so far (prune their supersets entirely).
    let mut keys: Vec<Vec<u16>> = Vec::new();

    let mut level: Vec<Vec<AttrId>> = attrs.iter().map(|a| vec![*a]).collect();
    for _size in 1..=cfg.max_lhs {
        let mut next: HashSet<Vec<u16>> = HashSet::new();
        for lhs in &level {
            let lk = key_of(lhs);
            // Superset of a key: prune.
            if keys.iter().any(|k| k.iter().all(|a| lk.contains(a))) {
                continue;
            }
            let p = match parts.get(&lk) {
                Some(p) => p.clone(),
                None => {
                    let p = Partition::of_attrs(d, lhs);
                    parts.insert(lk.clone(), p.clone());
                    p
                }
            };
            if p.is_key() {
                keys.push(lk.clone());
                continue; // X is a key: X → everything, but vacuous support
            }
            if p.error() < cfg.min_support_pairs {
                continue;
            }
            for &rhs in &attrs {
                if lhs.contains(&rhs) {
                    continue;
                }
                // Minimality: some subset already determines rhs?
                if determined
                    .get(&rhs)
                    .is_some_and(|ls| ls.iter().any(|sub| sub.iter().all(|a| lk.contains(a))))
                {
                    continue;
                }
                let mut xk: Vec<u16> = lk.clone();
                xk.push(rhs.0);
                xk.sort_unstable();
                let pxa = match parts.get(&xk) {
                    Some(p) => p.clone(),
                    None => {
                        let mut set = lhs.clone();
                        set.push(rhs);
                        let p = Partition::of_attrs(d, &set);
                        parts.insert(xk.clone(), p.clone());
                        p
                    }
                };
                if p.refines_to(&pxa) {
                    n += 1;
                    out.push(make_fd(&schema, n, lhs, rhs));
                    determined.entry(rhs).or_default().push(lk.clone());
                }
            }
            // Candidate generation for the next level: extend by any later
            // attribute.
            for &a in &attrs {
                if lhs.iter().all(|x| x.0 < a.0) {
                    let mut ext = lk.clone();
                    ext.push(a.0);
                    ext.sort_unstable();
                    next.insert(ext);
                }
            }
        }
        level = next
            .into_iter()
            .map(|k| k.into_iter().map(AttrId).collect())
            .collect();
        level.sort();
        if level.is_empty() {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use uniclean_model::{Schema, Tuple};
    use uniclean_rules::satisfies_cfd;

    fn rel(rows: &[[&str; 3]]) -> Relation {
        let s = Schema::of_strings("r", &["A", "B", "C"]);
        Relation::new(s, rows.iter().map(|r| Tuple::of_strs(r, 0.0)).collect())
    }

    #[test]
    fn discovers_single_attribute_fd() {
        // A → B holds (x↦1, y↦2), B → A does not (1 maps to x and y? no:
        // rows (x,1),(x,1),(y,2): B→A also holds. Break it with (z,1).
        let d = rel(&[
            ["x", "1", "p"],
            ["x", "1", "q"],
            ["y", "2", "p"],
            ["z", "1", "p"],
        ]);
        let fds = discover_fds(&d, &FdConfig::default());
        let has = |l: &str, r: &str| {
            fds.iter().any(|f| {
                f.lhs().len() == 1
                    && d.schema().attr_name(f.lhs()[0]) == l
                    && d.schema().attr_name(f.rhs()[0]) == r
            })
        };
        assert!(has("A", "B"), "A → B expected in {fds:?}");
        assert!(!has("B", "A"), "B → A must not be found");
    }

    #[test]
    fn discovered_fds_hold_on_input() {
        let d = rel(&[
            ["x", "1", "p"],
            ["x", "1", "q"],
            ["y", "2", "p"],
            ["y", "2", "q"],
        ]);
        for fd in discover_fds(&d, &FdConfig::default()) {
            assert!(satisfies_cfd(&fd, &d), "{fd} does not hold");
        }
    }

    #[test]
    fn minimality_suppresses_supersets() {
        // A → C holds, so {A,B} → C must not be emitted.
        let d = rel(&[
            ["x", "1", "p"],
            ["x", "2", "p"],
            ["y", "1", "q"],
            ["y", "2", "q"],
        ]);
        let fds = discover_fds(
            &d,
            &FdConfig {
                max_lhs: 2,
                ..Default::default()
            },
        );
        let c = d.schema().attr_id("C").unwrap();
        let to_c: Vec<usize> = fds
            .iter()
            .filter(|f| f.rhs()[0] == c)
            .map(|f| f.lhs().len())
            .collect();
        assert!(to_c.contains(&1), "A → C expected");
        assert!(!to_c.contains(&2), "no 2-attribute LHS for C: {fds:?}");
    }

    #[test]
    fn two_attribute_lhs_found_when_needed() {
        // Neither A nor B alone determines C, but {A,B} does.
        let d = rel(&[
            ["x", "1", "p"],
            ["x", "2", "q"],
            ["y", "1", "r"],
            ["y", "2", "s"],
            ["x", "1", "p"],
        ]);
        let fds = discover_fds(
            &d,
            &FdConfig {
                max_lhs: 2,
                ..Default::default()
            },
        );
        let c = d.schema().attr_id("C").unwrap();
        assert!(
            fds.iter().any(|f| f.rhs()[0] == c && f.lhs().len() == 2),
            "{{A,B}} → C expected in {fds:?}"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Soundness: every discovered FD holds on the input relation.
        #[test]
        fn discovery_is_sound(rows in proptest::collection::vec(("[ab]", "[12]", "[pq]"), 1..12)) {
            let s = Schema::of_strings("r", &["A", "B", "C"]);
            let d = Relation::new(
                s,
                rows.iter().map(|(a, b, c)| Tuple::of_strs(&[a, b, c], 0.0)).collect(),
            );
            for fd in discover_fds(&d, &FdConfig { max_lhs: 2, ..Default::default() }) {
                prop_assert!(satisfies_cfd(&fd, &d), "{} fails", fd);
            }
        }

        /// Level-1 completeness: any single-attribute FD with support that
        /// holds is discovered (possibly via a smaller-LHS equivalent —
        /// with LHS size 1 there is none smaller, so it must appear).
        #[test]
        fn level_one_is_complete(rows in proptest::collection::vec(("[ab]", "[12]", "[pq]"), 2..12)) {
            let s = Schema::of_strings("r", &["A", "B", "C"]);
            let d = Relation::new(
                s.clone(),
                rows.iter().map(|(a, b, c)| Tuple::of_strs(&[a, b, c], 0.0)).collect(),
            );
            let fds = discover_fds(&d, &FdConfig { max_lhs: 1, ..Default::default() });
            for lhs in s.attr_ids() {
                let p = Partition::of_attr(&d, lhs);
                if p.is_key() || p.error() == 0 {
                    continue; // vacuous
                }
                for rhs in s.attr_ids() {
                    if lhs == rhs {
                        continue;
                    }
                    let holds = p.refines_to(&Partition::of_attrs(&d, &[lhs, rhs]));
                    let found = fds.iter().any(|f| f.lhs() == [lhs] && f.rhs() == [rhs]);
                    prop_assert_eq!(holds, found, "lhs {:?} rhs {:?}", lhs, rhs);
                }
            }
        }
    }
}
