//! Rule discovery — the acquisition path the paper assumes (§2): "Both
//! CFDs and MDs can be automatically discovered from data via profiling
//! algorithms (see e.g., [Fan et al. 2011; Song and Chen 2009])."
//!
//! * [`partition`] — stripped partitions (position-list indexes), the
//!   workhorse of dependency profiling: `X → A` holds iff the partition of
//!   `X` has the same error as the partition of `X ∪ {A}`;
//! * [`fd`] — TANE-style levelwise discovery of minimal FDs up to a bounded
//!   LHS size, with pruning;
//! * [`cfd`] — constant-CFD mining: frequent single-attribute patterns
//!   whose extent agrees on another attribute yield
//!   `([A = a] → [B = b])` rules;
//! * [`md`] — MD suggestion: key-like FDs on a clean (master) relation
//!   induce matching dependencies with equality premises.
//!
//! Discovery is run on *presumed-clean* data (master data or a vetted
//! sample); rules mined from dirty data inherit its errors — which is
//! exactly why the paper routes them through the §4 consistency analysis
//! before use.

pub mod cfd;
pub mod fd;
pub mod md;
pub mod partition;

pub use cfd::{discover_constant_cfds, ConstantCfdConfig};
pub use fd::{discover_fds, FdConfig};
pub use md::suggest_mds;
pub use partition::Partition;
