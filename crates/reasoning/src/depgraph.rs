//! The rule dependency graph and the eRepair application order (§6.2).
//!
//! "Each rule of Σ ∪ Γ is a node, and there is an edge (u, v) if
//! RHS(ξu) ∩ LHS(ξv) ≠ ∅ — whether ξv can be applied depends on the outcome
//! of applying ξu, so ξu should be applied before ξv."
//!
//! The order is computed as the paper prescribes: (1) Tarjan SCCs, (2) the
//! condensation is a DAG, topologically sorted, (3) within an SCC, rules are
//! sorted by the ratio of out-degree to in-degree, descending (Example 6.1
//! orders ϕ1 > ϕ2 > ϕ3 > ϕ4 > ψ).

use std::collections::HashSet;

use uniclean_model::AttrId;
use uniclean_rules::RuleSet;

/// Identifies one normalized rule inside a [`RuleSet`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RuleRef {
    /// `ruleset.cfds()[i]`.
    Cfd(usize),
    /// `ruleset.mds()[i]`.
    Md(usize),
}

/// Data-side LHS attributes of a rule (what the rule *reads*).
fn lhs_attrs(rules: &RuleSet, r: RuleRef) -> Vec<AttrId> {
    match r {
        RuleRef::Cfd(i) => rules.cfds()[i].lhs().to_vec(),
        RuleRef::Md(i) => rules.mds()[i].lhs_attrs(),
    }
}

/// Data-side RHS attributes of a rule (what the rule *writes*).
fn rhs_attrs(rules: &RuleSet, r: RuleRef) -> Vec<AttrId> {
    match r {
        RuleRef::Cfd(i) => rules.cfds()[i].rhs().to_vec(),
        RuleRef::Md(i) => rules.mds()[i].rhs().iter().map(|(e, _)| *e).collect(),
    }
}

/// The dependency graph over a rule set.
#[derive(Debug)]
pub struct DepGraph {
    nodes: Vec<RuleRef>,
    /// Adjacency: `edges[u]` lists node indices v with u → v.
    edges: Vec<Vec<usize>>,
    in_degree: Vec<usize>,
}

impl DepGraph {
    /// Build the graph for a (normalized) rule set.
    pub fn build(rules: &RuleSet) -> Self {
        let mut nodes: Vec<RuleRef> = Vec::with_capacity(rules.len());
        nodes.extend((0..rules.cfds().len()).map(RuleRef::Cfd));
        nodes.extend((0..rules.mds().len()).map(RuleRef::Md));
        let reads: Vec<HashSet<AttrId>> = nodes
            .iter()
            .map(|r| lhs_attrs(rules, *r).into_iter().collect())
            .collect();
        let writes: Vec<Vec<AttrId>> = nodes.iter().map(|r| rhs_attrs(rules, *r)).collect();
        let n = nodes.len();
        let mut edges = vec![Vec::new(); n];
        let mut in_degree = vec![0usize; n];
        // Self-edges are kept: a rule whose RHS feeds its own LHS (e.g. the
        // FN→FN standardization ϕ4) depends on itself, and Fig. 7's degree
        // ratios count such loops.
        for u in 0..n {
            for v in 0..n {
                if writes[u].iter().any(|a| reads[v].contains(a)) {
                    edges[u].push(v);
                    in_degree[v] += 1;
                }
            }
        }
        DepGraph {
            nodes,
            edges,
            in_degree,
        }
    }

    /// The rules, in node-index order.
    pub fn nodes(&self) -> &[RuleRef] {
        &self.nodes
    }

    /// Outgoing edges of node `u`.
    pub fn successors(&self, u: usize) -> &[usize] {
        &self.edges[u]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Is the graph empty?
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Strongly connected components via Tarjan (iterative), in reverse
    /// topological order of the condensation (Tarjan's natural output).
    pub fn sccs(&self) -> Vec<Vec<usize>> {
        let n = self.nodes.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut sccs: Vec<Vec<usize>> = Vec::new();
        let mut counter = 0usize;
        // Explicit DFS stack: (node, next-child-index).
        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            let mut dfs: Vec<(usize, usize)> = vec![(start, 0)];
            while let Some(&mut (v, ref mut ci)) = dfs.last_mut() {
                if *ci == 0 {
                    index[v] = counter;
                    low[v] = counter;
                    counter += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if *ci < self.edges[v].len() {
                    let w = self.edges[v][*ci];
                    *ci += 1;
                    if index[w] == usize::MAX {
                        dfs.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        sccs.push(comp);
                    }
                    dfs.pop();
                    if let Some(&mut (parent, _)) = dfs.last_mut() {
                        low[parent] = low[parent].min(low[v]);
                    }
                }
            }
        }
        sccs
    }

    /// Does the graph contain any cycle (an SCC of size > 1, or a self-loop)?
    pub fn has_cycle(&self) -> bool {
        if self.sccs().iter().any(|c| c.len() > 1) {
            return true;
        }
        (0..self.len()).any(|u| self.edges[u].contains(&u))
    }

    /// The eRepair application order: SCC condensation topologically sorted,
    /// rules within an SCC by out/in-degree ratio descending.
    /// Ties break by node index, keeping the order deterministic.
    pub fn erepair_order(&self) -> Vec<RuleRef> {
        let sccs = self.sccs();
        // Tarjan emits SCCs in reverse topological order of the condensation
        // (every edge goes from a later-emitted component to an earlier one),
        // so iterate the list reversed for sources-first.
        let mut order: Vec<RuleRef> = Vec::with_capacity(self.nodes.len());
        for comp in sccs.iter().rev() {
            let mut members: Vec<usize> = comp.clone();
            members.sort_by(|&a, &b| {
                let ra = degree_ratio(self.edges[a].len(), self.in_degree[a]);
                let rb = degree_ratio(self.edges[b].len(), self.in_degree[b]);
                rb.partial_cmp(&ra)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            order.extend(members.into_iter().map(|i| self.nodes[i]));
        }
        order
    }
}

/// Out/in-degree ratio with the convention that an isolated or source node
/// (in-degree 0) sorts first.
fn degree_ratio(out: usize, inn: usize) -> f64 {
    if inn == 0 {
        f64::INFINITY
    } else {
        out as f64 / inn as f64
    }
}

/// Convenience wrapper: the application order for a rule set.
pub fn erepair_order(rules: &RuleSet) -> Vec<RuleRef> {
    DepGraph::build(rules).erepair_order()
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniclean_model::Schema;
    use uniclean_rules::parse_rules;

    fn example_1_1_rules() -> RuleSet {
        let tran = Schema::of_strings(
            "tran",
            &["FN", "LN", "St", "city", "AC", "post", "phn", "gd"],
        );
        let card = Schema::of_strings(
            "card",
            &["FN", "LN", "St", "city", "AC", "zip", "tel", "dob", "gd"],
        );
        let text = r#"
            cfd phi1: tran([AC=131] -> [city=Edi])
            cfd phi2: tran([AC=020] -> [city=Ldn])
            cfd phi3: tran([city, phn] -> [St, AC, post])
            cfd phi4: tran([FN=Bob] -> [FN=Robert])
            md psi: tran[LN] = card[LN] AND tran[city] = card[city] AND tran[St] = card[St] AND tran[post] = card[zip] AND tran[FN] ~lev(4) card[FN] -> tran[FN] <=> card[FN], tran[phn] <=> card[tel]
        "#;
        let parsed = parse_rules(text, &tran, Some(&card)).unwrap();
        RuleSet::new(
            tran,
            Some(card),
            parsed.cfds,
            parsed.positive_mds,
            parsed.negative_mds,
        )
    }

    #[test]
    fn example_1_1_graph_is_one_scc_after_normalization() {
        // The paper's Fig. 7 draws the graph over the *unnormalized* rules
        // as a single SCC; normalization splits ϕ3 and ψ but the cyclic core
        // (city/AC/St/post/FN/phn feed each other) persists.
        let rules = example_1_1_rules();
        let g = DepGraph::build(&rules);
        assert!(g.has_cycle());
        let biggest = g.sccs().into_iter().map(|c| c.len()).max().unwrap();
        assert!(
            biggest >= 4,
            "cyclic core expected, biggest SCC = {biggest}"
        );
    }

    #[test]
    fn order_covers_every_rule_exactly_once() {
        let rules = example_1_1_rules();
        let order = erepair_order(&rules);
        assert_eq!(order.len(), rules.len());
        let set: std::collections::HashSet<_> = order.iter().collect();
        assert_eq!(set.len(), order.len());
    }

    #[test]
    fn acyclic_rules_sort_topologically() {
        // A → B, then B → C: the A-rule must precede the B-rule.
        let s = Schema::of_strings("r", &["A", "B", "C"]);
        let text = "cfd one: r([A] -> [B])\ncfd two: r([B] -> [C])";
        let parsed = parse_rules(text, &s, None).unwrap();
        let rules = RuleSet::cfds_only(s, parsed.cfds);
        let g = DepGraph::build(&rules);
        assert!(!g.has_cycle());
        let order = g.erepair_order();
        assert_eq!(order, vec![RuleRef::Cfd(0), RuleRef::Cfd(1)]);
    }

    #[test]
    fn independent_rules_keep_index_order() {
        let s = Schema::of_strings("r", &["A", "B", "C", "D"]);
        let text = "cfd one: r([A] -> [B])\ncfd two: r([C] -> [D])";
        let parsed = parse_rules(text, &s, None).unwrap();
        let rules = RuleSet::cfds_only(s, parsed.cfds);
        let order = erepair_order(&rules);
        assert_eq!(order.len(), 2);
        assert!(order.contains(&RuleRef::Cfd(0)) && order.contains(&RuleRef::Cfd(1)));
    }

    #[test]
    fn two_rule_cycle_detected() {
        let s = Schema::of_strings("r", &["A", "B"]);
        let text = "cfd one: r([A] -> [B])\ncfd two: r([B] -> [A])";
        let parsed = parse_rules(text, &s, None).unwrap();
        let rules = RuleSet::cfds_only(s, parsed.cfds);
        let g = DepGraph::build(&rules);
        assert!(g.has_cycle());
        assert_eq!(g.sccs().iter().filter(|c| c.len() == 2).count(), 1);
    }

    #[test]
    fn self_loop_counts_as_cycle() {
        // ϕ4-style standardization rule: FN appears on both sides.
        let s = Schema::of_strings("r", &["FN"]);
        let parsed = parse_rules("cfd std: r([FN=Bob] -> [FN=Robert])", &s, None).unwrap();
        let rules = RuleSet::cfds_only(s, parsed.cfds);
        assert!(DepGraph::build(&rules).has_cycle());
    }

    #[test]
    fn empty_ruleset_is_trivial() {
        let s = Schema::of_strings("r", &["A"]);
        let rules = RuleSet::cfds_only(s, vec![]);
        let g = DepGraph::build(&rules);
        assert!(g.is_empty());
        assert!(!g.has_cycle());
        assert!(g.erepair_order().is_empty());
    }

    #[test]
    fn example_6_1_ratio_ordering_within_scc() {
        // Reconstruct Example 6.1's ratios with three mutually dependent
        // rules: higher out/in ratio first.
        let s = Schema::of_strings("r", &["A", "B", "C"]);
        // a: A→B (feeds b), b: B→C (feeds c), c: C→A (feeds a).
        let text = "cfd a: r([A] -> [B])\ncfd b: r([B] -> [C])\ncfd c: r([C] -> [A])";
        let parsed = parse_rules(text, &s, None).unwrap();
        let rules = RuleSet::cfds_only(s, parsed.cfds);
        let g = DepGraph::build(&rules);
        let order = g.erepair_order();
        // All ratios are 1 → falls back to index order, deterministic.
        assert_eq!(
            order,
            vec![RuleRef::Cfd(0), RuleRef::Cfd(1), RuleRef::Cfd(2)]
        );
    }
}
