//! Implication of a rule by `Σ ∪ Γ` (Theorem 4.2).
//!
//! `Θ ⊨ ξ` iff every instance satisfying `Θ` also satisfies `ξ`. The
//! implication analysis "helps us find and remove redundant rules from Θ".
//! Theorem 4.2's proof gives small models for the complement:
//!
//! * for a CFD `ξ = (X → A, tp)`: a counterexample of at most **two**
//!   tuples agreeing on `X` and matching `tp[X]`;
//! * for an MD `ξ`: a counterexample of a **single** tuple.
//!
//! We search those models exactly over the proof's active domains (rule
//! constants, master values, fresh values). coNP-complete in general, fast
//! for realistic rule sets.

use std::collections::BTreeSet;

use uniclean_model::{AttrId, Relation, Tuple, Value};
use uniclean_rules::{satisfies_all, Cfd, Md, RuleSet};

/// Does `Θ` (with master data `dm`) imply the CFD `ξ`?
pub fn implies_cfd(rules: &RuleSet, dm: Option<&Relation>, xi: &Cfd) -> bool {
    assert!(xi.is_normalized(), "implication expects a normalized CFD");
    let domains = candidate_domains(rules, dm, Some(xi), None);
    let schema = rules.schema();
    let n = schema.arity();
    let dm_or_empty = dm.cloned().unwrap_or_else(|| {
        Relation::empty(
            rules
                .master_schema()
                .cloned()
                .unwrap_or_else(|| schema.clone()),
        )
    });

    // Enumerate tuple t; tuple s copies t on X (the violation requires
    // t[X] = s[X] ≍ tp[X]) and ranges freely elsewhere.
    let attrs: Vec<usize> = (0..n).collect();
    let mut t_vals = base_tuple(rules);
    enumerate(&domains, &attrs, 0, &mut t_vals, &mut |t_vals| {
        let t = Tuple::from_values(t_vals.to_vec(), 1.0);
        if !xi.lhs_matches(&t) {
            return false; // ξ's premise must fire for a violation
        }
        // Single-tuple violation (constant RHS): t alone.
        if xi.is_constant() && !xi.single_tuple_ok(&t) {
            let d = Relation::new(schema.clone(), vec![t.clone()]);
            if satisfies_all(rules.cfds(), rules.mds(), &d, &dm_or_empty) {
                return true;
            }
        }
        // Two-tuple violation: s agrees on X, differs on A.
        let free: Vec<usize> = (0..n)
            .filter(|i| !xi.lhs().contains(&AttrId::from(*i)))
            .collect();
        let mut s_vals = t_vals.to_vec();
        enumerate(&domains, &free, 0, &mut s_vals, &mut |s_vals| {
            let s = Tuple::from_values(s_vals.to_vec(), 1.0);
            let a = xi.rhs()[0];
            let violates = match xi.rhs_pattern()[0].as_const() {
                // Constant RHS: some tuple matching LHS disagrees with the constant.
                Some(c) => t.value(a) != c || s.value(a) != c,
                // Variable RHS: the pair disagrees on A.
                None => t.value(a) != s.value(a),
            };
            if !violates {
                return false;
            }
            let d = Relation::new(schema.clone(), vec![t.clone(), s.clone()]);
            satisfies_all(rules.cfds(), rules.mds(), &d, &dm_or_empty)
        })
        .is_some()
    })
    .is_none()
}

/// Does `Θ` (with master data `dm`) imply the MD `ξ`?
pub fn implies_md(rules: &RuleSet, dm: &Relation, xi: &Md) -> bool {
    assert!(xi.is_normalized(), "implication expects a normalized MD");
    let domains = candidate_domains(rules, Some(dm), None, Some(xi));
    let schema = rules.schema();
    let attrs: Vec<usize> = (0..schema.arity()).collect();
    let mut t_vals = base_tuple(rules);
    enumerate(&domains, &attrs, 0, &mut t_vals, &mut |t_vals| {
        let t = Tuple::from_values(t_vals.to_vec(), 1.0);
        let (e, f) = xi.rhs()[0];
        let violated = dm
            .rows()
            .any(|s| xi.premise_matches(&t, s) && t.value(e) != s.value(f));
        if !violated {
            return false;
        }
        let d = Relation::new(schema.clone(), vec![t.clone()]);
        satisfies_all(rules.cfds(), rules.mds(), &d, dm)
    })
    .is_none()
}

/// Candidate values per attribute: constants of `Σ` and of the queried rule,
/// master values referenced by MD conclusions/premises, two fresh values
/// (a two-tuple counterexample may need two distinct non-constants).
fn candidate_domains(
    rules: &RuleSet,
    dm: Option<&Relation>,
    xi_cfd: Option<&Cfd>,
    xi_md: Option<&Md>,
) -> Vec<Vec<Value>> {
    let schema = rules.schema();
    let n = schema.arity();
    let mut domains: Vec<Vec<Value>> = vec![Vec::new(); n];
    let add_cfd = |domains: &mut Vec<Vec<Value>>, c: &Cfd| {
        for (a, p) in c.lhs().iter().zip(c.lhs_pattern()) {
            if let Some(v) = p.as_const() {
                push_unique(&mut domains[a.index()], v.clone());
            }
        }
        for (a, p) in c.rhs().iter().zip(c.rhs_pattern()) {
            if let Some(v) = p.as_const() {
                push_unique(&mut domains[a.index()], v.clone());
            }
        }
    };
    for c in rules.cfds() {
        add_cfd(&mut domains, c);
    }
    if let Some(xi) = xi_cfd {
        add_cfd(&mut domains, xi);
    }
    if let Some(dm) = dm {
        let add_md = |domains: &mut Vec<Vec<Value>>, m: &Md| {
            for p in m.premises() {
                let col: BTreeSet<Value> =
                    dm.rows().map(|s| s.value(p.master_attr).clone()).collect();
                for v in col {
                    if !v.is_null() {
                        push_unique(&mut domains[p.attr.index()], v);
                    }
                }
            }
            for &(e, f) in m.rhs() {
                let col: BTreeSet<Value> = dm.rows().map(|s| s.value(f).clone()).collect();
                for v in col {
                    if !v.is_null() {
                        push_unique(&mut domains[e.index()], v);
                    }
                }
            }
        };
        for m in rules.mds() {
            add_md(&mut domains, m);
        }
        if let Some(xi) = xi_md {
            add_md(&mut domains, xi);
        }
    }
    for (i, d) in domains.iter_mut().enumerate() {
        let name = schema.attr_name(AttrId::from(i)).to_string();
        d.push(Value::str(format!("\u{2294}f1\u{2294}{name}")));
        d.push(Value::str(format!("\u{2294}f2\u{2294}{name}")));
    }
    domains
}

fn base_tuple(rules: &RuleSet) -> Vec<Value> {
    (0..rules.schema().arity())
        .map(|i| {
            Value::str(format!(
                "\u{2294}f1\u{2294}{}",
                rules.schema().attr_name(AttrId::from(i))
            ))
        })
        .collect()
}

/// Depth-first enumeration of `attrs` over `domains`; `found` returns true
/// to stop. Returns `Some(())` if the callback accepted an assignment.
fn enumerate(
    domains: &[Vec<Value>],
    attrs: &[usize],
    depth: usize,
    values: &mut Vec<Value>,
    found: &mut dyn FnMut(&[Value]) -> bool,
) -> Option<()> {
    if depth == attrs.len() {
        return found(values).then_some(());
    }
    let attr = attrs[depth];
    let saved = values[attr].clone();
    // Clone the candidate list to sidestep borrow conflicts; domains are tiny.
    for cand in domains[attr].clone() {
        values[attr] = cand;
        if enumerate(domains, attrs, depth + 1, values, found).is_some() {
            return Some(());
        }
    }
    values[attr] = saved;
    None
}

fn push_unique(v: &mut Vec<Value>, x: Value) {
    if !v.contains(&x) {
        v.push(x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use uniclean_model::Schema;
    use uniclean_rules::parse_rules;

    fn cfds(schema: &Arc<Schema>, text: &str) -> Vec<Cfd> {
        parse_rules(text, schema, None).unwrap().cfds
    }

    #[test]
    fn rule_implies_itself() {
        let s = Schema::of_strings("tran", &["AC", "city"]);
        let r = cfds(&s, "cfd a: tran([AC=131] -> [city=Edi])");
        let rules = RuleSet::cfds_only(s, r.clone());
        assert!(implies_cfd(&rules, None, &r[0]));
    }

    #[test]
    fn transitivity_of_fds_is_implied() {
        // A→B and B→C imply A→C.
        let s = Schema::of_strings("r", &["A", "B", "C"]);
        let r = cfds(&s, "cfd ab: r([A] -> [B])\ncfd bc: r([B] -> [C])");
        let rules = RuleSet::cfds_only(s.clone(), r);
        let ac = cfds(&s, "cfd ac: r([A] -> [C])").remove(0);
        assert!(implies_cfd(&rules, None, &ac));
    }

    #[test]
    fn unrelated_fd_is_not_implied() {
        let s = Schema::of_strings("r", &["A", "B", "C"]);
        let r = cfds(&s, "cfd ab: r([A] -> [B])");
        let rules = RuleSet::cfds_only(s.clone(), r);
        let ac = cfds(&s, "cfd ac: r([A] -> [C])").remove(0);
        assert!(!implies_cfd(&rules, None, &ac));
    }

    #[test]
    fn constant_specialization_is_implied() {
        // [A] → [B] implies [A=1] → [B] (pattern specializes).
        let s = Schema::of_strings("r", &["A", "B"]);
        let r = cfds(&s, "cfd ab: r([A] -> [B])");
        let rules = RuleSet::cfds_only(s.clone(), r);
        let spec = cfds(&s, "cfd spec: r([A=1] -> [B])").remove(0);
        assert!(implies_cfd(&rules, None, &spec));
    }

    #[test]
    fn constant_generalization_is_not_implied() {
        let s = Schema::of_strings("r", &["A", "B"]);
        let r = cfds(&s, "cfd spec: r([A=1] -> [B])");
        let rules = RuleSet::cfds_only(s.clone(), r);
        let gen = cfds(&s, "cfd gen: r([A] -> [B])").remove(0);
        assert!(!implies_cfd(&rules, None, &gen));
    }

    #[test]
    fn constant_chain_implies_composed_constant() {
        // AC=131 → city=Edi and city=Edi → country=UK imply AC=131 → country=UK.
        let s = Schema::of_strings("r", &["AC", "city", "country"]);
        let r = cfds(
            &s,
            "cfd a: r([AC=131] -> [city=Edi])\ncfd b: r([city=Edi] -> [country=UK])",
        );
        let rules = RuleSet::cfds_only(s.clone(), r);
        let comp = cfds(&s, "cfd c: r([AC=131] -> [country=UK])").remove(0);
        assert!(implies_cfd(&rules, None, &comp));
        let wrong = cfds(&s, "cfd w: r([AC=131] -> [country=FR])").remove(0);
        assert!(!implies_cfd(&rules, None, &wrong));
    }

    #[test]
    fn md_implication_with_master_data() {
        let tran = Schema::of_strings("tran", &["LN", "phn", "city"]);
        let card = Schema::of_strings("card", &["LN", "tel", "city"]);
        let parsed = parse_rules(
            "md m: tran[LN] = card[LN] -> tran[phn] <=> card[tel]",
            &tran,
            Some(&card),
        )
        .unwrap();
        let rules = RuleSet::new(
            tran.clone(),
            Some(card.clone()),
            vec![],
            parsed.positive_mds.clone(),
            vec![],
        );
        let dm = Relation::new(
            card.clone(),
            vec![Tuple::of_strs(&["Brady", "555", "Ldn"], 1.0)],
        );
        // The MD implies itself.
        assert!(implies_md(&rules, &dm, &parsed.positive_mds[0]));
        // A *stronger* MD (premise subset → fires more often) is not implied.
        let stronger = parse_rules(
            "md strong: tran[LN] = card[LN] -> tran[city] <=> card[city]",
            &tran,
            Some(&card),
        )
        .unwrap()
        .positive_mds
        .remove(0);
        assert!(!implies_md(&rules, &dm, &stronger));
        // A *weaker* MD (extra premise) is implied.
        let weaker = parse_rules(
            "md weak: tran[LN] = card[LN] AND tran[city] = card[city] -> tran[phn] <=> card[tel]",
            &tran,
            Some(&card),
        )
        .unwrap()
        .positive_mds
        .remove(0);
        assert!(implies_md(&rules, &dm, &weaker));
    }
}
