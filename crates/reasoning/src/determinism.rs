//! Determinism diagnostics (§4.2, Theorem 4.8).
//!
//! The determinism problem — do all terminating cleaning processes reach the
//! same fixpoint? — is PSPACE-complete, so we provide a *refutation-capable*
//! dynamic check: run the chase under several strategies (the eRepair
//! dependency order, its reverse, first-applicable, and seeded random
//! orders) and compare fixpoints. Distinct fixpoints are a definitive
//! counterexample; agreement across all probes is evidence, not proof.

use uniclean_model::{Relation, Value};
use uniclean_rules::RuleSet;

use crate::chase::{Chase, ChaseOutcome, ChaseStrategy};
use crate::depgraph::erepair_order;

/// Outcome of the multi-order probe.
#[derive(Clone, Debug)]
pub struct DeterminismReport {
    /// `Some(true)` — all probed orders reached the *same* fixpoint.
    /// `Some(false)` — two orders reached different fixpoints (definitive
    /// non-determinism witness). `None` — some probe did not reach a
    /// fixpoint within the step budget, so nothing can be concluded.
    pub deterministic: Option<bool>,
    /// Number of distinct fixpoints observed.
    pub distinct_fixpoints: usize,
    /// Number of probes that reached a fixpoint.
    pub converged_probes: usize,
    /// Total probes run.
    pub total_probes: usize,
}

/// Probe determinism of cleaning `d` under `rules` with `seeds` extra
/// random orders and a per-run budget of `max_steps`.
pub fn determinism_check(
    rules: &RuleSet,
    master: Option<&Relation>,
    d: &Relation,
    max_steps: usize,
    seeds: u64,
) -> DeterminismReport {
    let chase = Chase::new(rules, master, max_steps);
    let mut strategies = vec![
        ChaseStrategy::FirstApplicable,
        ChaseStrategy::Ordered(erepair_order(rules)),
        ChaseStrategy::Ordered(erepair_order(rules).into_iter().rev().collect()),
    ];
    strategies.extend((0..seeds).map(ChaseStrategy::Seeded));
    let total_probes = strategies.len();

    let mut fixpoints: Vec<Vec<Value>> = Vec::new();
    let mut converged = 0usize;
    for s in strategies {
        if let ChaseOutcome::Fixpoint { result, .. } = chase.run(d, s) {
            converged += 1;
            let snap: Vec<Value> = result
                .rows()
                .flat_map(|t| t.cells().map(|c| c.value.clone()))
                .collect();
            if !fixpoints.contains(&snap) {
                fixpoints.push(snap);
            }
        }
    }
    let deterministic = if converged < total_probes {
        if fixpoints.len() > 1 {
            Some(false) // even partial convergence can refute
        } else {
            None
        }
    } else {
        Some(fixpoints.len() <= 1)
    };
    DeterminismReport {
        deterministic,
        distinct_fixpoints: fixpoints.len(),
        converged_probes: converged,
        total_probes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use uniclean_model::{Schema, Tuple};
    use uniclean_rules::parse_rules;

    fn cfd_rules(schema: &Arc<Schema>, text: &str) -> RuleSet {
        let parsed = parse_rules(text, schema, None).unwrap();
        RuleSet::cfds_only(schema.clone(), parsed.cfds)
    }

    #[test]
    fn constant_rules_are_deterministic() {
        let s = Schema::of_strings("tran", &["AC", "city"]);
        let rules = cfd_rules(&s, "cfd a: tran([AC=131] -> [city=Edi])");
        let d = Relation::new(s, vec![Tuple::of_strs(&["131", "Ldn"], 0.5)]);
        let r = determinism_check(&rules, None, &d, 100, 3);
        assert_eq!(r.deterministic, Some(true));
        assert_eq!(r.distinct_fixpoints, 1);
        assert_eq!(r.converged_probes, r.total_probes);
    }

    #[test]
    fn conflicting_variable_cfd_is_nondeterministic() {
        // Two tuples agree on K and disagree on B: either value can win
        // depending on which direction fires first.
        let s = Schema::of_strings("r", &["K", "B"]);
        let rules = cfd_rules(&s, "cfd fd: r([K] -> [B])");
        let d = Relation::new(
            s,
            vec![
                Tuple::of_strs(&["k", "x"], 0.5),
                Tuple::of_strs(&["k", "y"], 0.5),
            ],
        );
        let r = determinism_check(&rules, None, &d, 100, 8);
        assert_eq!(r.deterministic, Some(false));
        assert!(r.distinct_fixpoints >= 2);
    }

    #[test]
    fn oscillating_rules_are_inconclusive() {
        let s = Schema::of_strings("tran", &["AC", "post", "city"]);
        let rules = cfd_rules(
            &s,
            "cfd a: tran([AC=131] -> [city=Edi])\ncfd b: tran([post=Z] -> [city=Ldn])",
        );
        let d = Relation::new(s, vec![Tuple::of_strs(&["131", "Z", "q"], 0.5)]);
        let r = determinism_check(&rules, None, &d, 50, 2);
        // No probe converges (every order cycles), and all cycles look alike.
        assert_eq!(r.deterministic, None);
        assert_eq!(r.converged_probes, 0);
    }

    #[test]
    fn clean_data_trivially_deterministic() {
        let s = Schema::of_strings("tran", &["AC", "city"]);
        let rules = cfd_rules(&s, "cfd a: tran([AC=131] -> [city=Edi])");
        let d = Relation::new(s, vec![Tuple::of_strs(&["131", "Edi"], 0.5)]);
        let r = determinism_check(&rules, None, &d, 10, 1);
        assert_eq!(r.deterministic, Some(true));
    }
}
