//! Consistency of `Σ ∪ Γ` (Theorem 4.1).
//!
//! The consistency problem asks whether a *nonempty* instance `D` exists
//! with `D ⊨ Σ` and `(D, Dm) ⊨ Γ` — i.e. whether the rules are dirty
//! themselves. Theorem 4.1's proof establishes a small-model property: it
//! suffices to look for a *single-tuple* instance whose values come from the
//! active domain (constants appearing in `Σ` and `Dm`, plus one fresh value
//! per attribute). This module implements exactly that search, with
//! backtracking and early pruning on constant CFDs. The problem is
//! NP-complete, so the search is exponential in the number of
//! rule-relevant attributes in the worst case — fine for realistic rule
//! sets, and exact.
//!
//! Caveat inherited from concrete similarity predicates: the "fresh value"
//! of the proof must be dissimilar from master values under every MD premise
//! predicate; we use a long sentinel string that no realistic threshold
//! matches, and evaluate predicates concretely, so the check is exact for
//! equality premises and faithful for similarity premises.

use std::collections::BTreeSet;

use uniclean_model::{AttrId, Relation, Tuple, Value};
use uniclean_rules::{Cfd, RuleSet};

/// Does a nonempty `D` with `D ⊨ Σ` and `(D, Dm) ⊨ Γ` exist?
pub fn is_consistent(rules: &RuleSet, dm: Option<&Relation>) -> bool {
    consistency_witness(rules, dm).is_some()
}

/// A single-tuple witness of consistency, if one exists.
pub fn consistency_witness(rules: &RuleSet, dm: Option<&Relation>) -> Option<Tuple> {
    assert!(
        rules.mds().is_empty() || dm.is_some(),
        "rule set contains MDs but no master relation was supplied"
    );
    let schema = rules.schema();
    let n = schema.arity();

    // Candidate domain per attribute (Thm 4.1's adom): constants from Σ on
    // that attribute, master values paired with it by an MD conclusion, and
    // one fresh value.
    let mut domains: Vec<Vec<Value>> = vec![Vec::new(); n];
    for cfd in rules.cfds() {
        for (a, p) in cfd.lhs().iter().zip(cfd.lhs_pattern()) {
            if let Some(c) = p.as_const() {
                push_unique(&mut domains[a.index()], c.clone());
            }
        }
        for (a, p) in cfd.rhs().iter().zip(cfd.rhs_pattern()) {
            if let Some(c) = p.as_const() {
                push_unique(&mut domains[a.index()], c.clone());
            }
        }
    }
    if let Some(dm) = dm {
        for md in rules.mds() {
            let (e, f) = md.rhs()[0];
            let col: BTreeSet<Value> = dm.rows().map(|s| s.value(f).clone()).collect();
            for v in col {
                if !v.is_null() {
                    push_unique(&mut domains[e.index()], v);
                }
            }
        }
    }
    for (i, d) in domains.iter_mut().enumerate() {
        d.push(fresh_value(schema.attr_name(AttrId::from(i))));
    }

    // Only attributes mentioned by some rule need enumeration; the rest keep
    // their fresh value.
    let mut relevant: BTreeSet<usize> = BTreeSet::new();
    for cfd in rules.cfds() {
        relevant.extend(cfd.lhs().iter().map(|a| a.index()));
        relevant.extend(cfd.rhs().iter().map(|a| a.index()));
    }
    for md in rules.mds() {
        relevant.extend(md.premises().iter().map(|p| p.attr.index()));
        relevant.extend(md.rhs().iter().map(|(e, _)| e.index()));
    }
    let order: Vec<usize> = relevant.into_iter().collect();

    // Constant CFDs can be checked as soon as all their attributes are
    // assigned; index them by the deepest relevant position they involve.
    let depth_of = |a: AttrId| order.iter().position(|&i| i == a.index());
    let mut checks_at: Vec<Vec<&Cfd>> = vec![Vec::new(); order.len() + 1];
    for cfd in rules.cfds() {
        let max_depth = cfd
            .lhs()
            .iter()
            .chain(cfd.rhs())
            .filter_map(|a| depth_of(*a))
            .max()
            .unwrap_or(0);
        checks_at[max_depth + 1].push(cfd);
    }

    let mut values: Vec<Value> = (0..n)
        .map(|i| fresh_value(schema.attr_name(AttrId::from(i))))
        .collect();
    if search(rules, dm, &order, &domains, &checks_at, 0, &mut values) {
        Some(Tuple::from_values(values, 1.0))
    } else {
        None
    }
}

fn search(
    rules: &RuleSet,
    dm: Option<&Relation>,
    order: &[usize],
    domains: &[Vec<Value>],
    checks_at: &[Vec<&Cfd>],
    depth: usize,
    values: &mut Vec<Value>,
) -> bool {
    // Prune: every constant CFD fully assigned by now must hold.
    let t = Tuple::from_values(values.clone(), 1.0);
    if !checks_at[depth].iter().all(|c| c.single_tuple_ok(&t)) {
        return false;
    }
    if depth == order.len() {
        // Full candidate: verify MDs against the master relation.
        if let Some(dm) = dm {
            for md in rules.mds() {
                let (e, f) = md.rhs()[0];
                for s in dm.rows() {
                    if md.premise_matches(&t, s) && t.value(e) != s.value(f) {
                        return false;
                    }
                }
            }
        }
        return true;
    }
    let attr = order[depth];
    for cand in &domains[attr] {
        values[attr] = cand.clone();
        if search(rules, dm, order, domains, checks_at, depth + 1, values) {
            return true;
        }
    }
    false
}

fn push_unique(v: &mut Vec<Value>, x: Value) {
    if !v.contains(&x) {
        v.push(x);
    }
}

/// A sentinel guaranteed distinct from every rule constant and (for
/// realistic thresholds) dissimilar from master values.
fn fresh_value(attr: &str) -> Value {
    Value::str(format!("\u{2294}fresh\u{2294}{attr}\u{2294}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use uniclean_model::Schema;
    use uniclean_rules::parse_rules;

    fn cfd_rules(schema: &Arc<Schema>, text: &str) -> RuleSet {
        let parsed = parse_rules(text, schema, None).unwrap();
        RuleSet::cfds_only(schema.clone(), parsed.cfds)
    }

    #[test]
    fn example_rules_are_consistent() {
        let s = Schema::of_strings("tran", &["AC", "city", "phn", "St", "post", "FN"]);
        let rules = cfd_rules(
            &s,
            "cfd phi1: tran([AC=131] -> [city=Edi])\n\
             cfd phi2: tran([AC=020] -> [city=Ldn])\n\
             cfd phi3: tran([city, phn] -> [St])\n\
             cfd phi4: tran([FN=Bob] -> [FN=Robert])",
        );
        assert!(is_consistent(&rules, None));
    }

    #[test]
    fn directly_contradictory_cfds_are_inconsistent() {
        // Same premise forces city to two different constants; since the
        // premise constant 131 can also *be chosen or avoided*, an instance
        // avoiding AC=131 exists — so this pair alone is still consistent.
        let s = Schema::of_strings("tran", &["AC", "city"]);
        let rules = cfd_rules(
            &s,
            "cfd a: tran([AC=131] -> [city=Edi])\ncfd b: tran([AC=131] -> [city=Ldn])",
        );
        assert!(is_consistent(&rules, None));

        // Forcing the premise with an empty-LHS-like chain: AC itself is
        // forced by a rule on city... make every choice contradictory:
        // city must be Edi (from a) and Ldn (from b) whenever AC=131, and
        // AC must be 131 whatever city is.
        let rules = cfd_rules(
            &s,
            "cfd a: tran([AC=131] -> [city=Edi])\n\
             cfd b: tran([AC=131] -> [city=Ldn])\n\
             cfd c: tran([city] -> [AC=131])",
        );
        assert!(!is_consistent(&rules, None));
    }

    #[test]
    fn witness_satisfies_the_rules() {
        let s = Schema::of_strings("tran", &["AC", "city"]);
        let rules = cfd_rules(&s, "cfd a: tran([AC=131] -> [city=Edi])");
        let w = consistency_witness(&rules, None).expect("consistent");
        assert!(rules.cfds().iter().all(|c| c.single_tuple_ok(&w)));
    }

    #[test]
    fn md_against_master_constrains_consistency() {
        // MD forces t[city] to equal the master city whenever AC matches;
        // a CFD forces city=Ldn whenever AC=131; master says 131 → Edi.
        // Choosing AC=131 is contradictory, but AC can stay fresh → consistent.
        let tran = Schema::of_strings("tran", &["AC", "city"]);
        let card = Schema::of_strings("card", &["AC", "city"]);
        let parsed = parse_rules(
            "cfd a: tran([AC=131] -> [city=Ldn])\n\
             md m: tran[AC] = card[AC] -> tran[city] <=> card[city]",
            &tran,
            Some(&card),
        )
        .unwrap();
        let rules = RuleSet::new(
            tran.clone(),
            Some(card.clone()),
            parsed.cfds,
            parsed.positive_mds,
            vec![],
        );
        let dm = Relation::new(card.clone(), vec![Tuple::of_strs(&["131", "Edi"], 1.0)]);
        assert!(is_consistent(&rules, Some(&dm)));

        // Now force AC = 131 via a CFD on city (any city value): inconsistent.
        let parsed = parse_rules(
            "cfd a: tran([AC=131] -> [city=Ldn])\n\
             cfd b: tran([city] -> [AC=131])\n\
             md m: tran[AC] = card[AC] -> tran[city] <=> card[city]",
            &tran,
            Some(&card),
        )
        .unwrap();
        let rules = RuleSet::new(
            tran,
            Some(card.clone()),
            parsed.cfds,
            parsed.positive_mds,
            vec![],
        );
        let dm = Relation::new(card, vec![Tuple::of_strs(&["131", "Edi"], 1.0)]);
        assert!(!is_consistent(&rules, Some(&dm)));
    }

    #[test]
    fn empty_ruleset_is_consistent() {
        let s = Schema::of_strings("r", &["A"]);
        assert!(is_consistent(&RuleSet::cfds_only(s, vec![]), None));
    }

    #[test]
    fn finite_domain_collapse_is_found() {
        // FN must be Robert if Bob; but another rule maps Robert → Bob.
        // A fresh FN value sidesteps both, so the set is consistent; adding
        // a rule forcing FN=Bob for every LN makes it inconsistent.
        let s = Schema::of_strings("r", &["FN", "LN"]);
        let rules = cfd_rules(
            &s,
            "cfd a: r([FN=Bob] -> [FN=Robert])\n\
             cfd b: r([FN=Robert] -> [FN=Bob])",
        );
        assert!(is_consistent(&rules, None));
        let rules = cfd_rules(
            &s,
            "cfd a: r([FN=Bob] -> [FN=Robert])\n\
             cfd b: r([FN=Robert] -> [FN=Bob])\n\
             cfd c: r([LN] -> [FN=Bob])",
        );
        assert!(!is_consistent(&rules, None));
    }
}
