//! Termination diagnostics (§4.2, Theorem 4.7).
//!
//! Whether a rule-based cleaning process terminates is PSPACE-complete, so
//! no static check can be exact. This module provides:
//!
//! * a **sound sufficient condition** for guaranteed termination — the rule
//!   dependency graph is acyclic *and* no two rules write the same data
//!   attribute. Then each attribute has a single writer, writers fire in
//!   topological order, and every cell changes at most once per upstream
//!   stabilization, so the process is finite;
//! * **static non-termination witnesses** of the Example 4.6 shape: two
//!   constant CFDs that write the *same* attribute with *different*
//!   constants and whose premises can hold simultaneously and survive each
//!   other's write — any tuple triggering both oscillates forever;
//! * for everything in between, the dynamic [`crate::chase`] executor
//!   provides bounded runs with exact cycle detection.

use uniclean_rules::{Cfd, RuleSet};

use crate::depgraph::{DepGraph, RuleRef};

/// What the static termination analysis can say about a rule set.
#[derive(Clone, Debug)]
pub struct TerminationReport {
    /// Is the rule dependency graph acyclic?
    pub dep_graph_acyclic: bool,
    /// Pairs of normalized-CFD indices that form an Example 4.6-style
    /// oscillator (same RHS attribute, different constants, compatible and
    /// mutually surviving premises).
    pub constant_conflicts: Vec<(usize, usize)>,
    /// Pairs of rules writing the same data attribute (potential ping-pong
    /// through variable CFDs/MDs; a warning, not a proof).
    pub shared_rhs_pairs: Vec<(RuleRef, RuleRef)>,
    /// True iff the sufficient condition holds: acyclic dependency graph and
    /// single-writer attributes. Rule sets failing this may still terminate
    /// — the problem is PSPACE-complete (Thm 4.7).
    pub guaranteed_terminating: bool,
}

/// Run the static analysis.
pub fn termination_diagnostics(rules: &RuleSet) -> TerminationReport {
    let g = DepGraph::build(rules);
    let dep_graph_acyclic = !g.has_cycle();

    let mut constant_conflicts = Vec::new();
    let cfds = rules.cfds();
    for i in 0..cfds.len() {
        for j in i + 1..cfds.len() {
            if is_constant_oscillator(&cfds[i], &cfds[j]) {
                constant_conflicts.push((i, j));
            }
        }
    }

    // Writers per data attribute.
    let mut shared_rhs_pairs = Vec::new();
    let mut writers: std::collections::HashMap<u16, Vec<RuleRef>> =
        std::collections::HashMap::new();
    for (i, c) in cfds.iter().enumerate() {
        writers
            .entry(c.rhs()[0].0)
            .or_default()
            .push(RuleRef::Cfd(i));
    }
    for (i, m) in rules.mds().iter().enumerate() {
        writers
            .entry(m.rhs()[0].0 .0)
            .or_default()
            .push(RuleRef::Md(i));
    }
    for list in writers.values() {
        for a in 0..list.len() {
            for b in a + 1..list.len() {
                shared_rhs_pairs.push((list[a], list[b]));
            }
        }
    }
    shared_rhs_pairs.sort_unstable();

    let guaranteed_terminating =
        dep_graph_acyclic && constant_conflicts.is_empty() && shared_rhs_pairs.is_empty();
    TerminationReport {
        dep_graph_acyclic,
        constant_conflicts,
        shared_rhs_pairs,
        guaranteed_terminating,
    }
}

/// Example 4.6 shape: ϕi and ϕj are constant CFDs on the same RHS attribute
/// `A` with different constants, their LHS patterns can hold on one tuple
/// simultaneously, and each premise survives the other's write to `A`.
fn is_constant_oscillator(a: &Cfd, b: &Cfd) -> bool {
    if !a.is_constant() || !b.is_constant() {
        return false;
    }
    let attr_a = a.rhs()[0];
    if attr_a != b.rhs()[0] {
        return false;
    }
    let ca = a.rhs_pattern()[0].as_const().expect("constant CFD");
    let cb = b.rhs_pattern()[0].as_const().expect("constant CFD");
    if ca == cb {
        return false;
    }
    // Premises jointly satisfiable: shared LHS attrs must not demand
    // different constants.
    for (x, px) in a.lhs().iter().zip(a.lhs_pattern()) {
        for (y, py) in b.lhs().iter().zip(b.lhs_pattern()) {
            if x == y {
                if let (Some(vx), Some(vy)) = (px.as_const(), py.as_const()) {
                    if vx != vy {
                        return false;
                    }
                }
            }
        }
    }
    // Each premise must survive the other's write: if A ∈ LHS(ϕi), its
    // pattern must accept the other's constant.
    let survives = |c: &Cfd, other_const: &uniclean_model::Value| {
        c.lhs()
            .iter()
            .zip(c.lhs_pattern())
            .filter(|(x, _)| **x == attr_a)
            .all(|(_, p)| p.matches(other_const))
    };
    survives(a, cb) && survives(b, ca)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use uniclean_model::Schema;
    use uniclean_rules::parse_rules;

    fn cfd_rules(schema: &Arc<Schema>, text: &str) -> RuleSet {
        let parsed = parse_rules(text, schema, None).unwrap();
        RuleSet::cfds_only(schema.clone(), parsed.cfds)
    }

    #[test]
    fn example_4_6_is_flagged() {
        let s = Schema::of_strings("tran", &["AC", "post", "city"]);
        let rules = cfd_rules(
            &s,
            "cfd phi1: tran([AC=131] -> [city=Edi])\n\
             cfd phi5: tran([post=\"EH8 9AB\"] -> [city=Ldn])",
        );
        let report = termination_diagnostics(&rules);
        assert_eq!(report.constant_conflicts, vec![(0, 1)]);
        assert!(!report.guaranteed_terminating);
        // The dependency graph itself is acyclic — the oscillation is not a
        // graph cycle, which is exactly why the dedicated check exists.
        assert!(report.dep_graph_acyclic);
    }

    #[test]
    fn incompatible_premises_do_not_oscillate() {
        // Both write city but their premises can never hold together.
        let s = Schema::of_strings("tran", &["AC", "city"]);
        let rules = cfd_rules(
            &s,
            "cfd a: tran([AC=131] -> [city=Edi])\ncfd b: tran([AC=020] -> [city=Ldn])",
        );
        let report = termination_diagnostics(&rules);
        assert!(report.constant_conflicts.is_empty());
        // They still share the RHS attribute, so the strong guarantee is off.
        assert!(!report.shared_rhs_pairs.is_empty());
    }

    #[test]
    fn premise_killed_by_write_does_not_oscillate() {
        // b's premise includes city=Ldn; once a writes Edi, b stops firing.
        let s = Schema::of_strings("tran", &["AC", "post", "city"]);
        let rules = cfd_rules(
            &s,
            "cfd a: tran([AC=131] -> [city=Edi])\n\
             cfd b: tran([post=Z, city=Ldn] -> [city=Ldn])",
        );
        let report = termination_diagnostics(&rules);
        assert!(report.constant_conflicts.is_empty());
    }

    #[test]
    fn single_writer_acyclic_rules_are_guaranteed() {
        let s = Schema::of_strings("r", &["A", "B", "C"]);
        let rules = cfd_rules(&s, "cfd ab: r([A] -> [B])\ncfd bc: r([B] -> [C])");
        let report = termination_diagnostics(&rules);
        assert!(report.dep_graph_acyclic);
        assert!(report.constant_conflicts.is_empty());
        assert!(report.shared_rhs_pairs.is_empty());
        assert!(report.guaranteed_terminating);
    }

    #[test]
    fn cyclic_graph_voids_the_guarantee() {
        let s = Schema::of_strings("r", &["A", "B"]);
        let rules = cfd_rules(&s, "cfd ab: r([A] -> [B])\ncfd ba: r([B] -> [A])");
        let report = termination_diagnostics(&rules);
        assert!(!report.dep_graph_acyclic);
        assert!(!report.guaranteed_terminating);
    }

    #[test]
    fn oscillator_also_detected_dynamically() {
        use crate::chase::{Chase, ChaseOutcome, ChaseStrategy};
        use uniclean_model::{Relation, Tuple};
        let s = Schema::of_strings("tran", &["AC", "post", "city"]);
        let rules = cfd_rules(
            &s,
            "cfd phi1: tran([AC=131] -> [city=Edi])\n\
             cfd phi5: tran([post=\"EH8 9AB\"] -> [city=Ldn])",
        );
        // Static flags it…
        assert!(!termination_diagnostics(&rules).guaranteed_terminating);
        // …and the chase confirms on a concrete triggering tuple.
        let d = Relation::new(s, vec![Tuple::of_strs(&["131", "EH8 9AB", "x"], 0.5)]);
        let chase = Chase::new(&rules, None, 100);
        assert!(matches!(
            chase.run(&d, ChaseStrategy::FirstApplicable),
            ChaseOutcome::Cycle { .. }
        ));
    }
}
