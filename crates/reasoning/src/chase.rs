//! A bounded rule-application executor ("chase") with exact cycle detection.
//!
//! Rule-based cleaning applies one cleaning-rule instance at a time
//! (§3.1); the chase makes that process explicit so the termination and
//! determinism analyses (§4.2) can observe it. One *step* is one update:
//!
//! * constant CFD `ϕc` on tuple `t`: `t[X] ≍ tp[X]`, `t[A] ≠ tp[A]` ⇒
//!   `t[A] := tp[A]`;
//! * variable CFD `ϕv` applying `t2` to `t1`: both match the pattern,
//!   `t1[Y] = t2[Y]`, `t1[B] ≠ t2[B]`, `t2[B]` non-null ⇒ `t1[B] := t2[B]`;
//! * MD `ψ` with master tuple `s`: premise holds, `t[E] ≠ s[F]` ⇒
//!   `t[E] := s[F]`.
//!
//! Which applicable instance fires is the *strategy*; different strategies
//! realize the nondeterminism the determinism problem quantifies over.
//! Visited states are stored exactly (full value snapshots), so a reported
//! cycle is a genuine non-termination witness, not a hash artefact.

use std::collections::HashSet;

use uniclean_model::{FixMark, Relation, TupleId, Value};
use uniclean_rules::RuleSet;

use crate::depgraph::RuleRef;

/// How the chase picks the next applicable rule instance.
#[derive(Clone, Debug)]
pub enum ChaseStrategy {
    /// First applicable instance in (rule index, tuple index) order.
    FirstApplicable,
    /// Scan rules in the given order, first applicable instance wins.
    Ordered(Vec<RuleRef>),
    /// Pseudo-random choice among all applicable instances, seeded for
    /// reproducibility (xorshift; no external RNG dependency).
    Seeded(u64),
}

/// Result of a chase run.
#[derive(Clone, Debug)]
pub enum ChaseOutcome {
    /// No rule instance applies any more.
    Fixpoint {
        /// The final relation.
        result: Relation,
        /// Number of update steps taken.
        steps: usize,
    },
    /// A previously seen state recurred — the run provably does not
    /// terminate under this strategy.
    Cycle {
        /// Steps taken before the repeat was detected.
        steps: usize,
    },
    /// The step budget ran out before a fixpoint or cycle was seen.
    StepLimit {
        /// The budget that was exhausted.
        steps: usize,
    },
}

impl ChaseOutcome {
    /// The fixpoint relation, if the run reached one.
    pub fn fixpoint(&self) -> Option<&Relation> {
        match self {
            ChaseOutcome::Fixpoint { result, .. } => Some(result),
            _ => None,
        }
    }
}

/// One applicable rule instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Instance {
    rule: RuleRef,
    /// Tuple being written.
    target: TupleId,
    /// For variable CFDs the source tuple; for MDs the master tuple.
    source: Option<TupleId>,
}

/// The chase executor.
pub struct Chase<'a> {
    rules: &'a RuleSet,
    master: Option<&'a Relation>,
    max_steps: usize,
}

impl<'a> Chase<'a> {
    /// Build an executor. `max_steps` bounds every run (the termination
    /// problem is PSPACE-complete, so a budget is mandatory).
    pub fn new(rules: &'a RuleSet, master: Option<&'a Relation>, max_steps: usize) -> Self {
        assert!(
            rules.mds().is_empty() || master.is_some(),
            "rule set contains MDs but no master relation was supplied"
        );
        Chase {
            rules,
            master,
            max_steps,
        }
    }

    /// Run to fixpoint / cycle / step limit from `d` under `strategy`.
    pub fn run(&self, d: &Relation, strategy: ChaseStrategy) -> ChaseOutcome {
        let mut state = d.clone();
        let mut seen: HashSet<Vec<Value>> = HashSet::new();
        seen.insert(snapshot(&state));
        let mut rng = match strategy {
            ChaseStrategy::Seeded(s) => s | 1,
            _ => 0,
        };
        for step in 0..self.max_steps {
            let inst = match &strategy {
                ChaseStrategy::FirstApplicable => {
                    self.first_applicable(&state, &self.default_order())
                }
                ChaseStrategy::Ordered(order) => self.first_applicable(&state, order),
                ChaseStrategy::Seeded(_) => {
                    let all = self.all_applicable(&state);
                    if all.is_empty() {
                        None
                    } else {
                        // xorshift64
                        rng ^= rng << 13;
                        rng ^= rng >> 7;
                        rng ^= rng << 17;
                        Some(all[(rng as usize) % all.len()])
                    }
                }
            };
            let Some(inst) = inst else {
                return ChaseOutcome::Fixpoint {
                    result: state,
                    steps: step,
                };
            };
            self.apply(&mut state, inst);
            if !seen.insert(snapshot(&state)) {
                return ChaseOutcome::Cycle { steps: step + 1 };
            }
        }
        ChaseOutcome::StepLimit {
            steps: self.max_steps,
        }
    }

    fn default_order(&self) -> Vec<RuleRef> {
        let mut order: Vec<RuleRef> = (0..self.rules.cfds().len()).map(RuleRef::Cfd).collect();
        order.extend((0..self.rules.mds().len()).map(RuleRef::Md));
        order
    }

    fn first_applicable(&self, d: &Relation, order: &[RuleRef]) -> Option<Instance> {
        order
            .iter()
            .find_map(|r| self.applicable_for_rule(d, *r, Some(1)).into_iter().next())
    }

    fn all_applicable(&self, d: &Relation) -> Vec<Instance> {
        self.default_order()
            .into_iter()
            .flat_map(|r| self.applicable_for_rule(d, r, None))
            .collect()
    }

    /// Applicable instances of one rule, optionally capped.
    fn applicable_for_rule(&self, d: &Relation, r: RuleRef, cap: Option<usize>) -> Vec<Instance> {
        let mut out = Vec::new();
        let full = |out: &Vec<Instance>| cap.is_some_and(|c| out.len() >= c);
        match r {
            RuleRef::Cfd(i) => {
                let cfd = &self.rules.cfds()[i];
                let b = cfd.rhs()[0];
                if cfd.is_constant() {
                    let want = cfd.rhs_pattern()[0].as_const().expect("constant CFD");
                    for (tid, t) in d.iter() {
                        if cfd.lhs_matches(t) && t.value(b) != want {
                            out.push(Instance {
                                rule: r,
                                target: tid,
                                source: None,
                            });
                            if full(&out) {
                                return out;
                            }
                        }
                    }
                } else {
                    for (t1, tu1) in d.iter() {
                        if !cfd.lhs_matches(tu1) {
                            continue;
                        }
                        for (t2, tu2) in d.iter() {
                            if t1 == t2 || !cfd.lhs_matches(tu2) {
                                continue;
                            }
                            if tu1.agrees_with(tu2, cfd.lhs())
                                && !tu2.value(b).is_null()
                                && tu1.value(b) != tu2.value(b)
                            {
                                out.push(Instance {
                                    rule: r,
                                    target: t1,
                                    source: Some(t2),
                                });
                                if full(&out) {
                                    return out;
                                }
                            }
                        }
                    }
                }
            }
            RuleRef::Md(i) => {
                let md = &self.rules.mds()[i];
                let dm = self.master.expect("MDs require master data");
                let (e, f) = md.rhs()[0];
                for (tid, t) in d.iter() {
                    for (sid, s) in dm.iter() {
                        if md.premise_matches(t, s) && t.value(e) != s.value(f) {
                            out.push(Instance {
                                rule: r,
                                target: tid,
                                source: Some(sid),
                            });
                            if full(&out) {
                                return out;
                            }
                        }
                    }
                }
            }
        }
        out
    }

    fn apply(&self, d: &mut Relation, inst: Instance) {
        match inst.rule {
            RuleRef::Cfd(i) => {
                let cfd = &self.rules.cfds()[i];
                let b = cfd.rhs()[0];
                let new = if cfd.is_constant() {
                    cfd.rhs_pattern()[0]
                        .as_const()
                        .expect("constant CFD")
                        .clone()
                } else {
                    let src = inst.source.expect("variable CFD has a source tuple");
                    d.tuple(src).value(b).clone()
                };
                d.tuple_mut(inst.target).set(b, new, 0.0, FixMark::Possible);
            }
            RuleRef::Md(i) => {
                let md = &self.rules.mds()[i];
                let (e, f) = md.rhs()[0];
                let src = inst.source.expect("MD has a master tuple");
                let new = self
                    .master
                    .expect("MDs require master data")
                    .tuple(src)
                    .value(f)
                    .clone();
                d.tuple_mut(inst.target).set(e, new, 0.0, FixMark::Possible);
            }
        }
    }
}

/// Exact state snapshot: the flat list of values.
fn snapshot(d: &Relation) -> Vec<Value> {
    d.rows()
        .flat_map(|t| t.cells().map(|c| c.value.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use uniclean_model::{Schema, Tuple};
    use uniclean_rules::parse_rules;

    fn cfd_rules(schema: &Arc<Schema>, text: &str) -> RuleSet {
        let parsed = parse_rules(text, schema, None).unwrap();
        RuleSet::cfds_only(schema.clone(), parsed.cfds)
    }

    #[test]
    fn constant_cfd_reaches_fixpoint() {
        let s = Schema::of_strings("tran", &["AC", "city"]);
        let rules = cfd_rules(&s, "cfd phi1: tran([AC=131] -> [city=Edi])");
        let d = Relation::new(s.clone(), vec![Tuple::of_strs(&["131", "Ldn"], 0.5)]);
        let chase = Chase::new(&rules, None, 100);
        match chase.run(&d, ChaseStrategy::FirstApplicable) {
            ChaseOutcome::Fixpoint { result, steps } => {
                assert_eq!(steps, 1);
                assert_eq!(
                    result.tuple(TupleId(0)).value(s.attr_id_or_panic("city")),
                    &Value::str("Edi")
                );
            }
            other => panic!("expected fixpoint, got {other:?}"),
        }
    }

    #[test]
    fn example_4_6_oscillation_is_detected() {
        // ϕ1: AC=131 → city=Edi and ϕ5: post=EH8 9AB → city=Ldn flip the
        // city of t2 back and forth forever.
        let s = Schema::of_strings("tran", &["AC", "post", "city"]);
        let rules = cfd_rules(
            &s,
            "cfd phi1: tran([AC=131] -> [city=Edi])\ncfd phi5: tran([post=\"EH8 9AB\"] -> [city=Ldn])",
        );
        let d = Relation::new(
            s.clone(),
            vec![Tuple::of_strs(&["131", "EH8 9AB", "Edi"], 0.5)],
        );
        let chase = Chase::new(&rules, None, 1000);
        match chase.run(&d, ChaseStrategy::FirstApplicable) {
            ChaseOutcome::Cycle { steps } => assert!(steps <= 4, "cycle found after {steps} steps"),
            other => panic!("expected a cycle, got {other:?}"),
        }
    }

    #[test]
    fn variable_cfd_propagates_to_fixpoint() {
        let s = Schema::of_strings("r", &["K", "B"]);
        let rules = cfd_rules(&s, "cfd fd: r([K] -> [B])");
        let d = Relation::new(
            s.clone(),
            vec![
                Tuple::of_strs(&["k", "x"], 0.5),
                Tuple::of_strs(&["k", "y"], 0.5),
            ],
        );
        let chase = Chase::new(&rules, None, 100);
        let out = chase.run(&d, ChaseStrategy::FirstApplicable);
        let fp = out.fixpoint().expect("fixpoint");
        let b = s.attr_id_or_panic("B");
        assert_eq!(fp.tuple(TupleId(0)).value(b), fp.tuple(TupleId(1)).value(b));
    }

    #[test]
    fn md_pulls_master_values() {
        let tran = Schema::of_strings("tran", &["LN", "phn"]);
        let card = Schema::of_strings("card", &["LN", "tel"]);
        let parsed = parse_rules(
            "md psi: tran[LN] = card[LN] -> tran[phn] <=> card[tel]",
            &tran,
            Some(&card),
        )
        .unwrap();
        let rules = RuleSet::new(
            tran.clone(),
            Some(card.clone()),
            vec![],
            parsed.positive_mds,
            vec![],
        );
        let d = Relation::new(tran.clone(), vec![Tuple::of_strs(&["Brady", "000"], 0.5)]);
        let dm = Relation::new(card, vec![Tuple::of_strs(&["Brady", "3887644"], 1.0)]);
        let chase = Chase::new(&rules, Some(&dm), 10);
        let out = chase.run(&d, ChaseStrategy::FirstApplicable);
        let fp = out.fixpoint().expect("fixpoint");
        assert_eq!(
            fp.tuple(TupleId(0)).value(tran.attr_id_or_panic("phn")),
            &Value::str("3887644")
        );
    }

    #[test]
    fn step_limit_is_honoured() {
        let s = Schema::of_strings("tran", &["AC", "post", "city"]);
        let rules = cfd_rules(
            &s,
            "cfd phi1: tran([AC=131] -> [city=Edi])\ncfd phi5: tran([post=X] -> [city=Ldn])",
        );
        let d = Relation::new(s, vec![Tuple::of_strs(&["131", "X", "Edi"], 0.5)]);
        // max_steps = 1: not enough to close the 2-cycle.
        let chase = Chase::new(&rules, None, 1);
        match chase.run(&d, ChaseStrategy::FirstApplicable) {
            ChaseOutcome::StepLimit { steps } => assert_eq!(steps, 1),
            other => panic!("expected step limit, got {other:?}"),
        }
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let s = Schema::of_strings("r", &["K", "B"]);
        let rules = cfd_rules(&s, "cfd fd: r([K] -> [B])");
        let d = Relation::new(
            s,
            vec![
                Tuple::of_strs(&["k", "x"], 0.5),
                Tuple::of_strs(&["k", "y"], 0.5),
                Tuple::of_strs(&["k", "z"], 0.5),
            ],
        );
        let chase = Chase::new(&rules, None, 100);
        let a = chase.run(&d, ChaseStrategy::Seeded(42));
        let b = chase.run(&d, ChaseStrategy::Seeded(42));
        assert_eq!(
            snapshot(a.fixpoint().expect("fp")),
            snapshot(b.fixpoint().expect("fp"))
        );
    }

    #[test]
    fn clean_data_is_a_zero_step_fixpoint() {
        let s = Schema::of_strings("tran", &["AC", "city"]);
        let rules = cfd_rules(&s, "cfd phi1: tran([AC=131] -> [city=Edi])");
        let d = Relation::new(s, vec![Tuple::of_strs(&["131", "Edi"], 0.5)]);
        let chase = Chase::new(&rules, None, 10);
        match chase.run(&d, ChaseStrategy::FirstApplicable) {
            ChaseOutcome::Fixpoint { steps, .. } => assert_eq!(steps, 0),
            other => panic!("expected fixpoint, got {other:?}"),
        }
    }
}
