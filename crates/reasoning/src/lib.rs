//! Static analyses of UniClean rule sets (§4 of the paper).
//!
//! The paper proves these problems intractable — consistency is NP-complete
//! (Thm 4.1), implication coNP-complete (Thm 4.2), termination and
//! determinism of rule-based cleaning PSPACE-complete (Thms 4.7, 4.8). This
//! crate implements the *exact small-model characterizations from those
//! proofs*, which are practical for realistic rule sets (tens to hundreds of
//! rules), plus cheap static sufficient conditions used by the cleaning
//! pipeline:
//!
//! * [`depgraph`] — the rule dependency graph, Tarjan SCCs and the
//!   out/in-degree-ratio ordering of §6.2 (Example 6.1);
//! * [`chase`] — a bounded rule-application executor with cycle detection
//!   (the machinery behind termination/determinism diagnostics);
//! * [`consistency`] — single-tuple small-model consistency (Thm 4.1);
//! * [`implication`] — two-tuple small-model implication (Thm 4.2);
//! * [`termination`] — static non-termination witnesses (Example 4.6's
//!   oscillating constant CFDs) and bounded dynamic checks;
//! * [`determinism`] — multi-order fixpoint comparison.

pub mod chase;
pub mod consistency;
pub mod depgraph;
pub mod determinism;
pub mod implication;
pub mod termination;

pub use chase::{Chase, ChaseOutcome, ChaseStrategy};
pub use consistency::is_consistent;
pub use depgraph::{erepair_order, DepGraph, RuleRef};
pub use determinism::{determinism_check, DeterminismReport};
pub use implication::{implies_cfd, implies_md};
pub use termination::{termination_diagnostics, TerminationReport};
