//! Quality metrics for repairing and matching (§8 "Quality measuring").
//!
//! * **Repairing**: "precision is the ratio of attributes correctly updated
//!   to the number of all the attributes updated, and recall is the ratio
//!   of attributes corrected to the number of all erroneous attributes."
//! * **Matching**: "precision is the ratio of true matches correctly found
//!   to all the duplicates found, and recall is the ratio of true matches
//!   correctly found to all the matches between a dataset and master data."
//! * F-measure = 2·(precision·recall)/(precision+recall).

use std::collections::HashSet;

use uniclean_model::{Relation, TupleId};

/// A precision/recall pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrecisionRecall {
    /// Fraction of reported items that are correct.
    pub precision: f64,
    /// Fraction of relevant items that were reported.
    pub recall: f64,
}

impl PrecisionRecall {
    /// The harmonic mean; 0 when both components are 0.
    pub fn f1(&self) -> f64 {
        if self.precision + self.recall == 0.0 {
            0.0
        } else {
            2.0 * self.precision * self.recall / (self.precision + self.recall)
        }
    }
}

/// Attribute-level repair quality of `repaired` against ground truth
/// `truth`, relative to the dirty input `dirty`.
///
/// Conventions: an *update* is any cell whose value differs between `dirty`
/// and `repaired`; it is *correct* iff the repaired value equals the truth.
/// An *erroneous attribute* is a cell where `dirty` differs from `truth`.
/// Empty denominators yield 1.0 (no updates → none wrong; no errors → all
/// corrected).
pub fn repair_quality(dirty: &Relation, repaired: &Relation, truth: &Relation) -> PrecisionRecall {
    assert_eq!(dirty.len(), repaired.len(), "relations must align");
    assert_eq!(dirty.len(), truth.len(), "relations must align");
    let arity = dirty.schema().arity();
    let mut updated = 0usize;
    let mut updated_correct = 0usize;
    let mut errors = 0usize;
    let mut corrected = 0usize;
    for i in 0..dirty.len() {
        let id = TupleId::from(i);
        let (td, tr, tt) = (dirty.tuple(id), repaired.tuple(id), truth.tuple(id));
        for a in 0..arity {
            let a = uniclean_model::AttrId::from(a);
            let was_error = td.value(a) != tt.value(a);
            let was_updated = td.value(a) != tr.value(a);
            let now_correct = tr.value(a) == tt.value(a);
            if was_updated {
                updated += 1;
                if now_correct {
                    updated_correct += 1;
                }
            }
            if was_error {
                errors += 1;
                if now_correct {
                    corrected += 1;
                }
            }
        }
    }
    PrecisionRecall {
        precision: ratio(updated_correct, updated),
        recall: ratio(corrected, errors),
    }
}

/// Pair-level matching quality: `found` versus the true match set.
pub fn matching_quality(
    found: &[(TupleId, TupleId)],
    truth: &HashSet<(TupleId, TupleId)>,
) -> PrecisionRecall {
    let found_set: HashSet<(TupleId, TupleId)> = found.iter().copied().collect();
    let hits = found_set.intersection(truth).count();
    PrecisionRecall {
        precision: ratio(hits, found_set.len()),
        recall: ratio(hits, truth.len()),
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        1.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniclean_model::{Schema, Tuple};

    fn rel(rows: &[[&str; 2]]) -> Relation {
        let s = Schema::of_strings("r", &["A", "B"]);
        Relation::new(s, rows.iter().map(|r| Tuple::of_strs(r, 0.5)).collect())
    }

    #[test]
    fn perfect_repair_scores_one() {
        let dirty = rel(&[["x", "bad"], ["y", "ok"]]);
        let truth = rel(&[["x", "good"], ["y", "ok"]]);
        let repaired = truth.clone();
        let q = repair_quality(&dirty, &repaired, &truth);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
        assert_eq!(q.f1(), 1.0);
    }

    #[test]
    fn wrong_update_costs_precision() {
        let dirty = rel(&[["x", "bad"]]);
        let truth = rel(&[["x", "good"]]);
        let repaired = rel(&[["x", "worse"]]); // updated but wrong
        let q = repair_quality(&dirty, &repaired, &truth);
        assert_eq!(q.precision, 0.0);
        assert_eq!(q.recall, 0.0);
    }

    #[test]
    fn missed_error_costs_recall_only() {
        let dirty = rel(&[["x", "bad"], ["y", "alsobad"]]);
        let truth = rel(&[["x", "good"], ["y", "fine"]]);
        let repaired = rel(&[["x", "good"], ["y", "alsobad"]]); // one fixed
        let q = repair_quality(&dirty, &repaired, &truth);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 0.5);
        assert!((q.f1() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn breaking_a_correct_cell_costs_precision() {
        let dirty = rel(&[["x", "ok"]]);
        let truth = rel(&[["x", "ok"]]);
        let repaired = rel(&[["x", "broken"]]);
        let q = repair_quality(&dirty, &repaired, &truth);
        assert_eq!(q.precision, 0.0);
        assert_eq!(q.recall, 1.0); // no errors existed
    }

    #[test]
    fn untouched_clean_data_scores_one() {
        let d = rel(&[["x", "ok"]]);
        let q = repair_quality(&d, &d, &d);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
    }

    #[test]
    fn matching_metrics() {
        let truth: HashSet<(TupleId, TupleId)> =
            [(TupleId(0), TupleId(0)), (TupleId(1), TupleId(1))]
                .into_iter()
                .collect();
        let found = vec![(TupleId(0), TupleId(0)), (TupleId(2), TupleId(0))];
        let q = matching_quality(&found, &truth);
        assert_eq!(q.precision, 0.5);
        assert_eq!(q.recall, 0.5);
    }

    #[test]
    fn duplicate_found_pairs_count_once() {
        let truth: HashSet<(TupleId, TupleId)> = [(TupleId(0), TupleId(0))].into_iter().collect();
        let found = vec![(TupleId(0), TupleId(0)), (TupleId(0), TupleId(0))];
        let q = matching_quality(&found, &truth);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
    }

    #[test]
    fn f1_zero_when_nothing_matches() {
        let truth: HashSet<(TupleId, TupleId)> = [(TupleId(0), TupleId(0))].into_iter().collect();
        let q = matching_quality(&[], &truth);
        assert_eq!(q.precision, 1.0); // nothing reported, nothing wrong
        assert_eq!(q.recall, 0.0);
        assert_eq!(q.f1(), 0.0);
    }
}
