//! Scoped-thread fan-out for the cleaning phases.
//!
//! # The chunk–merge–apply design
//!
//! The phase algorithms (`cRepair`'s inference fixpoint, `eRepair`'s
//! ordered resolution rounds) are *sequential state machines*: every fix
//! can unlock or mask later fixes, so the write side cannot be naively
//! parallelized without changing results. What **can** fan out is the
//! read-only work that dominates their running time:
//!
//! 1. **chunk** — tuples `0..|D|` are split into `p` contiguous ranges,
//!    one scoped worker per range ([`map_chunks`]);
//! 2. **merge** — each worker returns its results as a plain vector in
//!    chunk order, so concatenation reproduces exactly the tuple-id order
//!    a sequential scan would have produced;
//! 3. **apply** — the unchanged sequential engine consumes the
//!    precomputed results (MD witness lists, 2-in-1 group projections) in
//!    tuple-id order, and recomputes on the spot whenever a repair has
//!    invalidated a precomputed entry.
//!
//! Because the precomputed values are pure functions of the relation state
//! they were computed against, and stale entries are invalidated and
//! recomputed sequentially, the output is **bit-identical** to the
//! single-threaded path for every thread count — the determinism suite
//! (`tests/determinism.rs`) pins this down.
//!
//! Workers use `std::thread::scope` — no external thread-pool dependency
//! (the workspace builds offline) and no `'static` bounds, so workers can
//! borrow the relation, rules and index directly.

use std::num::NonZeroUsize;
use std::ops::Range;

/// The worker count a [`CleanConfig`](crate::CleanConfig) resolves to:
/// the explicit knob, or all available cores.
pub fn effective_parallelism(requested: Option<NonZeroUsize>) -> usize {
    match requested {
        Some(n) => n.get(),
        None => std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1),
    }
}

/// Split `0..len` into at most `parts` non-empty contiguous ranges of
/// near-equal size, in order.
pub(crate) fn chunk_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.clamp(1, len.max(1));
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        if size == 0 {
            break;
        }
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Run `f` over chunked ranges of `0..len` on `threads` scoped workers and
/// return the per-chunk results **in chunk order** (deterministic
/// regardless of which worker finishes first). With `threads <= 1`, or too
/// few items to be worth a fan-out, `f` runs inline on the caller's
/// thread.
pub(crate) fn map_chunks<R, F>(len: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    /// Below this many items a thread spawn costs more than it saves.
    const MIN_ITEMS_PER_WORKER: usize = 64;
    let threads = threads.min((len / MIN_ITEMS_PER_WORKER).max(1));
    if threads <= 1 {
        return if len == 0 {
            Vec::new()
        } else {
            vec![f(0..len)]
        };
    }
    let ranges = chunk_ranges(len, threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges.into_iter().map(|r| scope.spawn(|| f(r))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("phase worker panicked"))
            .collect()
    })
}

/// Run `f` once per index `0..n` across up to `threads` scoped workers
/// and return results **in index order**. Unlike [`map_chunks`] there is
/// no minimum batch size: this is for a *small* number of *individually
/// expensive* jobs (e.g. building the per-attribute access-path indexes
/// of the master index), where even two items are worth two workers.
/// Indices are dealt round-robin so early long jobs don't serialize the
/// tail.
pub(crate) fn map_each<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = threads.clamp(1, n.max(1));
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let f = &f;
                scope.spawn(move || {
                    (w..n)
                        .step_by(workers)
                        .map(|i| (i, f(i)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("index-build worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every index covered"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_each_preserves_index_order() {
        for threads in [1usize, 2, 3, 8] {
            let out = map_each(5, threads, |i| i * 10);
            assert_eq!(out, vec![0, 10, 20, 30, 40], "threads={threads}");
        }
        assert!(map_each(0, 4, |i| i).is_empty());
    }

    #[test]
    fn chunks_cover_exactly_once_in_order() {
        for len in [0usize, 1, 7, 64, 1000] {
            for parts in [1usize, 2, 3, 8, 33] {
                let rs = chunk_ranges(len, parts);
                let flat: Vec<usize> = rs.iter().cloned().flatten().collect();
                assert_eq!(
                    flat,
                    (0..len).collect::<Vec<_>>(),
                    "len={len} parts={parts}"
                );
                assert!(rs.iter().all(|r| !r.is_empty()));
                // Near-equal: sizes differ by at most one.
                if let (Some(min), Some(max)) = (
                    rs.iter().map(|r| r.len()).min(),
                    rs.iter().map(|r| r.len()).max(),
                ) {
                    assert!(max - min <= 1);
                }
            }
        }
    }

    #[test]
    fn map_chunks_preserves_chunk_order() {
        let out = map_chunks(1000, 4, |r| r.clone().map(|i| i * 2).collect::<Vec<_>>());
        let flat: Vec<usize> = out.into_iter().flatten().collect();
        assert_eq!(flat, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_chunks_runs_inline_for_small_inputs() {
        // 10 items over 8 threads: must not produce empty chunks, and must
        // still cover everything.
        let out = map_chunks(10, 8, |r| r.len());
        assert_eq!(out.iter().sum::<usize>(), 10);
    }

    #[test]
    fn effective_parallelism_honors_explicit_knob() {
        let four = NonZeroUsize::new(4).unwrap();
        assert_eq!(effective_parallelism(Some(four)), 4);
        assert!(effective_parallelism(None) >= 1);
    }
}
