//! Information entropy for conflict resolution (§6.1).
//!
//! For a variable CFD `ϕ = R(Y → B, tp)` and a key `ȳ`:
//!
//! ```text
//! H(ϕ | Y = ȳ) = Σ_{i=1..k}  (cnt(ȳ, bi) / |Δ(ȳ)|) · log_k (|Δ(ȳ)| / cnt(ȳ, bi))
//! ```
//!
//! where `k` is the number of distinct `B` values in the conflict set
//! `Δ(ȳ)`. The base-`k` logarithm normalizes `H` into `[0, 1]`:
//! `H = 1` exactly on a uniform conflict (maximal uncertainty), `H = 0`
//! when a single value remains. "When H(ϕ|Y = ȳ) is small enough, it is
//! highly accurate to resolve the conflict by letting t\[B\] = bj for all
//! t ∈ Δ(ȳ), where bj is the one with the highest probability."

/// Entropy of a multiset given its value counts, per the paper's base-`k`
/// definition. Zero-count entries are ignored; `k ≤ 1` yields 0.
pub fn entropy_of_counts<I>(counts: I) -> f64
where
    I: IntoIterator<Item = usize>,
{
    let counts: Vec<usize> = counts.into_iter().filter(|&c| c > 0).collect();
    let k = counts.len();
    if k <= 1 {
        return 0.0;
    }
    let total: usize = counts.iter().sum();
    let total_f = total as f64;
    let ln_k = (k as f64).ln();
    counts
        .iter()
        .map(|&c| {
            let p = c as f64 / total_f;
            p * (total_f / c as f64).ln() / ln_k
        })
        .sum()
}

/// The majority value index and count among `counts` (ties resolved to the
/// first maximum). Returns `None` on empty input.
pub fn majority_index(counts: &[usize]) -> Option<(usize, usize)> {
    counts
        .iter()
        .copied()
        .enumerate()
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn single_value_has_zero_entropy() {
        assert_eq!(entropy_of_counts([5]), 0.0);
        assert_eq!(entropy_of_counts([1]), 0.0);
    }

    #[test]
    fn uniform_conflict_has_entropy_one() {
        assert!(close(entropy_of_counts([3, 3]), 1.0));
        assert!(close(entropy_of_counts([2, 2, 2, 2]), 1.0));
    }

    #[test]
    fn example_6_2_values() {
        // Fig. 8: Δ(ABC=(a1,b1,c1)) has E values {e1×3, e2×1} → H ≈ 0.8113.
        let h = entropy_of_counts([3, 1]);
        assert!(close(h, 0.8112781244591328), "got {h}");
        // Δ(ABC=(a2,b2,c2)) has {e1×1, e2×1} → H = 1.
        assert!(close(entropy_of_counts([1, 1]), 1.0));
        // Δ(ABC=(a2,b2,c3)) has a single value → H = 0.
        assert_eq!(entropy_of_counts([1]), 0.0);
    }

    #[test]
    fn skewed_conflicts_have_low_entropy() {
        let h = entropy_of_counts([99, 1]);
        assert!(h < 0.1, "got {h}");
    }

    #[test]
    fn zero_counts_are_ignored() {
        assert!(close(
            entropy_of_counts([3, 0, 1, 0]),
            entropy_of_counts([3, 1])
        ));
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(entropy_of_counts(std::iter::empty::<usize>()), 0.0);
    }

    #[test]
    fn majority_picks_first_max() {
        assert_eq!(majority_index(&[1, 5, 5]), Some((1, 5)));
        assert_eq!(majority_index(&[]), None);
        assert_eq!(majority_index(&[7]), Some((0, 7)));
    }

    proptest! {
        /// H ∈ [0, 1] for any counts.
        #[test]
        fn entropy_in_unit_interval(counts in proptest::collection::vec(1usize..50, 1..8)) {
            let h = entropy_of_counts(counts);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&h), "H = {h}");
        }

        /// H is invariant under permutation of the counts.
        #[test]
        fn entropy_is_symmetric(mut counts in proptest::collection::vec(1usize..50, 2..6)) {
            let h1 = entropy_of_counts(counts.clone());
            counts.reverse();
            let h2 = entropy_of_counts(counts);
            prop_assert!((h1 - h2).abs() < 1e-9);
        }

        /// Concentrating mass strictly below uniform keeps H < 1.
        #[test]
        fn non_uniform_is_below_one(base in 2usize..40, extra in 1usize..40, k in 2usize..5) {
            let mut counts = vec![base; k];
            counts[0] += extra;
            let h = entropy_of_counts(counts);
            prop_assert!(h < 1.0);
        }
    }
}
