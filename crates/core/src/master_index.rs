//! Blocked access to master data for MD premise evaluation (§5.2).
//!
//! For every MD the index picks the most selective premise conjunct and
//! builds an access path on the corresponding master column:
//!
//! * an **exact hash index** for `=` premises (the common case — most MD
//!   premises demand equality on identifying attributes), keyed by interned
//!   [`Symbol`]s when interning is enabled so probes hash a dense `u32`
//!   instead of string content;
//! * the **top-l LCS suffix-tree blocker** for edit-distance premises
//!   ("traditional database indices… designed for exact matching cannot be
//!   carried over", §5.2);
//! * a **full scan** fallback when every premise uses a predicate without a
//!   usable bound (Jaro, q-grams).
//!
//! Candidates returned by any path still need full premise verification;
//! blocking is complete for its predicate (no true match is lost), which
//! the tests pin down. The `*_into` variants append into a caller-owned
//! buffer so the per-tuple loops of `cRepair`/`eRepair` reuse one
//! allocation across the whole relation.

use std::collections::HashMap;
use std::sync::Arc;

use uniclean_model::{AttrId, FxHashMap, Relation, Row, Symbol, TupleId, Value, ValueInterner};
use uniclean_rules::Md;
use uniclean_similarity::LcsBlocker;

enum Access {
    /// Raw-value exact map (interning disabled).
    Exact {
        premise: usize,
        map: Arc<HashMap<Value, Vec<u32>>>,
    },
    /// Interned exact map, keyed by the **master store's own symbols** —
    /// building it reads the symbol column straight out of the columnar
    /// store, hashing no value content at all. A probe resolves the data
    /// value through the shared interner snapshot once (one lookup + a
    /// trivial `u32` probe); a probe value the interner has never seen
    /// cannot appear in the master column, so `get == None` is exactly a
    /// miss.
    ExactInterned {
        premise: usize,
        map: Arc<FxHashMap<Symbol, Vec<u32>>>,
    },
    Blocked {
        premise: usize,
        blocker: Arc<LcsBlocker>,
        k: usize,
    },
    Scan,
}

/// Per-MD access paths over one master relation.
pub struct MasterIndex {
    plans: Vec<Access>,
    /// Shared interner over the indexed master columns (empty when
    /// interning is disabled or no exact path exists).
    interner: Arc<ValueInterner>,
    master_len: usize,
}

impl MasterIndex {
    /// Build access paths for `mds` over `master` with blocking constant
    /// `l` and value interning enabled. Indexes on the same master column
    /// are shared between MDs.
    pub fn build(mds: &[Md], master: &Relation, l: usize) -> Self {
        Self::build_with(mds, master, l, true)
    }

    /// [`Self::build`] with an explicit interning switch (the benchmark
    /// harness measures both paths; results are identical).
    pub fn build_with(mds: &[Md], master: &Relation, l: usize, interning: bool) -> Self {
        let mut used_interned = false;
        let mut exact_cache: HashMap<AttrId, Arc<HashMap<Value, Vec<u32>>>> = HashMap::new();
        let mut interned_cache: HashMap<AttrId, Arc<FxHashMap<Symbol, Vec<u32>>>> = HashMap::new();
        let mut blocker_cache: HashMap<AttrId, Arc<LcsBlocker>> = HashMap::new();
        let plans = mds
            .iter()
            .map(|md| {
                // Prefer an equality premise, then the tightest edit bound.
                if let Some((i, p)) = md
                    .premises()
                    .iter()
                    .enumerate()
                    .find(|(_, p)| p.pred.is_equality())
                {
                    if interning {
                        used_interned = true;
                        let map = interned_cache.entry(p.master_attr).or_insert_with(|| {
                            // The master column is already interned by its
                            // store: key the rows by those symbols, no
                            // value hashing at all.
                            let mut m: FxHashMap<Symbol, Vec<u32>> = FxHashMap::default();
                            for (row, &sym) in master.col_syms(p.master_attr).iter().enumerate() {
                                m.entry(sym).or_default().push(row as u32);
                            }
                            Arc::new(m)
                        });
                        return Access::ExactInterned {
                            premise: i,
                            map: map.clone(),
                        };
                    }
                    let map = exact_cache.entry(p.master_attr).or_insert_with(|| {
                        let mut m: HashMap<Value, Vec<u32>> = HashMap::new();
                        for (sid, s) in master.iter() {
                            m.entry(s.value(p.master_attr).clone())
                                .or_default()
                                .push(sid.0);
                        }
                        Arc::new(m)
                    });
                    return Access::Exact {
                        premise: i,
                        map: map.clone(),
                    };
                }
                if let Some((i, p, k)) = md
                    .premises()
                    .iter()
                    .enumerate()
                    .filter_map(|(i, p)| p.pred.edit_threshold().map(|k| (i, p, k)))
                    .min_by_key(|&(_, _, k)| k)
                {
                    let blocker = blocker_cache.entry(p.master_attr).or_insert_with(|| {
                        let col: Vec<String> = master
                            .rows()
                            .map(|s| s.value(p.master_attr).render().into_owned())
                            .collect();
                        Arc::new(LcsBlocker::build(&col, l))
                    });
                    return Access::Blocked {
                        premise: i,
                        blocker: blocker.clone(),
                        k,
                    };
                }
                Access::Scan
            })
            .collect();
        // Symbols in the interned maps are the master store's; probes
        // resolve through a snapshot of its (append-only) interner.
        let interner = if used_interned {
            master.interner().clone()
        } else {
            ValueInterner::new()
        };
        MasterIndex {
            plans,
            interner: Arc::new(interner),
            master_len: master.len(),
        }
    }

    /// Visit every candidate master row for `t` under MD `md_idx` (each
    /// still to be verified with [`Md::premise_matches`]). Allocation-free
    /// for the indexed paths. `t` is any [`Row`] — a stored [`uniclean_model::TupleRef`]
    /// probes without materializing anything.
    pub fn for_each_candidate<'t>(
        &self,
        md_idx: usize,
        md: &Md,
        t: impl Row<'t>,
        mut f: impl FnMut(TupleId),
    ) {
        match &self.plans[md_idx] {
            Access::Exact { premise, map } => {
                let v = t.value(md.premises()[*premise].attr);
                if v.is_null() {
                    return;
                }
                if let Some(rows) = map.get(v) {
                    rows.iter().for_each(|r| f(TupleId(*r)));
                }
            }
            Access::ExactInterned { premise, map } => {
                let v = t.value(md.premises()[*premise].attr);
                if v.is_null() {
                    return;
                }
                if let Some(rows) = self.interner.get(v).and_then(|sym| map.get(&sym)) {
                    rows.iter().for_each(|r| f(TupleId(*r)));
                }
            }
            Access::Blocked {
                premise,
                blocker,
                k,
            } => {
                let v = t.value(md.premises()[*premise].attr);
                if v.is_null() {
                    return;
                }
                blocker
                    .candidates_within_edit(&v.render(), *k)
                    .into_iter()
                    .for_each(|r| f(TupleId(r as u32)));
            }
            Access::Scan => (0..self.master_len).map(TupleId::from).for_each(f),
        }
    }

    /// Candidate master rows for `t` under MD number `md_idx`, as a fresh
    /// vector. Hot loops should prefer [`Self::for_each_candidate`] or
    /// [`Self::matches_into`], which reuse caller buffers.
    pub fn candidates<'t>(&self, md_idx: usize, md: &Md, t: impl Row<'t>) -> Vec<TupleId> {
        let mut out = Vec::new();
        self.for_each_candidate(md_idx, md, t, |sid| out.push(sid));
        out
    }

    /// Master rows whose full premise matches `t` under MD `md_idx`.
    pub fn matches<'t>(
        &self,
        md_idx: usize,
        md: &Md,
        t: impl Row<'t>,
        master: &Relation,
    ) -> Vec<TupleId> {
        self.matches_excluding(md_idx, md, t, master, None)
    }

    /// Like [`Self::matches`], skipping one master row — the tuple's own
    /// positional copy under self-matching (master = snapshot of the data).
    pub fn matches_excluding<'t>(
        &self,
        md_idx: usize,
        md: &Md,
        t: impl Row<'t>,
        master: &Relation,
        exclude: Option<TupleId>,
    ) -> Vec<TupleId> {
        let mut out = Vec::new();
        self.matches_into(md_idx, md, t, master, exclude, &mut out);
        out
    }

    /// [`Self::matches_excluding`] appending into a caller-owned buffer
    /// (cleared first), so a tuple loop reuses one allocation throughout.
    pub fn matches_into<'t>(
        &self,
        md_idx: usize,
        md: &Md,
        t: impl Row<'t>,
        master: &Relation,
        exclude: Option<TupleId>,
        out: &mut Vec<TupleId>,
    ) {
        out.clear();
        self.for_each_candidate(md_idx, md, t, |sid| {
            if Some(sid) != exclude && md.premise_matches(t, master.tuple(sid)) {
                out.push(sid);
            }
        });
    }

    /// Is this MD served by a blocked/exact path (diagnostics)?
    pub fn is_indexed(&self, md_idx: usize) -> bool {
        !matches!(self.plans[md_idx], Access::Scan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniclean_model::{Schema, Tuple};
    use uniclean_rules::parse_rules;

    fn setup(pred: &str) -> (Arc<Schema>, Arc<Schema>, Vec<Md>, Relation) {
        let tran = Schema::of_strings("tran", &["LN", "phn"]);
        let card = Schema::of_strings("card", &["LN", "tel"]);
        let text = format!("md m: tran[LN] {pred} card[LN] -> tran[phn] <=> card[tel]");
        let mds = parse_rules(&text, &tran, Some(&card)).unwrap().positive_mds;
        let dm = Relation::new(
            card.clone(),
            vec![
                Tuple::of_strs(&["Smith", "111"], 1.0),
                Tuple::of_strs(&["Brady", "222"], 1.0),
                Tuple::of_strs(&["Smith", "333"], 1.0),
            ],
        );
        (tran, card, mds, dm)
    }

    #[test]
    fn equality_premise_uses_exact_index() {
        let (tran, _, mds, dm) = setup("=");
        let idx = MasterIndex::build(&mds, &dm, 5);
        assert!(idx.is_indexed(0));
        let t = Tuple::of_strs(&["Smith", "999"], 0.5);
        let mut rows = idx.matches(0, &mds[0], &t, &dm);
        rows.sort_unstable();
        assert_eq!(rows, vec![TupleId(0), TupleId(2)]);
        let _ = tran;
    }

    #[test]
    fn interned_and_raw_exact_paths_agree() {
        let (_, _, mds, dm) = setup("=");
        let interned = MasterIndex::build_with(&mds, &dm, 5, true);
        let raw = MasterIndex::build_with(&mds, &dm, 5, false);
        for name in ["Smith", "Brady", "Nobody", ""] {
            let t = Tuple::of_strs(&[name, "999"], 0.5);
            assert_eq!(
                interned.matches(0, &mds[0], &t, &dm),
                raw.matches(0, &mds[0], &t, &dm),
                "probe {name:?}"
            );
        }
    }

    #[test]
    fn edit_premise_uses_blocker_and_is_complete() {
        let (_, _, mds, dm) = setup("~lev(1)");
        let idx = MasterIndex::build(&mds, &dm, 5);
        assert!(idx.is_indexed(0));
        let t = Tuple::of_strs(&["Smjth", "999"], 0.5); // one typo
        let mut rows = idx.matches(0, &mds[0], &t, &dm);
        rows.sort_unstable();
        assert_eq!(rows, vec![TupleId(0), TupleId(2)]);
    }

    #[test]
    fn unbounded_predicate_falls_back_to_scan() {
        let (_, _, mds, dm) = setup("~jaro(0.9)");
        let idx = MasterIndex::build(&mds, &dm, 5);
        assert!(!idx.is_indexed(0));
        let t = Tuple::of_strs(&["Smith", "999"], 0.5);
        let rows = idx.matches(0, &mds[0], &t, &dm);
        assert_eq!(rows.len(), 2, "jaro 0.9 matches both Smith rows");
    }

    #[test]
    fn null_premise_value_yields_no_candidates() {
        let (tran, _, mds, dm) = setup("=");
        let idx = MasterIndex::build(&mds, &dm, 5);
        let mut t = Tuple::of_strs(&["Smith", "999"], 0.5);
        t.set(
            tran.attr_id_or_panic("LN"),
            Value::Null,
            0.0,
            Default::default(),
        );
        assert!(idx.candidates(0, &mds[0], &t).is_empty());
    }

    #[test]
    fn scan_matches_reference_enumeration() {
        let (_, _, mds, dm) = setup("~jaro(0.5)");
        let idx = MasterIndex::build(&mds, &dm, 5);
        let t = Tuple::of_strs(&["Brody", "999"], 0.5);
        let got = idx.matches(0, &mds[0], &t, &dm);
        let want: Vec<TupleId> = dm
            .iter()
            .filter(|(_, s)| mds[0].premise_matches(&t, s))
            .map(|(sid, _)| sid)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn matches_into_reuses_the_buffer() {
        let (_, _, mds, dm) = setup("=");
        let idx = MasterIndex::build(&mds, &dm, 5);
        let mut buf = Vec::new();
        let t = Tuple::of_strs(&["Smith", "999"], 0.5);
        idx.matches_into(0, &mds[0], &t, &dm, None, &mut buf);
        assert_eq!(buf, vec![TupleId(0), TupleId(2)]);
        // A second probe clears before filling; exclusion is honored.
        idx.matches_into(0, &mds[0], &t, &dm, Some(TupleId(0)), &mut buf);
        assert_eq!(buf, vec![TupleId(2)]);
    }
}
