//! Indexed access to master data for MD premise evaluation (§5.2) — a
//! cost-based, predicate-complete access-path planner.
//!
//! §5.2 is explicit that matching dominates cleaning cost and that
//! "traditional database indices… designed for exact matching cannot be
//! carried over" to similarity predicates. For every MD the planner
//! therefore chooses from a family of access paths covering *every*
//! predicate the paper names, so the O(|D|·|Dm|) full-scan fallback
//! survives only for MDs with nothing to index (no premise conjuncts):
//!
//! * a **composite hash key** over *all* strict-equality conjuncts — one
//!   probe replaces the old probe-one-equality-then-verify-the-rest;
//! * an **exact hash index** for a lone `=` conjunct, keyed by interned
//!   [`Symbol`]s when interning is enabled;
//! * a **count-filtered q-gram inverted index**
//!   ([`uniclean_similarity::QGramIndex`]) for `~qgram`; its 1-gram
//!   variant as a conservative common-character/length-ratio prefilter for
//!   `~jaro`/`~jw`; and its 2-gram variant under the *complete* padded-gram
//!   count bound ([`uniclean_similarity::lev_count_bound`]) for `~lev` —
//!   within edit distance `k`, padded profiles share at least
//!   `max(|u|,|v|) + q − 1 − k·q` grams, so the same inverted lists serve
//!   edit-distance conjuncts without the old top-`l` LCS approximation;
//! * **candidate-list intersection** of the two most selective indexable
//!   conjuncts when the primary path alone is expected to leave many
//!   candidates — selectivity is estimated from per-column distinct-count
//!   statistics gathered at build time.
//!
//! Candidates returned by any path still need full premise verification,
//! but every path is now a *complete* filter: no plan can lose a true
//! match, for any predicate family, so candidate generation may shrink
//! the verified set's superset but never the verified set itself.
//! Candidate order is ascending master-row order on every path, so
//! downstream witness selection is deterministic and plan-independent.
//!
//! Probing is allocation-free at steady state: callers hold a
//! [`ProbeScratch`] (overlap accumulators, candidate buffers, and the
//! [`MatchScratch`] kernel caches — Myers pattern bitmaps and q-gram
//! profiles keyed by interned symbol, shared between candidate generation
//! and premise verification) and the `*_into` entry points append into
//! caller-owned buffers. Symbol-keyed caches are epoch-guarded: every
//! build stamps a globally unique epoch, and probing re-keys the scratch
//! to it first, so a scratch can roam across index rebuilds without ever
//! serving stale entries.
//!
//! Index construction fans out over [`crate::parallel`]: each distinct
//! per-attribute artifact (hash map, inverted lists) builds on its own
//! worker, and q-gram artifacts batch-hash the column — each distinct
//! interned value is profiled exactly once, in parallel, and the inverted
//! lists assemble from those parts.
//!
//! External master data is immutable for the life of a session, so one
//! build at [`crate::Cleaner`] construction serves every `clean` /
//! `clean_delta` call; only the self-snapshot mode (master = the data
//! itself) re-plans, once per phase/round, because there the master moves
//! with the repairs.
//!
//! # Examples
//!
//! ```
//! use uniclean_core::{MasterIndex, ProbeScratch};
//! use uniclean_model::{Relation, Schema, Tuple};
//! use uniclean_rules::parse_rules;
//!
//! let tran = Schema::of_strings("tran", &["LN", "phn"]);
//! let card = Schema::of_strings("card", &["LN", "tel"]);
//! let mds = parse_rules(
//!     "md m: tran[LN] ~qgram(2,0.6) card[LN] -> tran[phn] <=> card[tel]",
//!     &tran,
//!     Some(&card),
//! )
//! .unwrap()
//! .positive_mds;
//! let dm = Relation::new(
//!     card,
//!     vec![
//!         Tuple::of_strs(&["Smith", "111"], 1.0),
//!         Tuple::of_strs(&["Brady", "222"], 1.0),
//!     ],
//! );
//! let idx = MasterIndex::build(&mds, &dm);
//! assert!(idx.is_indexed(0), "q-grams no longer fall back to a scan");
//!
//! let mut scratch = ProbeScratch::new();
//! let mut witnesses = Vec::new();
//! let probe = Tuple::of_strs(&["Smith", "999"], 0.5);
//! idx.matches_into(0, &mds[0], &probe, &dm, None, &mut scratch, &mut witnesses);
//! assert_eq!(witnesses.len(), 1);
//! ```

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use uniclean_model::{
    AttrId, FxHashMap, FxHasher, Relation, Row, Symbol, TupleId, Value, ValueInterner,
};
use uniclean_rules::{MatchScratch, Md};
use uniclean_similarity::{simd, ProfilePool, QGramIndex, QGramScratch};

use crate::parallel::{map_chunks, map_each};

/// Estimated candidates per probe above which the planner adds a second
/// selective conjunct as an intersection filter: below this, verifying the
/// primary path's candidates outright is cheaper than a second index
/// probe.
const DEFAULT_INTERSECT_ABOVE: f64 = 64.0;

/// Cost-model factors: expected candidate inflation of each similarity
/// path relative to an exact probe on the same column. The Jaro bound is
/// the loosest of the filters, the q-gram count filter the tightest; the
/// edit-distance count bound loosens with `k` (each edit forgives `q`
/// grams of overlap).
const QGRAM_COST_FACTOR: f64 = 4.0;
const JARO_COST_FACTOR: f64 = 8.0;
const LEV_COST_FACTOR: f64 = 4.0;

/// Window size of the shared inverted index serving `~lev` conjuncts. Two
/// is the sweet spot for the count bound `max(|u|,|v|) + q − 1 − k·q`:
/// q = 1 makes the bound immune to character order (weak filtering),
/// q ≥ 3 forgives too many grams per edit. MDs mixing `~lev` and
/// `~qgram(2, …)` on one attribute share a single artifact.
const LEV_QGRAM_Q: usize = 2;

/// Monotone source of build epochs: every [`MasterIndex`] gets a globally
/// unique stamp, and [`MatchScratch`] caches re-key themselves to it on
/// first contact (dropping entries filled under any other symbol space).
static BUILD_EPOCH: AtomicU64 = AtomicU64::new(1);

/// Planner tuning knobs (see [`MasterIndex::build_with_policy`]). The
/// default matches production behavior; tests force intersection plans by
/// zeroing `intersect_above`.
#[derive(Clone, Copy, Debug)]
pub struct IndexPolicy {
    /// Expected primary-path candidate count above which a second
    /// selective conjunct is intersected in.
    pub intersect_above: f64,
}

impl Default for IndexPolicy {
    fn default() -> Self {
        IndexPolicy {
            intersect_above: DEFAULT_INTERSECT_ABOVE,
        }
    }
}

/// One single-conjunct access path.
enum Path {
    /// Raw-value exact map (interning disabled).
    Exact {
        premise: usize,
        map: Arc<HashMap<Value, Vec<u32>>>,
    },
    /// Interned exact map, keyed by the **master store's own symbols** —
    /// building it reads the symbol column straight out of the columnar
    /// store, hashing no value content at all. A probe resolves the data
    /// value through the shared interner snapshot once; a probe value the
    /// interner has never seen cannot appear in the master column, so
    /// `get == None` is exactly a miss.
    ExactInterned {
        premise: usize,
        map: Arc<FxHashMap<Symbol, Vec<u32>>>,
    },
    /// Complete count-filtered retrieval under the edit bound `k`, over
    /// the shared [`LEV_QGRAM_Q`]-gram inverted lists. When accelerated
    /// kernels are active the count-filtered *distinct values* are
    /// confirmed column-at-a-time through one probe-compiled Myers
    /// pattern (`col` is the vid → value sidecar) before expanding to
    /// rows; the scalar fallback expands unconfirmed candidates directly.
    LevCount {
        premise: usize,
        k: usize,
        index: Arc<QGramIndex>,
        col: Arc<VidColumn>,
    },
    /// Count-filtered q-gram inverted lists for `~qgram(q, min)`.
    QGramCount {
        premise: usize,
        q: usize,
        min: f64,
        index: Arc<QGramIndex>,
    },
    /// 1-gram common-character prefilter for `~jaro`/`~jw`, probed with
    /// the predicate's conservative Jaro floor.
    JaroFilter {
        premise: usize,
        min_jaro: f64,
        index: Arc<QGramIndex>,
    },
}

/// The per-MD plan.
enum Plan {
    Single(Path),
    /// One hash probe over *all* equality conjuncts at once. The map key
    /// is a 64-bit hash of the premise-ordered master symbols (or raw
    /// values with interning off); hash collisions only ever add
    /// candidates, which verification removes.
    Composite {
        premises: Arc<[usize]>,
        map: Arc<FxHashMap<u64, Vec<u32>>>,
        hash_syms: bool,
    },
    /// Sorted-list intersection of the two most selective conjunct paths.
    Intersect {
        primary: Path,
        secondary: Path,
    },
    /// Full enumeration — only for MDs with nothing to index.
    Scan {
        reason: &'static str,
    },
}

/// Reusable probe-side state: candidate buffers, the q-gram overlap
/// accumulator, and the [`MatchScratch`] kernel caches (Myers pattern
/// bitmaps, symbol-keyed q-gram profiles) shared between candidate
/// generation and premise verification.
///
/// One scratch serves any number of probes, against any number of master
/// indexes — master-side caches are epoch-guarded by the index build.
/// Probe-side profile caches key on the probed row's interned symbols,
/// which identify values only within a single relation (append-only
/// interners keep them stable across incremental extension). Callers
/// probing a *different data relation*, or re-running from a rewound
/// state, must use a fresh scratch or [`ProbeScratch::reset`].
#[derive(Default)]
pub struct ProbeScratch {
    qgram: QGramScratch,
    rows_a: Vec<u32>,
    rows_b: Vec<u32>,
    /// Staging for verified-match collection (two-phase probing).
    cand: Vec<TupleId>,
    /// Staging for candidate computation on cache misses.
    rows_out: Vec<u32>,
    /// Kernel caches and per-call buffers for premise evaluation.
    matching: MatchScratch,
    /// Candidate lists keyed by `(MD index, premise-symbol hash)`:
    /// candidate generation is a pure function of the probed *values*, so
    /// distinct tuples sharing them (and re-probes of the same tuple
    /// across fixpoint rounds) replay the list instead of re-walking
    /// posting lists. Epoch-guarded like the kernel caches.
    cand_cache: FxHashMap<(u32, u64), Vec<u32>>,
    /// The symbol-space generation `cand_cache` was filled under.
    cand_epoch: u64,
}

impl ProbeScratch {
    /// A fresh scratch (buffers grow on first use).
    pub fn new() -> Self {
        ProbeScratch::default()
    }

    /// Drop every symbol-keyed cache (keep buffer capacity). Call when the
    /// relation whose rows are being probed changes identity — the
    /// master-side epoch guard cannot see probe-side changes.
    pub fn reset(&mut self) {
        self.matching.reset();
        self.cand_cache.clear();
    }
}

// ---------------------------------------------------------------------------
// Planning (pure, no index construction).
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum PathSpec {
    Exact { premise: usize },
    LevCount { premise: usize, k: usize },
    QGramCount { premise: usize, q: usize, min: f64 },
    JaroFilter { premise: usize, min_jaro: f64 },
}

#[derive(Clone, Debug)]
enum PlanSpec {
    Single(PathSpec),
    Composite {
        premises: Vec<usize>,
    },
    Intersect {
        primary: PathSpec,
        secondary: PathSpec,
    },
    Scan {
        reason: &'static str,
    },
}

/// A costed conjunct: estimated candidates per probe, premise index, and
/// the path that would serve it. Every path is complete (never loses a
/// true match); `degenerate` flags thresholds that keep every row —
/// still complete, but useless as an intersection filter.
struct Costed {
    cost: f64,
    premise: usize,
    spec: PathSpec,
    /// A degenerate threshold (qgram min ≤ 0, Jaro floor ≤ 1/3) keeps
    /// every row.
    degenerate: bool,
}

fn cost_conjunct(md: &Md, premise: usize, rows: usize, stats: &HashMap<AttrId, usize>) -> Costed {
    let p = &md.premises()[premise];
    let distinct = stats.get(&p.master_attr).copied().unwrap_or(1).max(1);
    let per_value = rows as f64 / distinct as f64;
    if p.pred.is_equality() {
        return Costed {
            cost: per_value,
            premise,
            spec: PathSpec::Exact { premise },
            degenerate: false,
        };
    }
    if let Some(k) = p.pred.edit_threshold() {
        // The count bound forgives q grams per edit, so expected
        // candidates widen linearly with k.
        return Costed {
            cost: per_value * LEV_COST_FACTOR * (k + 1) as f64,
            premise,
            spec: PathSpec::LevCount { premise, k },
            degenerate: false,
        };
    }
    if let Some((q, min)) = p.pred.qgram_params() {
        let degenerate = min <= 0.0;
        let cost = if degenerate {
            rows as f64 // keeps every row
        } else {
            per_value * QGRAM_COST_FACTOR
        };
        return Costed {
            cost,
            premise,
            spec: PathSpec::QGramCount { premise, q, min },
            degenerate,
        };
    }
    let min_jaro = p
        .pred
        .jaro_floor()
        .expect("every similarity predicate family is costed");
    let degenerate = 3.0 * min_jaro - 1.0 <= 0.0;
    let cost = if degenerate {
        rows as f64
    } else {
        per_value * JARO_COST_FACTOR
    };
    Costed {
        cost,
        premise,
        spec: PathSpec::JaroFilter { premise, min_jaro },
        degenerate,
    }
}

/// Choose the access plan for one MD. Every candidate path is complete,
/// so the choice is purely cost: a lone equality probe when one exists
/// (always the tightest), otherwise the cheapest similarity filter; a
/// second selective conjunct intersects in when the base is expected to
/// leave enough candidates for a second probe to pay for itself —
/// intersection of complete filters is complete, so candidates can only
/// shrink, never verified matches.
fn plan_md(md: &Md, rows: usize, stats: &HashMap<AttrId, usize>, policy: IndexPolicy) -> PlanSpec {
    let premises = md.premises();
    if premises.is_empty() {
        return PlanSpec::Scan {
            reason: "MD has no premise conjuncts to index",
        };
    }
    let eqs: Vec<usize> = md.equality_premise_indices().collect();
    if eqs.len() >= 2 {
        // All equalities collapse into one composite probe; its expected
        // selectivity is at worst that of the best single equality.
        return PlanSpec::Composite { premises: eqs };
    }
    let costed: Vec<Costed> = (0..premises.len())
        .map(|i| cost_conjunct(md, i, rows, stats))
        .collect();
    // Base path: the lone equality, else the cheapest filter.
    let base = if let Some(&eq) = eqs.first() {
        &costed[eq]
    } else {
        costed
            .iter()
            .min_by(|a, b| {
                a.cost
                    .partial_cmp(&b.cost)
                    .expect("finite costs")
                    .then(a.premise.cmp(&b.premise))
            })
            .expect("premises is non-empty")
    };
    // Secondary filter: the most selective conjunct other than the base,
    // if the base is expected to leave enough candidates for a second
    // probe to pay for itself.
    let secondary = costed
        .iter()
        .filter(|c| c.premise != base.premise && !c.degenerate)
        .min_by(|a, b| {
            a.cost
                .partial_cmp(&b.cost)
                .expect("finite costs")
                .then(a.premise.cmp(&b.premise))
        });
    match secondary {
        Some(s) if base.cost > policy.intersect_above => PlanSpec::Intersect {
            primary: base.spec.clone(),
            secondary: s.spec.clone(),
        },
        _ => PlanSpec::Single(base.spec.clone()),
    }
}

// ---------------------------------------------------------------------------
// Artifact construction (the parallel stage).
// ---------------------------------------------------------------------------

/// A deduplicated unit of index construction; every distinct key builds
/// once, on its own worker when parallelism allows. `~lev` and
/// `~qgram(2, …)` conjuncts on one attribute share one `QGram(attr, 2)`
/// artifact.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum ArtifactKey {
    Exact(AttrId),
    QGram(AttrId, usize),
    /// Master attributes of all equality conjuncts, premise order.
    Composite(Vec<AttrId>),
}

enum Artifact {
    ExactRaw(Arc<HashMap<Value, Vec<u32>>>),
    ExactSym(Arc<FxHashMap<Symbol, Vec<u32>>>),
    QGram(Arc<QGramIndex>, Arc<VidColumn>),
    Composite(Arc<FxHashMap<u64, Vec<u32>>>),
}

/// Distinct-value sidecar of a q-gram artifact: for each dense value id
/// the master store symbol (memo seeding) and the rendered text (columnar
/// Myers sweeps), both in vid order. Built once alongside the index, so
/// probes never re-render a master value.
#[derive(Debug)]
pub(crate) struct VidColumn {
    syms: Vec<Symbol>,
    texts: Vec<Box<str>>,
}

fn build_artifact(
    key: &ArtifactKey,
    master: &Relation,
    interning: bool,
    threads: usize,
) -> Artifact {
    let interner = master.interner();
    match key {
        ArtifactKey::Exact(attr) => {
            if interning {
                // The master column is already interned by its store: key
                // the rows by those symbols, no value hashing at all.
                let mut m: FxHashMap<Symbol, Vec<u32>> = FxHashMap::default();
                for (row, &sym) in master.col_syms(*attr).iter().enumerate() {
                    m.entry(sym).or_default().push(row as u32);
                }
                Artifact::ExactSym(Arc::new(m))
            } else {
                let mut m: HashMap<Value, Vec<u32>> = HashMap::new();
                for (row, &sym) in master.col_syms(*attr).iter().enumerate() {
                    m.entry(interner.resolve(sym).clone())
                        .or_default()
                        .push(row as u32);
                }
                Artifact::ExactRaw(Arc::new(m))
            }
        }
        ArtifactKey::QGram(attr, q) => {
            // Batched build: one pass over the symbol column collects the
            // owner rows of every distinct non-null symbol (dense
            // first-appearance ids — the same order `QGramIndex::build`
            // assigns), then each distinct value is rendered and hashed
            // exactly once, fanned out over workers with per-chunk
            // scratch reuse.
            let null = master.null_sym();
            let mut sym_to_vid: Vec<u32> = vec![u32::MAX; interner.len()];
            let mut syms: Vec<Symbol> = Vec::new();
            let mut owners: Vec<Vec<u32>> = Vec::new();
            for (row, &sym) in master.col_syms(*attr).iter().enumerate() {
                if sym == null {
                    // Null cells never satisfy a similarity premise.
                    continue;
                }
                let slot = &mut sym_to_vid[sym.index()];
                if *slot == u32::MAX {
                    *slot = syms.len() as u32;
                    syms.push(sym);
                    owners.push(Vec::new());
                }
                owners[*slot as usize].push(row as u32);
            }
            // Each worker checks a profile arena out of the process-wide
            // pool (hashing scratch + retired profile vectors), so
            // repeated index rebuilds stop allocating per chunk; the
            // borrowing `from_parts` only copies the gram runs out, and
            // the arenas return to the pool when the guards drop. The
            // rendered texts are kept as the columnar-sweep sidecar.
            let parts = map_chunks(syms.len(), threads, |range| {
                let mut arena = ProfilePool::global().checkout();
                let mut texts: Vec<Box<str>> = Vec::with_capacity(range.len());
                for i in range {
                    let s = interner.resolve(syms[i]).render();
                    arena.push(&s, *q);
                    texts.push(s.into_owned().into_boxed_str());
                }
                (arena, texts)
            });
            let index = QGramIndex::from_parts(
                parts.iter().flat_map(|(arena, _)| arena.profiles()),
                owners,
                master.len(),
                *q,
            );
            let texts: Vec<Box<str>> = parts.into_iter().flat_map(|(_, texts)| texts).collect();
            Artifact::QGram(Arc::new(index), Arc::new(VidColumn { syms, texts }))
        }
        ArtifactKey::Composite(attrs) => {
            let null = master.null_sym();
            let cols: Vec<&[Symbol]> = attrs.iter().map(|&a| master.col_syms(a)).collect();
            let mut map: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
            'rows: for row in 0..master.len() {
                let mut h = FxHasher::default();
                for col in &cols {
                    let sym = col[row];
                    if sym == null {
                        // A null conjunct value can never satisfy the
                        // premise; the row is unreachable through this plan.
                        continue 'rows;
                    }
                    if interning {
                        h.write_u32(sym.0);
                    } else {
                        interner.resolve(sym).hash(&mut h);
                    }
                }
                map.entry(h.finish()).or_default().push(row as u32);
            }
            Artifact::Composite(Arc::new(map))
        }
    }
}

/// Per-MD access paths over one master relation.
pub struct MasterIndex {
    plans: Vec<Plan>,
    /// Shared interner over the indexed master columns (empty when
    /// interning is disabled or no symbol-keyed path exists).
    interner: Arc<ValueInterner>,
    master_len: usize,
    /// Globally unique build stamp guarding symbol-keyed scratch caches.
    epoch: u64,
}

impl MasterIndex {
    /// Build access paths for `mds` over `master` with value interning
    /// enabled. Indexes on the same master column are shared between MDs.
    pub fn build(mds: &[Md], master: &Relation) -> Self {
        Self::build_with(mds, master, true)
    }

    /// [`Self::build`] with an explicit interning switch (the benchmark
    /// harness measures both paths; results are identical).
    pub fn build_with(mds: &[Md], master: &Relation, interning: bool) -> Self {
        Self::build_parallel(mds, master, interning, 1)
    }

    /// [`Self::build_with`] fanning index construction out over
    /// `threads` scoped workers (one per distinct per-attribute
    /// artifact). The built index is identical at every thread count.
    pub fn build_parallel(mds: &[Md], master: &Relation, interning: bool, threads: usize) -> Self {
        Self::build_with_policy(mds, master, interning, threads, IndexPolicy::default())
    }

    /// Fully parameterized build — the planner entry point. `policy`
    /// tunes plan selection (tests force intersection plans with
    /// `intersect_above: 0.0`); all plans remain match-preserving under
    /// any policy.
    pub fn build_with_policy(
        mds: &[Md],
        master: &Relation,
        interning: bool,
        threads: usize,
        policy: IndexPolicy,
    ) -> Self {
        // Distinct-count statistics for every premise master column — the
        // planner's selectivity estimates.
        let mut stat_attrs: Vec<AttrId> = mds
            .iter()
            .flat_map(|md| md.premises().iter().map(|p| p.master_attr))
            .collect();
        stat_attrs.sort_unstable();
        stat_attrs.dedup();
        let counts = map_each(stat_attrs.len(), threads, |i| {
            let mut syms: Vec<Symbol> = master.col_syms(stat_attrs[i]).to_vec();
            syms.sort_unstable();
            syms.dedup();
            syms.len()
        });
        let stats: HashMap<AttrId, usize> = stat_attrs.iter().copied().zip(counts).collect();

        // Plan every MD (pure), then build each distinct artifact once —
        // in parallel, one worker per artifact.
        let specs: Vec<PlanSpec> = mds
            .iter()
            .map(|md| plan_md(md, master.len(), &stats, policy))
            .collect();
        let mut keys: Vec<ArtifactKey> = Vec::new();
        let mut key_ids: HashMap<ArtifactKey, usize> = HashMap::new();
        let mut want = |key: ArtifactKey| {
            key_ids.entry(key.clone()).or_insert_with(|| {
                keys.push(key);
                keys.len() - 1
            });
        };
        let path_key = |md: &Md, spec: &PathSpec| match spec {
            PathSpec::Exact { premise } => ArtifactKey::Exact(md.premises()[*premise].master_attr),
            PathSpec::LevCount { premise, .. } => {
                ArtifactKey::QGram(md.premises()[*premise].master_attr, LEV_QGRAM_Q)
            }
            PathSpec::QGramCount { premise, q, .. } => {
                ArtifactKey::QGram(md.premises()[*premise].master_attr, *q)
            }
            PathSpec::JaroFilter { premise, .. } => {
                ArtifactKey::QGram(md.premises()[*premise].master_attr, 1)
            }
        };
        for (md, spec) in mds.iter().zip(&specs) {
            match spec {
                PlanSpec::Single(p) => want(path_key(md, p)),
                PlanSpec::Composite { premises } => want(ArtifactKey::Composite(
                    premises
                        .iter()
                        .map(|&i| md.premises()[i].master_attr)
                        .collect(),
                )),
                PlanSpec::Intersect { primary, secondary } => {
                    want(path_key(md, primary));
                    want(path_key(md, secondary));
                }
                PlanSpec::Scan { .. } => {}
            }
        }
        // Each artifact gets its own worker; the batched q-gram builds
        // split the residual thread budget between them.
        let inner_threads = (threads / keys.len().max(1)).max(1);
        let artifacts = map_each(keys.len(), threads, |i| {
            build_artifact(&keys[i], master, interning, inner_threads)
        });

        // Assemble the runtime plans.
        let resolve_path = |md: &Md, spec: &PathSpec| -> Path {
            let id = key_ids[&path_key(md, spec)];
            match (spec, &artifacts[id]) {
                (PathSpec::Exact { premise }, Artifact::ExactSym(map)) => Path::ExactInterned {
                    premise: *premise,
                    map: map.clone(),
                },
                (PathSpec::Exact { premise }, Artifact::ExactRaw(map)) => Path::Exact {
                    premise: *premise,
                    map: map.clone(),
                },
                (PathSpec::LevCount { premise, k }, Artifact::QGram(index, col)) => {
                    Path::LevCount {
                        premise: *premise,
                        k: *k,
                        index: index.clone(),
                        col: col.clone(),
                    }
                }
                (PathSpec::QGramCount { premise, q, min }, Artifact::QGram(index, _)) => {
                    Path::QGramCount {
                        premise: *premise,
                        q: *q,
                        min: *min,
                        index: index.clone(),
                    }
                }
                (PathSpec::JaroFilter { premise, min_jaro }, Artifact::QGram(index, _)) => {
                    Path::JaroFilter {
                        premise: *premise,
                        min_jaro: *min_jaro,
                        index: index.clone(),
                    }
                }
                _ => unreachable!("artifact kind matches its key"),
            }
        };
        let mut used_interned = false;
        let plans: Vec<Plan> = mds
            .iter()
            .zip(&specs)
            .map(|(md, spec)| match spec {
                PlanSpec::Single(p) => {
                    let path = resolve_path(md, p);
                    used_interned |= matches!(path, Path::ExactInterned { .. });
                    Plan::Single(path)
                }
                PlanSpec::Composite { premises } => {
                    let key = ArtifactKey::Composite(
                        premises
                            .iter()
                            .map(|&i| md.premises()[i].master_attr)
                            .collect(),
                    );
                    let Artifact::Composite(map) = &artifacts[key_ids[&key]] else {
                        unreachable!("artifact kind matches its key")
                    };
                    used_interned |= interning;
                    Plan::Composite {
                        premises: premises.clone().into(),
                        map: map.clone(),
                        hash_syms: interning,
                    }
                }
                PlanSpec::Intersect { primary, secondary } => {
                    let a = resolve_path(md, primary);
                    let b = resolve_path(md, secondary);
                    used_interned |= matches!(a, Path::ExactInterned { .. })
                        || matches!(b, Path::ExactInterned { .. });
                    Plan::Intersect {
                        primary: a,
                        secondary: b,
                    }
                }
                PlanSpec::Scan { reason } => Plan::Scan { reason },
            })
            .collect();
        // Symbols in the interned maps are the master store's; probes
        // resolve through a snapshot of its (append-only) interner.
        let interner = if used_interned {
            master.interner().clone()
        } else {
            ValueInterner::new()
        };
        MasterIndex {
            plans,
            interner: Arc::new(interner),
            master_len: master.len(),
            epoch: BUILD_EPOCH.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Append the candidates of one single-conjunct path (unordered,
    /// unique rows; empty on a null probe value).
    fn collect_path<'t>(
        &self,
        path: &Path,
        md: &Md,
        t: impl Row<'t>,
        qgram: &mut QGramScratch,
        matching: &mut MatchScratch,
        out: &mut Vec<u32>,
    ) {
        match path {
            Path::Exact { premise, map } => {
                let v = t.value(md.premises()[*premise].attr);
                if v.is_null() {
                    return;
                }
                if let Some(rows) = map.get(v) {
                    out.extend_from_slice(rows);
                }
            }
            Path::ExactInterned { premise, map } => {
                let v = t.value(md.premises()[*premise].attr);
                if v.is_null() {
                    return;
                }
                if let Some(rows) = self.interner.get(v).and_then(|sym| map.get(&sym)) {
                    out.extend_from_slice(rows);
                }
            }
            Path::LevCount {
                premise,
                k,
                index,
                col,
            } => {
                let p = &md.premises()[*premise];
                let v = t.value(p.attr);
                if v.is_null() {
                    return;
                }
                let rendered = v.render();
                let probe_sym = t.sym(p.attr);
                if simd::accelerated() {
                    // Column-at-a-time confirm: count-filter down to
                    // candidate *distinct values*, sweep them through one
                    // probe-compiled Myers pattern, and expand only the
                    // confirmed values to their owner rows. The sweep
                    // seeds the pair-verdict memo, so full premise
                    // verification replays these answers for free.
                    let mut vids = qgram.take_vids();
                    vids.clear();
                    {
                        // The probe profile comes from the same
                        // symbol-keyed cache premise verification uses —
                        // built once per distinct probe value.
                        let profile = match probe_sym {
                            Some(sym) => {
                                matching.probe_profile_cached(sym.0, LEV_QGRAM_Q, &rendered)
                            }
                            None => matching.probe_profile_owned(LEV_QGRAM_Q, &rendered),
                        };
                        index.lev_candidate_values_into(profile, *k, qgram, &mut vids);
                    }
                    let verdicts = matching.lev_sweep_column(
                        probe_sym.map(|s| s.0),
                        &rendered,
                        *k,
                        p.pair_key(),
                        vids.iter().map(|&vid| {
                            let vid = vid as usize;
                            (Some(col.syms[vid].0), &*col.texts[vid])
                        }),
                    );
                    for i in verdicts.iter_ones() {
                        out.extend_from_slice(index.owners(vids[i]));
                    }
                    qgram.restore_vids(vids);
                } else {
                    let profile = match probe_sym {
                        Some(sym) => matching.probe_profile_cached(sym.0, LEV_QGRAM_Q, &rendered),
                        None => matching.probe_profile_owned(LEV_QGRAM_Q, &rendered),
                    };
                    index.candidates_lev_into(profile, *k, qgram, out);
                }
            }
            Path::QGramCount {
                premise,
                q,
                min,
                index,
            } => {
                let attr = md.premises()[*premise].attr;
                let v = t.value(attr);
                if v.is_null() {
                    return;
                }
                let profile = match t.sym(attr) {
                    Some(sym) => matching.probe_profile_cached(sym.0, *q, &v.render()),
                    None => matching.probe_profile_owned(*q, &v.render()),
                };
                index.candidates_jaccard_into(profile, *min, qgram, out);
            }
            Path::JaroFilter {
                premise,
                min_jaro,
                index,
            } => {
                let attr = md.premises()[*premise].attr;
                let v = t.value(attr);
                if v.is_null() {
                    return;
                }
                let profile = match t.sym(attr) {
                    Some(sym) => matching.probe_profile_cached(sym.0, 1, &v.render()),
                    None => matching.probe_profile_owned(1, &v.render()),
                };
                index.candidates_jaro_into(profile, *min_jaro, qgram, out);
            }
        }
    }

    /// Visit every candidate master row for `t` under MD `md_idx`, in
    /// ascending row order (each still to be verified with
    /// [`Md::premise_matches`]). Allocation-free at steady state: buffers
    /// and the probe-profile cache live in the caller's [`ProbeScratch`].
    /// `t` is any [`Row`] — a stored [`uniclean_model::TupleRef`] probes
    /// without materializing anything and feeds the symbol-keyed cache.
    pub fn for_each_candidate<'t>(
        &self,
        md_idx: usize,
        md: &Md,
        t: impl Row<'t>,
        scratch: &mut ProbeScratch,
        mut f: impl FnMut(TupleId),
    ) {
        scratch.matching.sync_epoch(self.epoch);
        if scratch.cand_epoch != self.epoch {
            scratch.cand_cache.clear();
            scratch.cand_epoch = self.epoch;
        }
        if let Plan::Scan { .. } = &self.plans[md_idx] {
            // Trivial enumeration — nothing worth caching.
            (0..self.master_len).map(TupleId::from).for_each(f);
            return;
        }
        // Candidates are a pure function of the probed premise values, so
        // store-backed rows replay by symbol. Detached (symbol-less) rows
        // bypass the cache.
        let key = {
            let mut h = FxHasher::default();
            let mut keyed = true;
            for p in md.premises() {
                match t.sym(p.attr) {
                    Some(sym) => h.write_u32(sym.0),
                    None => {
                        keyed = false;
                        break;
                    }
                }
            }
            keyed.then(|| (md_idx as u32, h.finish()))
        };
        if let Some(k) = key {
            if let Some(rows) = scratch.cand_cache.get(&k) {
                rows.iter().for_each(|&r| f(TupleId(r)));
                return;
            }
        }
        let mut rows = std::mem::take(&mut scratch.rows_out);
        rows.clear();
        self.compute_candidates(md_idx, md, t, scratch, &mut rows);
        rows.iter().for_each(|&r| f(TupleId(r)));
        match key {
            Some(k) => {
                scratch.cand_cache.insert(k, rows);
            }
            None => scratch.rows_out = rows,
        }
    }

    /// Compute the candidate rows of a non-`Scan` plan into `out`
    /// (ascending, unique) — the cache-miss path of
    /// [`Self::for_each_candidate`].
    fn compute_candidates<'t>(
        &self,
        md_idx: usize,
        md: &Md,
        t: impl Row<'t>,
        scratch: &mut ProbeScratch,
        out: &mut Vec<u32>,
    ) {
        let ProbeScratch {
            qgram,
            rows_a,
            rows_b,
            matching,
            ..
        } = scratch;
        match &self.plans[md_idx] {
            Plan::Scan { .. } => unreachable!("scan plans never reach candidate computation"),
            Plan::Single(path @ (Path::Exact { .. } | Path::ExactInterned { .. })) => {
                // Exact buckets are already ascending and unique: emit
                // straight off the map.
                self.collect_path(path, md, t, qgram, matching, out);
            }
            Plan::Single(path) => {
                self.collect_path(path, md, t, qgram, matching, out);
                out.sort_unstable();
            }
            Plan::Composite {
                premises,
                map,
                hash_syms,
            } => {
                let mut h = FxHasher::default();
                for &pi in premises.iter() {
                    let v = t.value(md.premises()[pi].attr);
                    if v.is_null() {
                        return;
                    }
                    if *hash_syms {
                        match self.interner.get(v) {
                            Some(sym) => h.write_u32(sym.0),
                            // Never interned by the master ⇒ not in any
                            // master cell ⇒ the conjunct cannot hold.
                            None => return,
                        }
                    } else {
                        v.hash(&mut h);
                    }
                }
                if let Some(rows) = map.get(&h.finish()) {
                    out.extend_from_slice(rows);
                }
            }
            Plan::Intersect { primary, secondary } => {
                rows_a.clear();
                self.collect_path(primary, md, t, qgram, matching, rows_a);
                if rows_a.is_empty() {
                    return;
                }
                rows_b.clear();
                self.collect_path(secondary, md, t, qgram, matching, rows_b);
                rows_a.sort_unstable();
                rows_b.sort_unstable();
                let (mut i, mut j) = (0usize, 0usize);
                while i < rows_a.len() && j < rows_b.len() {
                    match rows_a[i].cmp(&rows_b[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            out.push(rows_a[i]);
                            i += 1;
                            j += 1;
                        }
                    }
                }
            }
        }
    }

    /// Verified premise matches appended into a caller-owned buffer
    /// (cleared first), ascending row order, so a tuple loop reuses one
    /// allocation (and one probe cache) throughout. Verification runs
    /// through [`Md::premise_matches_with`] on the scratch's kernel caches
    /// — bit-identical answers to [`Md::premise_matches`], with Myers
    /// pattern bitmaps and q-gram profiles reused across probes.
    ///
    /// ```
    /// # use uniclean_core::{MasterIndex, ProbeScratch};
    /// # use uniclean_model::{Relation, Schema, Tuple};
    /// # use uniclean_rules::parse_rules;
    /// # let tran = Schema::of_strings("tran", &["LN", "phn"]);
    /// # let card = Schema::of_strings("card", &["LN", "tel"]);
    /// # let mds = parse_rules(
    /// #     "md m: tran[LN] = card[LN] -> tran[phn] <=> card[tel]",
    /// #     &tran, Some(&card)).unwrap().positive_mds;
    /// # let dm = Relation::new(card, vec![Tuple::of_strs(&["Smith", "1"], 1.0)]);
    /// let idx = MasterIndex::build(&mds, &dm);
    /// let mut scratch = ProbeScratch::new();
    /// let mut buf = Vec::new();
    /// for (tid, t) in dm.iter() {
    ///     idx.matches_into(0, &mds[0], t, &dm, None, &mut scratch, &mut buf);
    ///     assert!(buf.contains(&tid), "reflexive predicates match their own value");
    /// }
    /// ```
    #[allow(clippy::too_many_arguments)] // the probe's full context
    pub fn matches_into<'t>(
        &self,
        md_idx: usize,
        md: &Md,
        t: impl Row<'t>,
        master: &Relation,
        exclude: Option<TupleId>,
        scratch: &mut ProbeScratch,
        out: &mut Vec<TupleId>,
    ) {
        out.clear();
        // Two phases so candidate generation (which borrows the whole
        // scratch) hands over to verification (which borrows its kernel
        // caches): collect, then verify.
        let mut cand = std::mem::take(&mut scratch.cand);
        cand.clear();
        self.for_each_candidate(md_idx, md, t, scratch, |sid| cand.push(sid));
        for &sid in &cand {
            if Some(sid) != exclude
                && md.premise_matches_with(t, master.tuple(sid), &mut scratch.matching)
            {
                out.push(sid);
            }
        }
        scratch.cand = cand;
    }

    /// Is this MD served by an indexed access path? Since the similarity
    /// filters landed this is `true` for every MD with at least one
    /// premise conjunct — see [`Self::scan_reason`] for the residual scan
    /// cases.
    pub fn is_indexed(&self, md_idx: usize) -> bool {
        !matches!(self.plans[md_idx], Plan::Scan { .. })
    }

    /// Why MD `md_idx` fell back to a full scan, or `None` when it is
    /// indexed.
    pub fn scan_reason(&self, md_idx: usize) -> Option<&'static str> {
        match &self.plans[md_idx] {
            Plan::Scan { reason } => Some(reason),
            _ => None,
        }
    }

    /// Human-readable description of the chosen plan (CLI `--explain-plans`
    /// and test diagnostics). `md` must be the same MD the index was built
    /// from at position `md_idx`.
    pub fn describe_plan(&self, md_idx: usize, md: &Md) -> String {
        let attr = |premise: usize| {
            md.master_schema()
                .attr_name(md.premises()[premise].master_attr)
                .to_string()
        };
        let path = |p: &Path| match p {
            Path::Exact { premise, .. } => format!("exact-eq({})", attr(*premise)),
            Path::ExactInterned { premise, .. } => format!("exact-eq[sym]({})", attr(*premise)),
            Path::LevCount { premise, k, .. } => {
                format!("lev-count({}, q={LEV_QGRAM_Q}, k={k})", attr(*premise))
            }
            Path::QGramCount {
                premise, q, min, ..
            } => {
                format!("qgram-count({}, q={q}, min={min})", attr(*premise))
            }
            Path::JaroFilter {
                premise, min_jaro, ..
            } => format!("jaro-1gram({}, floor={min_jaro:.3})", attr(*premise)),
        };
        match &self.plans[md_idx] {
            Plan::Single(p) => path(p),
            Plan::Composite {
                premises,
                hash_syms,
                ..
            } => format!(
                "composite-eq{}({})",
                if *hash_syms { "[sym]" } else { "" },
                premises
                    .iter()
                    .map(|&i| attr(i))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            Plan::Intersect { primary, secondary } => {
                format!("intersect({} ∩ {})", path(primary), path(secondary))
            }
            Plan::Scan { reason } => format!("scan ({reason})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniclean_model::{Schema, Tuple};
    use uniclean_rules::parse_rules;

    fn setup(pred: &str) -> (Arc<Schema>, Arc<Schema>, Vec<Md>, Relation) {
        let tran = Schema::of_strings("tran", &["LN", "phn"]);
        let card = Schema::of_strings("card", &["LN", "tel"]);
        let text = format!("md m: tran[LN] {pred} card[LN] -> tran[phn] <=> card[tel]");
        let mds = parse_rules(&text, &tran, Some(&card)).unwrap().positive_mds;
        let dm = Relation::new(
            card.clone(),
            vec![
                Tuple::of_strs(&["Smith", "111"], 1.0),
                Tuple::of_strs(&["Brady", "222"], 1.0),
                Tuple::of_strs(&["Smith", "333"], 1.0),
            ],
        );
        (tran, card, mds, dm)
    }

    fn probe_matches(idx: &MasterIndex, md: &Md, t: &Tuple, dm: &Relation) -> Vec<TupleId> {
        let mut scratch = ProbeScratch::new();
        let mut out = Vec::new();
        idx.matches_into(0, md, t, dm, None, &mut scratch, &mut out);
        out
    }

    fn reference_matches(md: &Md, t: &Tuple, dm: &Relation) -> Vec<TupleId> {
        dm.iter()
            .filter(|(_, s)| md.premise_matches(t, s))
            .map(|(sid, _)| sid)
            .collect()
    }

    #[test]
    fn equality_premise_uses_exact_index() {
        let (tran, _, mds, dm) = setup("=");
        let idx = MasterIndex::build(&mds, &dm);
        assert!(idx.is_indexed(0));
        assert!(idx.describe_plan(0, &mds[0]).starts_with("exact-eq"));
        let t = Tuple::of_strs(&["Smith", "999"], 0.5);
        assert_eq!(
            probe_matches(&idx, &mds[0], &t, &dm),
            vec![TupleId(0), TupleId(2)]
        );
        let _ = tran;
    }

    #[test]
    fn interned_and_raw_exact_paths_agree() {
        let (_, _, mds, dm) = setup("=");
        let interned = MasterIndex::build_with(&mds, &dm, true);
        let raw = MasterIndex::build_with(&mds, &dm, false);
        for name in ["Smith", "Brady", "Nobody", ""] {
            let t = Tuple::of_strs(&[name, "999"], 0.5);
            assert_eq!(
                probe_matches(&interned, &mds[0], &t, &dm),
                probe_matches(&raw, &mds[0], &t, &dm),
                "probe {name:?}"
            );
        }
    }

    #[test]
    fn edit_premise_uses_count_filter_and_is_complete() {
        let (_, _, mds, dm) = setup("~lev(1)");
        let idx = MasterIndex::build(&mds, &dm);
        assert!(idx.is_indexed(0));
        assert!(idx.describe_plan(0, &mds[0]).starts_with("lev-count"));
        let t = Tuple::of_strs(&["Smjth", "999"], 0.5); // one typo
        assert_eq!(
            probe_matches(&idx, &mds[0], &t, &dm),
            vec![TupleId(0), TupleId(2)]
        );
        // Complete against the reference scan on every probe shape,
        // including the short strings that hit the degenerate branch.
        for name in ["Smith", "Smyth", "S", "", "Smithsonian", "Brody"] {
            let t = Tuple::of_strs(&[name, "999"], 0.5);
            assert_eq!(
                probe_matches(&idx, &mds[0], &t, &dm),
                reference_matches(&mds[0], &t, &dm),
                "probe {name:?}"
            );
        }
    }

    #[test]
    fn jaro_and_qgram_premises_are_indexed_now() {
        // Previously these degraded to Access::Scan; the q-gram filters
        // serve them with bounded candidate generation and identical
        // matches.
        for pred in ["~jaro(0.9)", "~jw(0.9)", "~qgram(2,0.5)"] {
            let (_, _, mds, dm) = setup(pred);
            let idx = MasterIndex::build(&mds, &dm);
            assert!(idx.is_indexed(0), "{pred} should be indexed");
            assert_eq!(idx.scan_reason(0), None);
            for name in ["Smith", "Smjth", "Brady", "Zzz", ""] {
                let t = Tuple::of_strs(&[name, "999"], 0.5);
                assert_eq!(
                    probe_matches(&idx, &mds[0], &t, &dm),
                    reference_matches(&mds[0], &t, &dm),
                    "{pred} probe {name:?}"
                );
            }
        }
    }

    #[test]
    fn multi_equality_premises_use_one_composite_probe() {
        let tran = Schema::of_strings("tran", &["LN", "city", "phn"]);
        let card = Schema::of_strings("card", &["LN", "city", "tel"]);
        let text =
            "md m: tran[LN] = card[LN] AND tran[city] = card[city] -> tran[phn] <=> card[tel]";
        let mds = parse_rules(text, &tran, Some(&card)).unwrap().positive_mds;
        let dm = Relation::new(
            card,
            vec![
                Tuple::of_strs(&["Smith", "Edi", "111"], 1.0),
                Tuple::of_strs(&["Smith", "Ldn", "222"], 1.0),
                Tuple::of_strs(&["Brady", "Edi", "333"], 1.0),
            ],
        );
        for interning in [true, false] {
            let idx = MasterIndex::build_with(&mds, &dm, interning);
            assert!(idx.describe_plan(0, &mds[0]).starts_with("composite-eq"));
            let t = Tuple::of_strs(&["Smith", "Edi", "999"], 0.5);
            // One probe pins both conjuncts: only the (Smith, Edi) row is
            // even a candidate, where the old single-equality path would
            // have surfaced both Smith rows.
            let mut scratch = ProbeScratch::new();
            let mut cands = Vec::new();
            idx.for_each_candidate(0, &mds[0], &t, &mut scratch, |sid| cands.push(sid));
            assert_eq!(cands, vec![TupleId(0)]);
            assert_eq!(probe_matches(&idx, &mds[0], &t, &dm), vec![TupleId(0)]);
        }
    }

    #[test]
    fn forced_intersection_plan_preserves_matches() {
        let tran = Schema::of_strings("tran", &["LN", "FN", "phn"]);
        let card = Schema::of_strings("card", &["LN", "FN", "tel"]);
        let text = "md m: tran[LN] = card[LN] AND tran[FN] ~qgram(2,0.5) card[FN] \
                    -> tran[phn] <=> card[tel]";
        let mds = parse_rules(text, &tran, Some(&card)).unwrap().positive_mds;
        let dm = Relation::new(
            card,
            vec![
                Tuple::of_strs(&["Smith", "Mark", "111"], 1.0),
                Tuple::of_strs(&["Smith", "Robert", "222"], 1.0),
                Tuple::of_strs(&["Brady", "Mark", "333"], 1.0),
            ],
        );
        let plain = MasterIndex::build(&mds, &dm);
        let forced = MasterIndex::build_with_policy(
            &mds,
            &dm,
            true,
            1,
            IndexPolicy {
                intersect_above: 0.0,
            },
        );
        assert!(forced.describe_plan(0, &mds[0]).starts_with("intersect("));
        for (ln, fn_) in [
            ("Smith", "Marc"),
            ("Smith", "Zed"),
            ("Brady", "Mark"),
            ("X", "Y"),
        ] {
            let t = Tuple::of_strs(&[ln, fn_, "9"], 0.5);
            assert_eq!(
                probe_matches(&forced, &mds[0], &t, &dm),
                probe_matches(&plain, &mds[0], &t, &dm),
                "probe ({ln}, {fn_})"
            );
            assert_eq!(
                probe_matches(&forced, &mds[0], &t, &dm),
                reference_matches(&mds[0], &t, &dm),
            );
        }
    }

    #[test]
    fn forced_intersection_with_lev_secondary_preserves_matches() {
        // The lev count filter is complete, so since this PR it may serve
        // as an intersection secondary; matches must be scan-identical.
        let tran = Schema::of_strings("tran", &["LN", "FN", "phn"]);
        let card = Schema::of_strings("card", &["LN", "FN", "tel"]);
        let text = "md m: tran[LN] ~qgram(2,0.5) card[LN] AND tran[FN] ~lev(1) card[FN] \
                    -> tran[phn] <=> card[tel]";
        let mds = parse_rules(text, &tran, Some(&card)).unwrap().positive_mds;
        let dm = Relation::new(
            card,
            vec![
                Tuple::of_strs(&["Smith", "Mark", "111"], 1.0),
                Tuple::of_strs(&["Smyth", "Marc", "222"], 1.0),
                Tuple::of_strs(&["Brady", "Mark", "333"], 1.0),
            ],
        );
        let forced = MasterIndex::build_with_policy(
            &mds,
            &dm,
            true,
            1,
            IndexPolicy {
                intersect_above: 0.0,
            },
        );
        assert!(forced.describe_plan(0, &mds[0]).starts_with("intersect("));
        for (ln, fn_) in [("Smith", "Mark"), ("Smyth", "Marx"), ("Smith", "Zed")] {
            let t = Tuple::of_strs(&[ln, fn_, "9"], 0.5);
            assert_eq!(
                probe_matches(&forced, &mds[0], &t, &dm),
                reference_matches(&mds[0], &t, &dm),
                "probe ({ln}, {fn_})"
            );
        }
    }

    #[test]
    fn null_premise_value_yields_no_candidates() {
        let (tran, _, mds, dm) = setup("=");
        let idx = MasterIndex::build(&mds, &dm);
        let mut t = Tuple::of_strs(&["Smith", "999"], 0.5);
        t.set(
            tran.attr_id_or_panic("LN"),
            Value::Null,
            0.0,
            Default::default(),
        );
        let mut scratch = ProbeScratch::new();
        let mut cands = Vec::new();
        idx.for_each_candidate(0, &mds[0], &t, &mut scratch, |sid| cands.push(sid));
        assert!(cands.is_empty());
    }

    #[test]
    fn degenerate_jaro_threshold_matches_reference_enumeration() {
        let (_, _, mds, dm) = setup("~jaro(0.5)");
        let idx = MasterIndex::build(&mds, &dm);
        assert!(idx.is_indexed(0));
        let t = Tuple::of_strs(&["Brody", "999"], 0.5);
        assert_eq!(
            probe_matches(&idx, &mds[0], &t, &dm),
            reference_matches(&mds[0], &t, &dm),
        );
    }

    #[test]
    fn matches_into_reuses_the_buffer() {
        let (_, _, mds, dm) = setup("=");
        let idx = MasterIndex::build(&mds, &dm);
        let mut scratch = ProbeScratch::new();
        let mut buf = Vec::new();
        let t = Tuple::of_strs(&["Smith", "999"], 0.5);
        idx.matches_into(0, &mds[0], &t, &dm, None, &mut scratch, &mut buf);
        assert_eq!(buf, vec![TupleId(0), TupleId(2)]);
        // A second probe clears before filling; exclusion is honored.
        idx.matches_into(
            0,
            &mds[0],
            &t,
            &dm,
            Some(TupleId(0)),
            &mut scratch,
            &mut buf,
        );
        assert_eq!(buf, vec![TupleId(2)]);
    }

    #[test]
    fn one_scratch_roams_across_index_rebuilds() {
        // The epoch guard must invalidate symbol-keyed kernel caches when
        // the same scratch probes indexes built over different relations
        // (whose interners can assign the same symbols to different
        // values).
        let tran = Schema::of_strings("tran", &["LN", "phn"]);
        let card = Schema::of_strings("card", &["LN", "tel"]);
        let text = "md m: tran[LN] ~lev(1) card[LN] -> tran[phn] <=> card[tel]";
        let mds = parse_rules(text, &tran, Some(&card)).unwrap().positive_mds;
        let dm1 = Relation::new(
            card.clone(),
            vec![
                Tuple::of_strs(&["Smith", "111"], 1.0),
                Tuple::of_strs(&["Brady", "222"], 1.0),
            ],
        );
        let dm2 = Relation::new(
            card.clone(),
            vec![
                Tuple::of_strs(&["Brody", "111"], 1.0),
                Tuple::of_strs(&["Smith", "222"], 1.0),
            ],
        );
        let idx1 = MasterIndex::build(&mds, &dm1);
        let idx2 = MasterIndex::build(&mds, &dm2);
        let mut scratch = ProbeScratch::new();
        let mut out = Vec::new();
        for name in ["Smith", "Smyth", "Brody", "Brady"] {
            let t = Tuple::of_strs(&[name, "9"], 0.5);
            idx1.matches_into(0, &mds[0], &t, &dm1, None, &mut scratch, &mut out);
            assert_eq!(out, reference_matches(&mds[0], &t, &dm1), "dm1 {name:?}");
            idx2.matches_into(0, &mds[0], &t, &dm2, None, &mut scratch, &mut out);
            assert_eq!(out, reference_matches(&mds[0], &t, &dm2), "dm2 {name:?}");
        }
    }

    #[test]
    fn parallel_build_produces_identical_plans() {
        let tran = Schema::of_strings("tran", &["LN", "FN", "phn"]);
        let card = Schema::of_strings("card", &["LN", "FN", "tel"]);
        let text = "md a: tran[LN] = card[LN] AND tran[FN] = card[FN] -> tran[phn] <=> card[tel]\n\
                    md b: tran[FN] ~lev(1) card[FN] -> tran[phn] <=> card[tel]\n\
                    md c: tran[LN] ~qgram(2,0.6) card[LN] -> tran[phn] <=> card[tel]";
        let mds = parse_rules(text, &tran, Some(&card)).unwrap().positive_mds;
        let dm = Relation::new(
            card,
            vec![
                Tuple::of_strs(&["Smith", "Mark", "111"], 1.0),
                Tuple::of_strs(&["Brady", "Rob", "222"], 1.0),
            ],
        );
        let seq = MasterIndex::build_parallel(&mds, &dm, true, 1);
        let par = MasterIndex::build_parallel(&mds, &dm, true, 4);
        for (i, md) in mds.iter().enumerate() {
            assert_eq!(seq.describe_plan(i, md), par.describe_plan(i, md));
            for name in ["Smith", "Smoth", "Brady"] {
                let t = Tuple::of_strs(&[name, "Mark", "9"], 0.5);
                let mut sa = ProbeScratch::new();
                let mut sb = ProbeScratch::new();
                let (mut a, mut b) = (Vec::new(), Vec::new());
                seq.matches_into(i, md, &t, &dm, None, &mut sa, &mut a);
                par.matches_into(i, md, &t, &dm, None, &mut sb, &mut b);
                assert_eq!(a, b, "md {i} probe {name:?}");
            }
        }
    }
}
