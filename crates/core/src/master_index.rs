//! Blocked access to master data for MD premise evaluation (§5.2) — a
//! cost-based, predicate-complete access-path planner.
//!
//! §5.2 is explicit that matching dominates cleaning cost and that
//! "traditional database indices… designed for exact matching cannot be
//! carried over" to similarity predicates. For every MD the planner
//! therefore chooses from a family of access paths covering *every*
//! predicate the paper names, so the O(|D|·|Dm|) full-scan fallback
//! survives only for MDs with nothing to index (no premise conjuncts):
//!
//! * a **composite hash key** over *all* strict-equality conjuncts — one
//!   probe replaces the old probe-one-equality-then-verify-the-rest;
//! * an **exact hash index** for a lone `=` conjunct, keyed by interned
//!   [`Symbol`]s when interning is enabled;
//! * the **top-`l` LCS suffix-tree blocker** for edit-distance conjuncts;
//! * a **count-filtered q-gram inverted index**
//!   ([`uniclean_similarity::QGramIndex`]) for `~qgram`, and its 1-gram
//!   variant as a conservative common-character/length-ratio prefilter for
//!   `~jaro`/`~jw`;
//! * **candidate-list intersection** of the two most selective indexable
//!   conjuncts when the primary path alone is expected to leave many
//!   candidates — selectivity is estimated from per-column distinct-count
//!   statistics gathered at build time.
//!
//! Candidates returned by any path still need full premise verification;
//! every path is *match-preserving*: plans built from complete filters
//! (exact, composite, q-gram, Jaro) never lose a true match, and plans for
//! edit-distance conjuncts keep the paper's top-`l` LCS retrieval as their
//! base so verified matches are exactly what the previous engine produced
//! — candidates may shrink, matches may not change. Candidate order is
//! ascending master-row order on every path, so downstream witness
//! selection is deterministic and plan-independent.
//!
//! Probing is allocation-free at steady state: callers hold a
//! [`ProbeScratch`] (overlap accumulators, candidate buffers, and a
//! symbol-keyed cache of q-gram profiles — probe values repeat heavily
//! now that relations intern everything) and the `*_into` entry points
//! append into caller-owned buffers. Index construction fans out over
//! [`crate::parallel`]: each per-attribute artifact (hash map, suffix
//! tree, inverted lists) builds on its own worker.
//!
//! External master data is immutable for the life of a session, so one
//! build at [`crate::Cleaner`] construction serves every `clean` /
//! `clean_delta` call; only the self-snapshot mode (master = the data
//! itself) re-plans, once per phase/round, because there the master moves
//! with the repairs.
//!
//! # Examples
//!
//! ```
//! use uniclean_core::{MasterIndex, ProbeScratch};
//! use uniclean_model::{Relation, Schema, Tuple};
//! use uniclean_rules::parse_rules;
//!
//! let tran = Schema::of_strings("tran", &["LN", "phn"]);
//! let card = Schema::of_strings("card", &["LN", "tel"]);
//! let mds = parse_rules(
//!     "md m: tran[LN] ~qgram(2,0.6) card[LN] -> tran[phn] <=> card[tel]",
//!     &tran,
//!     Some(&card),
//! )
//! .unwrap()
//! .positive_mds;
//! let dm = Relation::new(
//!     card,
//!     vec![
//!         Tuple::of_strs(&["Smith", "111"], 1.0),
//!         Tuple::of_strs(&["Brady", "222"], 1.0),
//!     ],
//! );
//! let idx = MasterIndex::build(&mds, &dm, 20);
//! assert!(idx.is_indexed(0), "q-grams no longer fall back to a scan");
//!
//! let mut scratch = ProbeScratch::new();
//! let mut witnesses = Vec::new();
//! let probe = Tuple::of_strs(&["Smith", "999"], 0.5);
//! idx.matches_into(0, &mds[0], &probe, &dm, None, &mut scratch, &mut witnesses);
//! assert_eq!(witnesses.len(), 1);
//! ```

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use uniclean_model::{
    AttrId, FxHashMap, FxHasher, Relation, Row, Symbol, TupleId, Value, ValueInterner,
};
use uniclean_rules::Md;
use uniclean_similarity::{LcsBlocker, QGramIndex, QGramProfile, QGramScratch};

use crate::parallel::map_each;

/// Estimated candidates per probe above which the planner adds a second
/// selective conjunct as an intersection filter: below this, verifying the
/// primary path's candidates outright is cheaper than a second index
/// probe.
const DEFAULT_INTERSECT_ABOVE: f64 = 64.0;

/// Cost-model factors: expected candidate inflation of each similarity
/// path relative to an exact probe on the same column (the LCS blocker
/// additionally expands up to `l` distinct values). The Jaro bound is the
/// loosest of the filters, the q-gram count filter the tightest.
const QGRAM_COST_FACTOR: f64 = 4.0;
const JARO_COST_FACTOR: f64 = 8.0;

/// Planner tuning knobs (see [`MasterIndex::build_with_policy`]). The
/// default matches production behavior; tests force intersection plans by
/// zeroing `intersect_above`.
#[derive(Clone, Copy, Debug)]
pub struct IndexPolicy {
    /// Expected primary-path candidate count above which a second
    /// selective conjunct is intersected in.
    pub intersect_above: f64,
}

impl Default for IndexPolicy {
    fn default() -> Self {
        IndexPolicy {
            intersect_above: DEFAULT_INTERSECT_ABOVE,
        }
    }
}

/// One single-conjunct access path.
enum Path {
    /// Raw-value exact map (interning disabled).
    Exact {
        premise: usize,
        map: Arc<HashMap<Value, Vec<u32>>>,
    },
    /// Interned exact map, keyed by the **master store's own symbols** —
    /// building it reads the symbol column straight out of the columnar
    /// store, hashing no value content at all. A probe resolves the data
    /// value through the shared interner snapshot once; a probe value the
    /// interner has never seen cannot appear in the master column, so
    /// `get == None` is exactly a miss.
    ExactInterned {
        premise: usize,
        map: Arc<FxHashMap<Symbol, Vec<u32>>>,
    },
    /// Top-`l` LCS retrieval under the edit bound `k` (§5.2).
    Blocked {
        premise: usize,
        blocker: Arc<LcsBlocker>,
        k: usize,
    },
    /// Count-filtered q-gram inverted lists for `~qgram(q, min)`.
    QGramCount {
        premise: usize,
        q: usize,
        min: f64,
        index: Arc<QGramIndex>,
    },
    /// 1-gram common-character prefilter for `~jaro`/`~jw`, probed with
    /// the predicate's conservative Jaro floor.
    JaroFilter {
        premise: usize,
        min_jaro: f64,
        index: Arc<QGramIndex>,
    },
}

/// The per-MD plan.
enum Plan {
    Single(Path),
    /// One hash probe over *all* equality conjuncts at once. The map key
    /// is a 64-bit hash of the premise-ordered master symbols (or raw
    /// values with interning off); hash collisions only ever add
    /// candidates, which verification removes.
    Composite {
        premises: Arc<[usize]>,
        map: Arc<FxHashMap<u64, Vec<u32>>>,
        hash_syms: bool,
    },
    /// Sorted-list intersection of the two most selective conjunct paths.
    Intersect {
        primary: Path,
        secondary: Path,
    },
    /// Full enumeration — only for MDs with nothing to index.
    Scan {
        reason: &'static str,
    },
}

/// Reusable probe-side state: candidate buffers, the q-gram overlap
/// accumulator, and a symbol-keyed cache of q-gram profiles.
///
/// One scratch serves any number of probes against **one relation state**
/// — the profile cache keys on the probed row's interned symbols, which
/// identify values only within a single relation (append-only interners
/// keep them stable across incremental extension). Callers probing a
/// different relation, or re-running from a rewound state, must use a
/// fresh scratch or [`ProbeScratch::reset`].
#[derive(Default)]
pub struct ProbeScratch {
    qgram: QGramScratch,
    rows_a: Vec<u32>,
    rows_b: Vec<u32>,
    /// Staging for the blocker's `usize` rows.
    rows_wide: Vec<usize>,
    /// `(probe symbol, q)` → profile; hit rates are high because probe
    /// values repeat heavily across tuples.
    profiles: FxHashMap<(u32, u32), QGramProfile>,
}

impl ProbeScratch {
    /// A fresh scratch (buffers grow on first use).
    pub fn new() -> Self {
        ProbeScratch::default()
    }

    /// Drop cached probe profiles (keep buffer capacity). Call when the
    /// relation whose rows are being probed changes identity.
    pub fn reset(&mut self) {
        self.profiles.clear();
    }
}

// ---------------------------------------------------------------------------
// Planning (pure, no index construction).
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum PathSpec {
    Exact { premise: usize },
    Blocked { premise: usize, k: usize },
    QGramCount { premise: usize, q: usize, min: f64 },
    JaroFilter { premise: usize, min_jaro: f64 },
}

#[derive(Clone, Debug)]
enum PlanSpec {
    Single(PathSpec),
    Composite {
        premises: Vec<usize>,
    },
    Intersect {
        primary: PathSpec,
        secondary: PathSpec,
    },
    Scan {
        reason: &'static str,
    },
}

/// A costed conjunct: estimated candidates per probe, premise index, the
/// path that would serve it, and whether that path is *complete* (never
/// loses a true match) at its threshold.
struct Costed {
    cost: f64,
    premise: usize,
    spec: PathSpec,
    complete: bool,
    /// A degenerate threshold (qgram min ≤ 0, Jaro floor ≤ 1/3) keeps
    /// every row — complete, but useless as an intersection filter.
    degenerate: bool,
}

fn cost_conjunct(
    md: &Md,
    premise: usize,
    rows: usize,
    l: usize,
    stats: &HashMap<AttrId, usize>,
) -> Costed {
    let p = &md.premises()[premise];
    let distinct = stats.get(&p.master_attr).copied().unwrap_or(1).max(1);
    let per_value = rows as f64 / distinct as f64;
    if p.pred.is_equality() {
        return Costed {
            cost: per_value,
            premise,
            spec: PathSpec::Exact { premise },
            complete: true,
            degenerate: false,
        };
    }
    if let Some(k) = p.pred.edit_threshold() {
        // Top-l expands at most min(l, distinct) values — and is the
        // paper's sanctioned approximation, not a complete filter.
        return Costed {
            cost: per_value * l.min(distinct) as f64,
            premise,
            spec: PathSpec::Blocked { premise, k },
            complete: false,
            degenerate: false,
        };
    }
    if let Some((q, min)) = p.pred.qgram_params() {
        let degenerate = min <= 0.0;
        let cost = if degenerate {
            rows as f64 // keeps every row
        } else {
            per_value * QGRAM_COST_FACTOR
        };
        return Costed {
            cost,
            premise,
            spec: PathSpec::QGramCount { premise, q, min },
            complete: true,
            degenerate,
        };
    }
    let min_jaro = p
        .pred
        .jaro_floor()
        .expect("every similarity predicate family is costed");
    let degenerate = 3.0 * min_jaro - 1.0 <= 0.0;
    let cost = if degenerate {
        rows as f64
    } else {
        per_value * JARO_COST_FACTOR
    };
    Costed {
        cost,
        premise,
        spec: PathSpec::JaroFilter { premise, min_jaro },
        complete: true,
        degenerate,
    }
}

/// Choose the access plan for one MD. Match preservation shapes the
/// choice: when an equality exists the base path stays complete; when only
/// an edit-distance bound exists the base keeps the paper's top-`l` LCS
/// retrieval (so its approximation, if any, is unchanged); complete
/// similarity filters may then *intersect* in, which can only shrink
/// candidates, never verified matches.
fn plan_md(
    md: &Md,
    rows: usize,
    l: usize,
    stats: &HashMap<AttrId, usize>,
    policy: IndexPolicy,
) -> PlanSpec {
    let premises = md.premises();
    if premises.is_empty() {
        return PlanSpec::Scan {
            reason: "MD has no premise conjuncts to index",
        };
    }
    let eqs: Vec<usize> = md.equality_premise_indices().collect();
    if eqs.len() >= 2 {
        // All equalities collapse into one composite probe; its expected
        // selectivity is at worst that of the best single equality.
        return PlanSpec::Composite { premises: eqs };
    }
    let costed: Vec<Costed> = (0..premises.len())
        .map(|i| cost_conjunct(md, i, rows, l, stats))
        .collect();
    // Base path: the lone equality, else the tightest edit bound (the
    // previous engine's choice, preserved for match identity), else the
    // cheapest complete similarity filter.
    let base = if let Some(&eq) = eqs.first() {
        &costed[eq]
    } else if let Some(b) = costed
        .iter()
        .filter(|c| matches!(c.spec, PathSpec::Blocked { .. }))
        .min_by(|a, b| {
            let (PathSpec::Blocked { k: ka, .. }, PathSpec::Blocked { k: kb, .. }) =
                (&a.spec, &b.spec)
            else {
                unreachable!("filtered to Blocked")
            };
            ka.cmp(kb).then(a.premise.cmp(&b.premise))
        })
    {
        b
    } else {
        costed
            .iter()
            .min_by(|a, b| {
                a.cost
                    .partial_cmp(&b.cost)
                    .expect("finite costs")
                    .then(a.premise.cmp(&b.premise))
            })
            .expect("premises is non-empty")
    };
    // Secondary filter: the most selective *complete* conjunct other than
    // the base, if the base is expected to leave enough candidates for a
    // second probe to pay for itself. (Approximate paths never filter — an
    // intersection of two approximations could lose matches the base
    // alone would have kept.)
    let secondary = costed
        .iter()
        .filter(|c| c.premise != base.premise && c.complete && !c.degenerate)
        .min_by(|a, b| {
            a.cost
                .partial_cmp(&b.cost)
                .expect("finite costs")
                .then(a.premise.cmp(&b.premise))
        });
    match secondary {
        Some(s) if base.cost > policy.intersect_above => PlanSpec::Intersect {
            primary: base.spec.clone(),
            secondary: s.spec.clone(),
        },
        _ => PlanSpec::Single(base.spec.clone()),
    }
}

// ---------------------------------------------------------------------------
// Artifact construction (the parallel stage).
// ---------------------------------------------------------------------------

/// A deduplicated unit of index construction; every distinct key builds
/// once, on its own worker when parallelism allows.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum ArtifactKey {
    Exact(AttrId),
    Blocker(AttrId),
    QGram(AttrId, usize),
    /// Master attributes of all equality conjuncts, premise order.
    Composite(Vec<AttrId>),
}

enum Artifact {
    ExactRaw(Arc<HashMap<Value, Vec<u32>>>),
    ExactSym(Arc<FxHashMap<Symbol, Vec<u32>>>),
    Blocker(Arc<LcsBlocker>),
    QGram(Arc<QGramIndex>),
    Composite(Arc<FxHashMap<u64, Vec<u32>>>),
}

fn build_artifact(key: &ArtifactKey, master: &Relation, l: usize, interning: bool) -> Artifact {
    let interner = master.interner();
    match key {
        ArtifactKey::Exact(attr) => {
            if interning {
                // The master column is already interned by its store: key
                // the rows by those symbols, no value hashing at all.
                let mut m: FxHashMap<Symbol, Vec<u32>> = FxHashMap::default();
                for (row, &sym) in master.col_syms(*attr).iter().enumerate() {
                    m.entry(sym).or_default().push(row as u32);
                }
                Artifact::ExactSym(Arc::new(m))
            } else {
                let mut m: HashMap<Value, Vec<u32>> = HashMap::new();
                for (row, &sym) in master.col_syms(*attr).iter().enumerate() {
                    m.entry(interner.resolve(sym).clone())
                        .or_default()
                        .push(row as u32);
                }
                Artifact::ExactRaw(Arc::new(m))
            }
        }
        ArtifactKey::Blocker(attr) => {
            // Stream rendered values straight off the symbol column —
            // only distinct values are ever copied to owned storage.
            let col = master
                .col_syms(*attr)
                .iter()
                .map(|&sym| interner.resolve(sym).render());
            Artifact::Blocker(Arc::new(LcsBlocker::build_from(col, l)))
        }
        ArtifactKey::QGram(attr, q) => {
            let null = master.null_sym();
            // Null cells never satisfy a similarity premise — skip them.
            let col = master
                .col_syms(*attr)
                .iter()
                .enumerate()
                .filter(|&(_, &sym)| sym != null)
                .map(|(row, &sym)| (row as u32, interner.resolve(sym).render()));
            Artifact::QGram(Arc::new(QGramIndex::build(col, master.len(), *q)))
        }
        ArtifactKey::Composite(attrs) => {
            let null = master.null_sym();
            let cols: Vec<&[Symbol]> = attrs.iter().map(|&a| master.col_syms(a)).collect();
            let mut map: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
            'rows: for row in 0..master.len() {
                let mut h = FxHasher::default();
                for col in &cols {
                    let sym = col[row];
                    if sym == null {
                        // A null conjunct value can never satisfy the
                        // premise; the row is unreachable through this plan.
                        continue 'rows;
                    }
                    if interning {
                        h.write_u32(sym.0);
                    } else {
                        interner.resolve(sym).hash(&mut h);
                    }
                }
                map.entry(h.finish()).or_default().push(row as u32);
            }
            Artifact::Composite(Arc::new(map))
        }
    }
}

/// Per-MD access paths over one master relation.
pub struct MasterIndex {
    plans: Vec<Plan>,
    /// Shared interner over the indexed master columns (empty when
    /// interning is disabled or no symbol-keyed path exists).
    interner: Arc<ValueInterner>,
    master_len: usize,
    /// The blocking constant (diagnostics).
    l: usize,
}

impl MasterIndex {
    /// Build access paths for `mds` over `master` with blocking constant
    /// `l` and value interning enabled. Indexes on the same master column
    /// are shared between MDs.
    pub fn build(mds: &[Md], master: &Relation, l: usize) -> Self {
        Self::build_with(mds, master, l, true)
    }

    /// [`Self::build`] with an explicit interning switch (the benchmark
    /// harness measures both paths; results are identical).
    pub fn build_with(mds: &[Md], master: &Relation, l: usize, interning: bool) -> Self {
        Self::build_parallel(mds, master, l, interning, 1)
    }

    /// [`Self::build_with`] fanning index construction out over
    /// `threads` scoped workers (one per distinct per-attribute
    /// artifact). The built index is identical at every thread count.
    pub fn build_parallel(
        mds: &[Md],
        master: &Relation,
        l: usize,
        interning: bool,
        threads: usize,
    ) -> Self {
        Self::build_with_policy(mds, master, l, interning, threads, IndexPolicy::default())
    }

    /// Fully parameterized build — the planner entry point. `policy`
    /// tunes plan selection (tests force intersection plans with
    /// `intersect_above: 0.0`); all plans remain match-preserving under
    /// any policy.
    pub fn build_with_policy(
        mds: &[Md],
        master: &Relation,
        l: usize,
        interning: bool,
        threads: usize,
        policy: IndexPolicy,
    ) -> Self {
        // Distinct-count statistics for every premise master column — the
        // planner's selectivity estimates.
        let mut stat_attrs: Vec<AttrId> = mds
            .iter()
            .flat_map(|md| md.premises().iter().map(|p| p.master_attr))
            .collect();
        stat_attrs.sort_unstable();
        stat_attrs.dedup();
        let counts = map_each(stat_attrs.len(), threads, |i| {
            let mut syms: Vec<Symbol> = master.col_syms(stat_attrs[i]).to_vec();
            syms.sort_unstable();
            syms.dedup();
            syms.len()
        });
        let stats: HashMap<AttrId, usize> = stat_attrs.iter().copied().zip(counts).collect();

        // Plan every MD (pure), then build each distinct artifact once —
        // in parallel, one worker per artifact.
        let specs: Vec<PlanSpec> = mds
            .iter()
            .map(|md| plan_md(md, master.len(), l, &stats, policy))
            .collect();
        let mut keys: Vec<ArtifactKey> = Vec::new();
        let mut key_ids: HashMap<ArtifactKey, usize> = HashMap::new();
        let mut want = |key: ArtifactKey| {
            key_ids.entry(key.clone()).or_insert_with(|| {
                keys.push(key);
                keys.len() - 1
            });
        };
        let path_key = |md: &Md, spec: &PathSpec| match spec {
            PathSpec::Exact { premise } => ArtifactKey::Exact(md.premises()[*premise].master_attr),
            PathSpec::Blocked { premise, .. } => {
                ArtifactKey::Blocker(md.premises()[*premise].master_attr)
            }
            PathSpec::QGramCount { premise, q, .. } => {
                ArtifactKey::QGram(md.premises()[*premise].master_attr, *q)
            }
            PathSpec::JaroFilter { premise, .. } => {
                ArtifactKey::QGram(md.premises()[*premise].master_attr, 1)
            }
        };
        for (md, spec) in mds.iter().zip(&specs) {
            match spec {
                PlanSpec::Single(p) => want(path_key(md, p)),
                PlanSpec::Composite { premises } => want(ArtifactKey::Composite(
                    premises
                        .iter()
                        .map(|&i| md.premises()[i].master_attr)
                        .collect(),
                )),
                PlanSpec::Intersect { primary, secondary } => {
                    want(path_key(md, primary));
                    want(path_key(md, secondary));
                }
                PlanSpec::Scan { .. } => {}
            }
        }
        let artifacts = map_each(keys.len(), threads, |i| {
            build_artifact(&keys[i], master, l, interning)
        });

        // Assemble the runtime plans.
        let resolve_path = |md: &Md, spec: &PathSpec| -> Path {
            let id = key_ids[&path_key(md, spec)];
            match (spec, &artifacts[id]) {
                (PathSpec::Exact { premise }, Artifact::ExactSym(map)) => Path::ExactInterned {
                    premise: *premise,
                    map: map.clone(),
                },
                (PathSpec::Exact { premise }, Artifact::ExactRaw(map)) => Path::Exact {
                    premise: *premise,
                    map: map.clone(),
                },
                (PathSpec::Blocked { premise, k }, Artifact::Blocker(blocker)) => Path::Blocked {
                    premise: *premise,
                    blocker: blocker.clone(),
                    k: *k,
                },
                (PathSpec::QGramCount { premise, q, min }, Artifact::QGram(index)) => {
                    Path::QGramCount {
                        premise: *premise,
                        q: *q,
                        min: *min,
                        index: index.clone(),
                    }
                }
                (PathSpec::JaroFilter { premise, min_jaro }, Artifact::QGram(index)) => {
                    Path::JaroFilter {
                        premise: *premise,
                        min_jaro: *min_jaro,
                        index: index.clone(),
                    }
                }
                _ => unreachable!("artifact kind matches its key"),
            }
        };
        let mut used_interned = false;
        let plans: Vec<Plan> = mds
            .iter()
            .zip(&specs)
            .map(|(md, spec)| match spec {
                PlanSpec::Single(p) => {
                    let path = resolve_path(md, p);
                    used_interned |= matches!(path, Path::ExactInterned { .. });
                    Plan::Single(path)
                }
                PlanSpec::Composite { premises } => {
                    let key = ArtifactKey::Composite(
                        premises
                            .iter()
                            .map(|&i| md.premises()[i].master_attr)
                            .collect(),
                    );
                    let Artifact::Composite(map) = &artifacts[key_ids[&key]] else {
                        unreachable!("artifact kind matches its key")
                    };
                    used_interned |= interning;
                    Plan::Composite {
                        premises: premises.clone().into(),
                        map: map.clone(),
                        hash_syms: interning,
                    }
                }
                PlanSpec::Intersect { primary, secondary } => {
                    let a = resolve_path(md, primary);
                    let b = resolve_path(md, secondary);
                    used_interned |= matches!(a, Path::ExactInterned { .. })
                        || matches!(b, Path::ExactInterned { .. });
                    Plan::Intersect {
                        primary: a,
                        secondary: b,
                    }
                }
                PlanSpec::Scan { reason } => Plan::Scan { reason },
            })
            .collect();
        // Symbols in the interned maps are the master store's; probes
        // resolve through a snapshot of its (append-only) interner.
        let interner = if used_interned {
            master.interner().clone()
        } else {
            ValueInterner::new()
        };
        MasterIndex {
            plans,
            interner: Arc::new(interner),
            master_len: master.len(),
            l,
        }
    }

    /// Append the candidates of one single-conjunct path (unordered,
    /// unique rows; empty on a null probe value).
    #[allow(clippy::too_many_arguments)] // one probe's full scratch context
    fn collect_path<'t>(
        &self,
        path: &Path,
        md: &Md,
        t: impl Row<'t>,
        qgram: &mut QGramScratch,
        wide: &mut Vec<usize>,
        profiles: &mut FxHashMap<(u32, u32), QGramProfile>,
        out: &mut Vec<u32>,
    ) {
        match path {
            Path::Exact { premise, map } => {
                let v = t.value(md.premises()[*premise].attr);
                if v.is_null() {
                    return;
                }
                if let Some(rows) = map.get(v) {
                    out.extend_from_slice(rows);
                }
            }
            Path::ExactInterned { premise, map } => {
                let v = t.value(md.premises()[*premise].attr);
                if v.is_null() {
                    return;
                }
                if let Some(rows) = self.interner.get(v).and_then(|sym| map.get(&sym)) {
                    out.extend_from_slice(rows);
                }
            }
            Path::Blocked {
                premise,
                blocker,
                k,
            } => {
                let v = t.value(md.premises()[*premise].attr);
                if v.is_null() {
                    return;
                }
                // The blocker's usize rows narrow to the engine's u32
                // tuple ids through a reused staging buffer.
                wide.clear();
                blocker.candidates_within_edit_into(&v.render(), *k, wide);
                out.extend(wide.iter().map(|&r| r as u32));
            }
            Path::QGramCount {
                premise,
                q,
                min,
                index,
            } => {
                let attr = md.premises()[*premise].attr;
                let v = t.value(attr);
                if v.is_null() {
                    return;
                }
                // Symbol-keyed probe cache: equal symbols ⇒ equal values
                // within the probed relation, so the profile is reusable.
                let mut owned = None;
                let profile: &QGramProfile = match t.sym(attr) {
                    Some(sym) => profiles
                        .entry((sym.0, *q as u32))
                        .or_insert_with(|| QGramProfile::new(&v.render(), *q)),
                    None => owned.insert(QGramProfile::new(&v.render(), *q)),
                };
                index.candidates_jaccard_into(profile, *min, qgram, out);
            }
            Path::JaroFilter {
                premise,
                min_jaro,
                index,
            } => {
                let attr = md.premises()[*premise].attr;
                let v = t.value(attr);
                if v.is_null() {
                    return;
                }
                let mut owned = None;
                let profile: &QGramProfile = match t.sym(attr) {
                    Some(sym) => profiles
                        .entry((sym.0, 1))
                        .or_insert_with(|| QGramProfile::new(&v.render(), 1)),
                    None => owned.insert(QGramProfile::new(&v.render(), 1)),
                };
                index.candidates_jaro_into(profile, *min_jaro, qgram, out);
            }
        }
    }

    /// Visit every candidate master row for `t` under MD `md_idx`, in
    /// ascending row order (each still to be verified with
    /// [`Md::premise_matches`]). Allocation-free at steady state: buffers
    /// and the probe-profile cache live in the caller's [`ProbeScratch`].
    /// `t` is any [`Row`] — a stored [`uniclean_model::TupleRef`] probes
    /// without materializing anything and feeds the symbol-keyed cache.
    pub fn for_each_candidate<'t>(
        &self,
        md_idx: usize,
        md: &Md,
        t: impl Row<'t>,
        scratch: &mut ProbeScratch,
        mut f: impl FnMut(TupleId),
    ) {
        let ProbeScratch {
            qgram,
            rows_a,
            rows_b,
            rows_wide,
            profiles,
        } = scratch;
        match &self.plans[md_idx] {
            Plan::Scan { .. } => (0..self.master_len).map(TupleId::from).for_each(f),
            Plan::Single(path @ (Path::Exact { .. } | Path::ExactInterned { .. })) => {
                // Exact buckets are already ascending and unique: emit
                // straight off the map.
                rows_a.clear();
                self.collect_path(path, md, t, qgram, rows_wide, profiles, rows_a);
                rows_a.iter().for_each(|&r| f(TupleId(r)));
            }
            Plan::Single(path) => {
                rows_a.clear();
                self.collect_path(path, md, t, qgram, rows_wide, profiles, rows_a);
                rows_a.sort_unstable();
                rows_a.iter().for_each(|&r| f(TupleId(r)));
            }
            Plan::Composite {
                premises,
                map,
                hash_syms,
            } => {
                let mut h = FxHasher::default();
                for &pi in premises.iter() {
                    let v = t.value(md.premises()[pi].attr);
                    if v.is_null() {
                        return;
                    }
                    if *hash_syms {
                        match self.interner.get(v) {
                            Some(sym) => h.write_u32(sym.0),
                            // Never interned by the master ⇒ not in any
                            // master cell ⇒ the conjunct cannot hold.
                            None => return,
                        }
                    } else {
                        v.hash(&mut h);
                    }
                }
                if let Some(rows) = map.get(&h.finish()) {
                    rows.iter().for_each(|&r| f(TupleId(r)));
                }
            }
            Plan::Intersect { primary, secondary } => {
                rows_a.clear();
                self.collect_path(primary, md, t, qgram, rows_wide, profiles, rows_a);
                if rows_a.is_empty() {
                    return;
                }
                rows_b.clear();
                self.collect_path(secondary, md, t, qgram, rows_wide, profiles, rows_b);
                rows_a.sort_unstable();
                rows_b.sort_unstable();
                let (mut i, mut j) = (0usize, 0usize);
                while i < rows_a.len() && j < rows_b.len() {
                    match rows_a[i].cmp(&rows_b[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            f(TupleId(rows_a[i]));
                            i += 1;
                            j += 1;
                        }
                    }
                }
            }
        }
    }

    /// Verified premise matches appended into a caller-owned buffer
    /// (cleared first), ascending row order, so a tuple loop reuses one
    /// allocation (and one probe cache) throughout.
    ///
    /// ```
    /// # use uniclean_core::{MasterIndex, ProbeScratch};
    /// # use uniclean_model::{Relation, Schema, Tuple};
    /// # use uniclean_rules::parse_rules;
    /// # let tran = Schema::of_strings("tran", &["LN", "phn"]);
    /// # let card = Schema::of_strings("card", &["LN", "tel"]);
    /// # let mds = parse_rules(
    /// #     "md m: tran[LN] = card[LN] -> tran[phn] <=> card[tel]",
    /// #     &tran, Some(&card)).unwrap().positive_mds;
    /// # let dm = Relation::new(card, vec![Tuple::of_strs(&["Smith", "1"], 1.0)]);
    /// let idx = MasterIndex::build(&mds, &dm, 20);
    /// let mut scratch = ProbeScratch::new();
    /// let mut buf = Vec::new();
    /// for (tid, t) in dm.iter() {
    ///     idx.matches_into(0, &mds[0], t, &dm, None, &mut scratch, &mut buf);
    ///     assert!(buf.contains(&tid), "reflexive predicates match their own value");
    /// }
    /// ```
    #[allow(clippy::too_many_arguments)] // the probe's full context
    pub fn matches_into<'t>(
        &self,
        md_idx: usize,
        md: &Md,
        t: impl Row<'t>,
        master: &Relation,
        exclude: Option<TupleId>,
        scratch: &mut ProbeScratch,
        out: &mut Vec<TupleId>,
    ) {
        out.clear();
        let mut sink = std::mem::take(out);
        self.for_each_candidate(md_idx, md, t, scratch, |sid| {
            if Some(sid) != exclude && md.premise_matches(t, master.tuple(sid)) {
                sink.push(sid);
            }
        });
        *out = sink;
    }

    /// Is this MD served by an indexed access path? Since the q-gram and
    /// Jaro filters landed this is `true` for every MD with at least one
    /// premise conjunct — see [`Self::scan_reason`] for the residual scan
    /// cases.
    pub fn is_indexed(&self, md_idx: usize) -> bool {
        !matches!(self.plans[md_idx], Plan::Scan { .. })
    }

    /// Why MD `md_idx` fell back to a full scan, or `None` when it is
    /// indexed.
    pub fn scan_reason(&self, md_idx: usize) -> Option<&'static str> {
        match &self.plans[md_idx] {
            Plan::Scan { reason } => Some(reason),
            _ => None,
        }
    }

    /// Human-readable description of the chosen plan (CLI `--explain-plans`
    /// and test diagnostics). `md` must be the same MD the index was built
    /// from at position `md_idx`.
    pub fn describe_plan(&self, md_idx: usize, md: &Md) -> String {
        let attr = |premise: usize| {
            md.master_schema()
                .attr_name(md.premises()[premise].master_attr)
                .to_string()
        };
        let path = |p: &Path| match p {
            Path::Exact { premise, .. } => format!("exact-eq({})", attr(*premise)),
            Path::ExactInterned { premise, .. } => format!("exact-eq[sym]({})", attr(*premise)),
            Path::Blocked { premise, k, .. } => {
                format!("lcs-top{}({}, k={k})", self.l, attr(*premise))
            }
            Path::QGramCount {
                premise, q, min, ..
            } => {
                format!("qgram-count({}, q={q}, min={min})", attr(*premise))
            }
            Path::JaroFilter {
                premise, min_jaro, ..
            } => format!("jaro-1gram({}, floor={min_jaro:.3})", attr(*premise)),
        };
        match &self.plans[md_idx] {
            Plan::Single(p) => path(p),
            Plan::Composite {
                premises,
                hash_syms,
                ..
            } => format!(
                "composite-eq{}({})",
                if *hash_syms { "[sym]" } else { "" },
                premises
                    .iter()
                    .map(|&i| attr(i))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            Plan::Intersect { primary, secondary } => {
                format!("intersect({} ∩ {})", path(primary), path(secondary))
            }
            Plan::Scan { reason } => format!("scan ({reason})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniclean_model::{Schema, Tuple};
    use uniclean_rules::parse_rules;

    fn setup(pred: &str) -> (Arc<Schema>, Arc<Schema>, Vec<Md>, Relation) {
        let tran = Schema::of_strings("tran", &["LN", "phn"]);
        let card = Schema::of_strings("card", &["LN", "tel"]);
        let text = format!("md m: tran[LN] {pred} card[LN] -> tran[phn] <=> card[tel]");
        let mds = parse_rules(&text, &tran, Some(&card)).unwrap().positive_mds;
        let dm = Relation::new(
            card.clone(),
            vec![
                Tuple::of_strs(&["Smith", "111"], 1.0),
                Tuple::of_strs(&["Brady", "222"], 1.0),
                Tuple::of_strs(&["Smith", "333"], 1.0),
            ],
        );
        (tran, card, mds, dm)
    }

    fn probe_matches(idx: &MasterIndex, md: &Md, t: &Tuple, dm: &Relation) -> Vec<TupleId> {
        let mut scratch = ProbeScratch::new();
        let mut out = Vec::new();
        idx.matches_into(0, md, t, dm, None, &mut scratch, &mut out);
        out
    }

    fn reference_matches(md: &Md, t: &Tuple, dm: &Relation) -> Vec<TupleId> {
        dm.iter()
            .filter(|(_, s)| md.premise_matches(t, s))
            .map(|(sid, _)| sid)
            .collect()
    }

    #[test]
    fn equality_premise_uses_exact_index() {
        let (tran, _, mds, dm) = setup("=");
        let idx = MasterIndex::build(&mds, &dm, 5);
        assert!(idx.is_indexed(0));
        assert!(idx.describe_plan(0, &mds[0]).starts_with("exact-eq"));
        let t = Tuple::of_strs(&["Smith", "999"], 0.5);
        assert_eq!(
            probe_matches(&idx, &mds[0], &t, &dm),
            vec![TupleId(0), TupleId(2)]
        );
        let _ = tran;
    }

    #[test]
    fn interned_and_raw_exact_paths_agree() {
        let (_, _, mds, dm) = setup("=");
        let interned = MasterIndex::build_with(&mds, &dm, 5, true);
        let raw = MasterIndex::build_with(&mds, &dm, 5, false);
        for name in ["Smith", "Brady", "Nobody", ""] {
            let t = Tuple::of_strs(&[name, "999"], 0.5);
            assert_eq!(
                probe_matches(&interned, &mds[0], &t, &dm),
                probe_matches(&raw, &mds[0], &t, &dm),
                "probe {name:?}"
            );
        }
    }

    #[test]
    fn edit_premise_uses_blocker_and_is_complete() {
        let (_, _, mds, dm) = setup("~lev(1)");
        let idx = MasterIndex::build(&mds, &dm, 5);
        assert!(idx.is_indexed(0));
        assert!(idx.describe_plan(0, &mds[0]).starts_with("lcs-top"));
        let t = Tuple::of_strs(&["Smjth", "999"], 0.5); // one typo
        assert_eq!(
            probe_matches(&idx, &mds[0], &t, &dm),
            vec![TupleId(0), TupleId(2)]
        );
    }

    #[test]
    fn jaro_and_qgram_premises_are_indexed_now() {
        // Previously these degraded to Access::Scan; the q-gram filters
        // serve them with bounded candidate generation and identical
        // matches.
        for pred in ["~jaro(0.9)", "~jw(0.9)", "~qgram(2,0.5)"] {
            let (_, _, mds, dm) = setup(pred);
            let idx = MasterIndex::build(&mds, &dm, 5);
            assert!(idx.is_indexed(0), "{pred} should be indexed");
            assert_eq!(idx.scan_reason(0), None);
            for name in ["Smith", "Smjth", "Brady", "Zzz", ""] {
                let t = Tuple::of_strs(&[name, "999"], 0.5);
                assert_eq!(
                    probe_matches(&idx, &mds[0], &t, &dm),
                    reference_matches(&mds[0], &t, &dm),
                    "{pred} probe {name:?}"
                );
            }
        }
    }

    #[test]
    fn multi_equality_premises_use_one_composite_probe() {
        let tran = Schema::of_strings("tran", &["LN", "city", "phn"]);
        let card = Schema::of_strings("card", &["LN", "city", "tel"]);
        let text =
            "md m: tran[LN] = card[LN] AND tran[city] = card[city] -> tran[phn] <=> card[tel]";
        let mds = parse_rules(text, &tran, Some(&card)).unwrap().positive_mds;
        let dm = Relation::new(
            card,
            vec![
                Tuple::of_strs(&["Smith", "Edi", "111"], 1.0),
                Tuple::of_strs(&["Smith", "Ldn", "222"], 1.0),
                Tuple::of_strs(&["Brady", "Edi", "333"], 1.0),
            ],
        );
        for interning in [true, false] {
            let idx = MasterIndex::build_with(&mds, &dm, 5, interning);
            assert!(idx.describe_plan(0, &mds[0]).starts_with("composite-eq"));
            let t = Tuple::of_strs(&["Smith", "Edi", "999"], 0.5);
            // One probe pins both conjuncts: only the (Smith, Edi) row is
            // even a candidate, where the old single-equality path would
            // have surfaced both Smith rows.
            let mut scratch = ProbeScratch::new();
            let mut cands = Vec::new();
            idx.for_each_candidate(0, &mds[0], &t, &mut scratch, |sid| cands.push(sid));
            assert_eq!(cands, vec![TupleId(0)]);
            assert_eq!(probe_matches(&idx, &mds[0], &t, &dm), vec![TupleId(0)]);
        }
    }

    #[test]
    fn forced_intersection_plan_preserves_matches() {
        let tran = Schema::of_strings("tran", &["LN", "FN", "phn"]);
        let card = Schema::of_strings("card", &["LN", "FN", "tel"]);
        let text = "md m: tran[LN] = card[LN] AND tran[FN] ~qgram(2,0.5) card[FN] \
                    -> tran[phn] <=> card[tel]";
        let mds = parse_rules(text, &tran, Some(&card)).unwrap().positive_mds;
        let dm = Relation::new(
            card,
            vec![
                Tuple::of_strs(&["Smith", "Mark", "111"], 1.0),
                Tuple::of_strs(&["Smith", "Robert", "222"], 1.0),
                Tuple::of_strs(&["Brady", "Mark", "333"], 1.0),
            ],
        );
        let plain = MasterIndex::build(&mds, &dm, 5);
        let forced = MasterIndex::build_with_policy(
            &mds,
            &dm,
            5,
            true,
            1,
            IndexPolicy {
                intersect_above: 0.0,
            },
        );
        assert!(forced.describe_plan(0, &mds[0]).starts_with("intersect("));
        for (ln, fn_) in [
            ("Smith", "Marc"),
            ("Smith", "Zed"),
            ("Brady", "Mark"),
            ("X", "Y"),
        ] {
            let t = Tuple::of_strs(&[ln, fn_, "9"], 0.5);
            assert_eq!(
                probe_matches(&forced, &mds[0], &t, &dm),
                probe_matches(&plain, &mds[0], &t, &dm),
                "probe ({ln}, {fn_})"
            );
            assert_eq!(
                probe_matches(&forced, &mds[0], &t, &dm),
                reference_matches(&mds[0], &t, &dm),
            );
        }
    }

    #[test]
    fn null_premise_value_yields_no_candidates() {
        let (tran, _, mds, dm) = setup("=");
        let idx = MasterIndex::build(&mds, &dm, 5);
        let mut t = Tuple::of_strs(&["Smith", "999"], 0.5);
        t.set(
            tran.attr_id_or_panic("LN"),
            Value::Null,
            0.0,
            Default::default(),
        );
        let mut scratch = ProbeScratch::new();
        let mut cands = Vec::new();
        idx.for_each_candidate(0, &mds[0], &t, &mut scratch, |sid| cands.push(sid));
        assert!(cands.is_empty());
    }

    #[test]
    fn degenerate_jaro_threshold_matches_reference_enumeration() {
        let (_, _, mds, dm) = setup("~jaro(0.5)");
        let idx = MasterIndex::build(&mds, &dm, 5);
        assert!(idx.is_indexed(0));
        let t = Tuple::of_strs(&["Brody", "999"], 0.5);
        assert_eq!(
            probe_matches(&idx, &mds[0], &t, &dm),
            reference_matches(&mds[0], &t, &dm),
        );
    }

    #[test]
    fn matches_into_reuses_the_buffer() {
        let (_, _, mds, dm) = setup("=");
        let idx = MasterIndex::build(&mds, &dm, 5);
        let mut scratch = ProbeScratch::new();
        let mut buf = Vec::new();
        let t = Tuple::of_strs(&["Smith", "999"], 0.5);
        idx.matches_into(0, &mds[0], &t, &dm, None, &mut scratch, &mut buf);
        assert_eq!(buf, vec![TupleId(0), TupleId(2)]);
        // A second probe clears before filling; exclusion is honored.
        idx.matches_into(
            0,
            &mds[0],
            &t,
            &dm,
            Some(TupleId(0)),
            &mut scratch,
            &mut buf,
        );
        assert_eq!(buf, vec![TupleId(2)]);
    }

    #[test]
    fn parallel_build_produces_identical_plans() {
        let tran = Schema::of_strings("tran", &["LN", "FN", "phn"]);
        let card = Schema::of_strings("card", &["LN", "FN", "tel"]);
        let text = "md a: tran[LN] = card[LN] AND tran[FN] = card[FN] -> tran[phn] <=> card[tel]\n\
                    md b: tran[FN] ~lev(1) card[FN] -> tran[phn] <=> card[tel]\n\
                    md c: tran[LN] ~qgram(2,0.6) card[LN] -> tran[phn] <=> card[tel]";
        let mds = parse_rules(text, &tran, Some(&card)).unwrap().positive_mds;
        let dm = Relation::new(
            card,
            vec![
                Tuple::of_strs(&["Smith", "Mark", "111"], 1.0),
                Tuple::of_strs(&["Brady", "Rob", "222"], 1.0),
            ],
        );
        let seq = MasterIndex::build_parallel(&mds, &dm, 5, true, 1);
        let par = MasterIndex::build_parallel(&mds, &dm, 5, true, 4);
        for (i, md) in mds.iter().enumerate() {
            assert_eq!(seq.describe_plan(i, md), par.describe_plan(i, md));
            for name in ["Smith", "Smoth", "Brady"] {
                let t = Tuple::of_strs(&[name, "Mark", "9"], 0.5);
                let mut sa = ProbeScratch::new();
                let mut sb = ProbeScratch::new();
                let (mut a, mut b) = (Vec::new(), Vec::new());
                seq.matches_into(i, md, &t, &dm, None, &mut sa, &mut a);
                par.matches_into(i, md, &t, &dm, None, &mut sb, &mut b);
                assert_eq!(a, b, "md {i} probe {name:?}");
            }
        }
    }
}
