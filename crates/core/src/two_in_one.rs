//! The 2-in-1 structure of §6.3: a hash table per variable CFD plus an AVL
//! tree ordered by entropy.
//!
//! For each variable CFD `ϕ = R(Y → B, tp)` the hash table `HTab` maps each
//! key `ȳ ∈ π_Y(σ_{Y ≍ tp[Y]} D)` to a node carrying the entropy
//! `H(ϕ|Y=ȳ)`, the member tuples of `Δ(ȳ)` and the per-value counts
//! `cnt_{YB}(ȳ, b)`; the AVL tree holds a node for every key with nonzero
//! entropy, ordered by entropy, so `eRepair` can pull the most certain
//! conflict sets first. Both structures are maintained incrementally under
//! cell updates: "after resolving some conflicts, the structures need to be
//! maintained accordingly … O(|Δ(ȳ)||ΣV| + |Δ(ȳ)| log |D|) time".
//!
//! Two hot-path optimizations on top of the paper's design:
//!
//! * **interned keys with a per-cell symbol cache** — every relevant cell's
//!   value is interned to a dense [`Symbol`] once ("at relation load"), and
//!   the symbols are cached per `(tuple, attribute)`. Group keys and
//!   per-value counts are then vectors of `u32`s assembled from the cache
//!   and hashed with the trivial [`FxHasher`] — steady-state table
//!   operations never hash string content and never clone values. A cell
//!   update re-interns exactly one value. (Toggleable via
//!   [`crate::CleanConfig::interning`]; results are identical either way.)
//! * **incremental entropy** — each group maintains `Σ c·ln c` under count
//!   deltas, so the common single-count update refreshes `H` in O(1)
//!   instead of rescanning all counts (the §6.3 `O(|Δ(ȳ)||ΣV|)` bound
//!   allows the rescan; we just don't need it). The rebuild oracle in the
//!   tests keeps the incremental values honest.
//!
//! [`TwoInOne::build_with`] additionally fans the per-tuple pattern checks
//! and key projections out over scoped workers (the chunk stage of
//! [`crate::parallel`]'s chunk–merge–apply design) and replays the
//! precomputed projections in tuple-id order, so group ids — and therefore
//! `eRepair`'s resolution order — are bit-identical to a single-threaded
//! build.

use std::collections::HashMap;

use uniclean_model::{AttrId, FxHashMap, Relation, Symbol, Tuple, TupleId, Value, ValueInterner};
use uniclean_rules::{Cfd, RuleSet};

use crate::avl::{AvlTree, EntropyKey};
use crate::parallel::map_chunks;

/// Stable identifier of a conflict set (arena index).
pub type GroupId = u64;

/// A group key `ȳ`: interned symbols on the fast path, owned values when
/// interning is disabled.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum GroupKey {
    /// Dense interned projection (trivial hash/eq, no value clones).
    Syms(Vec<Symbol>),
    /// Raw value projection (legacy path).
    Raw(Vec<Value>),
}

/// A counted RHS value `b` within a group.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum BKey {
    /// Interned.
    Sym(Symbol),
    /// Raw.
    Raw(Value),
}

/// The interning half of the structure: the interner itself plus the
/// per-cell symbol cache that makes steady-state key assembly hash-free.
#[derive(Clone)]
struct Interned {
    values: ValueInterner,
    /// `attr.index()` → column slot in each `syms` row (`usize::MAX` =
    /// attribute not read/written by any variable CFD, untracked).
    attr_slot: Vec<usize>,
    /// `syms[tuple][slot]`: symbol of the tuple's *current* value at the
    /// tracked attribute. Refreshed by `on_update` before rekeying.
    syms: Vec<Vec<Symbol>>,
}

const UNTRACKED: usize = usize::MAX;

/// `c · ln c` with the `0 ln 0 = 0` convention.
#[inline]
fn xlnx(c: usize) -> f64 {
    if c <= 1 {
        0.0 // 1·ln 1 = 0 exactly; avoids ln(0) for c = 0.
    } else {
        let c = c as f64;
        c * c.ln()
    }
}

/// One conflict set `Δ(ȳ)` for one variable CFD.
#[derive(Clone, Debug)]
pub struct Group {
    /// Position in the owner's variable-CFD list.
    pub vcfd: usize,
    /// The LHS key `ȳ`.
    key: GroupKey,
    /// Member tuples.
    pub tuples: Vec<TupleId>,
    /// Counts of distinct non-null B values.
    counts: FxHashMap<BKey, usize>,
    /// Members whose B value is null (kept out of the entropy).
    pub nulls: usize,
    /// `Σ c·ln c` over `counts`, maintained incrementally.
    sum_c_ln_c: f64,
    /// Cached `H(ϕ|Y=ȳ)`.
    pub entropy: f64,
}

impl Group {
    /// Number of distinct non-null B values in the conflict set.
    pub fn distinct_values(&self) -> usize {
        self.counts.len()
    }

    /// Apply a ±1 delta to one value count and refresh the entropy in
    /// O(1): `H = (ln n − Σc·ln c / n) / ln k`, the closed form of §6.1's
    /// `Σ (c/n)·log_k(n/c)`.
    fn bump(&mut self, b: BKey, delta: isize) {
        let c_old = self.counts.get(&b).copied().unwrap_or(0);
        let c_new = match delta {
            1 => c_old + 1,
            -1 => c_old.saturating_sub(1),
            _ => unreachable!("bump is ±1"),
        };
        if c_new == 0 {
            self.counts.remove(&b);
        } else {
            self.counts.insert(b, c_new);
        }
        self.sum_c_ln_c += xlnx(c_new) - xlnx(c_old);
        if self.counts.is_empty() {
            // Re-anchor the accumulator so float drift cannot outlive the
            // counts that caused it.
            self.sum_c_ln_c = 0.0;
        }
        self.refresh_entropy();
    }

    fn refresh_entropy(&mut self) {
        // `n = |Δ(ȳ)|` minus the null members — always in sync with the
        // membership updates, which precede every `bump`.
        let counted = self.tuples.len() - self.nulls;
        let k = self.counts.len();
        self.entropy = if k <= 1 || counted == 0 {
            0.0
        } else {
            let n = counted as f64;
            ((n.ln() - self.sum_c_ln_c / n) / (k as f64).ln()).max(0.0)
        };
    }
}

/// The 2-in-1 structure over every variable CFD of a rule set.
///
/// The structure is `Clone` so a session can keep a *persistent* copy
/// pinned to the post-`cRepair` state and hand each `eRepair` run a cheap
/// working clone — cloning copies hash buckets and tree nodes without
/// re-hashing a single value, unlike a rebuild.
#[derive(Clone)]
pub struct TwoInOne {
    /// Indices into `rules.cfds()` that are variable CFDs.
    vcfd_rule_idx: Vec<usize>,
    /// Cached rule shape per variable CFD.
    lhs: Vec<Vec<AttrId>>,
    rhs: Vec<AttrId>,
    /// HTab per variable CFD.
    tables: Vec<FxHashMap<GroupKey, GroupId>>,
    /// Group arena (never shrinks; emptied groups are recycled lazily).
    groups: Vec<Group>,
    /// AVL per variable CFD over (entropy, group id), nonzero entropy only.
    trees: Vec<AvlTree>,
    /// attr → variable CFDs reading it (LHS) / writing it (RHS), each list
    /// ascending (enables the allocation-free merge in `on_update`).
    attr_in_lhs: Vec<Vec<usize>>,
    attr_is_rhs: Vec<Vec<usize>>,
    /// `Some` = interned key mode; `None` = raw values.
    interned: Option<Interned>,
}

impl TwoInOne {
    /// Build the structure for all variable CFDs in `rules` over `d` with
    /// interning on, single-threaded. O(|D| log |D| |ΣV|), as in §6.3.
    pub fn build(rules: &RuleSet, d: &Relation) -> Self {
        Self::build_with(rules, d, true, 1)
    }

    /// [`Self::build`] with explicit interning and worker-thread knobs.
    /// The per-tuple pattern checks and key projections fan out over
    /// `threads` scoped workers; the merge replays them in tuple-id order,
    /// so the resulting structure (including group-id assignment) is
    /// bit-identical for every thread count.
    pub fn build_with(rules: &RuleSet, d: &Relation, interning: bool, threads: usize) -> Self {
        Self::build_seeded(rules, d, interning, threads, None)
    }

    /// [`Self::build_with`] starting from a pre-warmed [`ValueInterner`]
    /// (e.g. the session-level interner seeded with rule constants). Seeding
    /// only renumbers symbols — results are identical with any seed.
    pub fn build_seeded(
        rules: &RuleSet,
        d: &Relation,
        interning: bool,
        threads: usize,
        seed: Option<&ValueInterner>,
    ) -> Self {
        let n_attrs = rules.schema().arity();
        let mut vcfd_rule_idx = Vec::new();
        let mut lhs = Vec::new();
        let mut rhs = Vec::new();
        for (i, c) in rules.cfds().iter().enumerate() {
            if c.is_variable() {
                vcfd_rule_idx.push(i);
                lhs.push(c.lhs().to_vec());
                rhs.push(c.rhs()[0]);
            }
        }
        let nv = vcfd_rule_idx.len();
        let mut attr_in_lhs = vec![Vec::new(); n_attrs];
        let mut attr_is_rhs = vec![Vec::new(); n_attrs];
        for (v, attrs) in lhs.iter().enumerate() {
            for a in attrs {
                attr_in_lhs[a.index()].push(v);
            }
            attr_is_rhs[rhs[v].index()].push(v);
        }

        // Interner seeding ("at relation load"): every value of every
        // attribute a variable CFD reads or writes is interned exactly
        // once, and the symbol cached per cell. Each value is hashed here
        // and never again — all later key assembly reads the cache.
        let interned = interning.then(|| {
            let mut relevant: Vec<AttrId> = lhs
                .iter()
                .flat_map(|attrs| attrs.iter().copied())
                .chain(rhs.iter().copied())
                .collect();
            relevant.sort_unstable();
            relevant.dedup();
            let mut attr_slot = vec![UNTRACKED; n_attrs];
            for (slot, a) in relevant.iter().enumerate() {
                attr_slot[a.index()] = slot;
            }
            let mut values = seed.cloned().unwrap_or_default();
            let syms: Vec<Vec<Symbol>> = d
                .tuples()
                .iter()
                .map(|t| {
                    relevant
                        .iter()
                        .map(|&a| values.intern(t.value(a)))
                        .collect()
                })
                .collect();
            Interned {
                values,
                attr_slot,
                syms,
            }
        });

        let mut me = TwoInOne {
            vcfd_rule_idx,
            lhs,
            rhs,
            tables: (0..nv).map(|_| HashMap::default()).collect(),
            groups: Vec::new(),
            trees: (0..nv).map(|_| AvlTree::new()).collect(),
            attr_in_lhs,
            attr_is_rhs,
            interned,
        };

        // Chunk: project every (tuple, vcfd) pair to its group key and B
        // value on the workers. Merge/apply: replay in tuple-id order —
        // the exact loop a sequential build runs.
        let projections = map_chunks(d.len(), threads, |range| {
            let mut rows = Vec::with_capacity(range.len());
            for i in range {
                let t = TupleId::from(i);
                let row: Vec<Option<(GroupKey, Option<BKey>)>> = (0..nv)
                    .map(|v| me.project_for_insert(rules, v, t, d.tuple(t)))
                    .collect();
                rows.push(row);
            }
            rows
        });
        let mut tid = 0u32;
        for chunk in projections {
            for row in chunk {
                for (v, proj) in row.into_iter().enumerate() {
                    if let Some((key, b)) = proj {
                        me.insert_projected(v, TupleId(tid), key, b);
                    }
                }
                tid += 1;
            }
        }
        me
    }

    /// Append tuples `from..d.len()` to the structure with insert-time
    /// group and entropy deltas — no rebuild, no re-hashing of existing
    /// members. The result (group membership, group-id assignment, interner
    /// numbering) is bit-identical to a from-scratch [`Self::build_with`]
    /// over the whole of `d`, because a build is exactly this insertion
    /// replay in tuple-id order: symbols are assigned tuple-major and new
    /// group ids at first key occurrence, and existing groups only ever
    /// gain members. This is the `clean_delta` hot path.
    pub fn insert_tuples(&mut self, rules: &RuleSet, d: &Relation, from: usize) {
        // Mirror the build's interner seeding for the new rows: every
        // relevant attribute's value is interned once, tuple-major.
        if let Some(int) = &mut self.interned {
            let relevant: Vec<AttrId> = int
                .attr_slot
                .iter()
                .enumerate()
                .filter(|(_, &slot)| slot != UNTRACKED)
                .map(|(a, _)| AttrId::from(a))
                .collect();
            // `attr_slot` maps each relevant attribute to its dense slot;
            // rows must be pushed in slot order.
            let mut by_slot = relevant;
            by_slot.sort_by_key(|a| int.attr_slot[a.index()]);
            for t in &d.tuples()[from..] {
                int.syms.push(
                    by_slot
                        .iter()
                        .map(|&a| int.values.intern(t.value(a)))
                        .collect(),
                );
            }
        }
        let nv = self.vcfd_rule_idx.len();
        for i in from..d.len() {
            let t = TupleId::from(i);
            for v in 0..nv {
                self.insert_member(rules, d, v, t);
            }
        }
    }

    /// The variable CFD of slot `v` within `rules`.
    pub fn rule<'r>(&self, rules: &'r RuleSet, v: usize) -> &'r Cfd {
        &rules.cfds()[self.vcfd_rule_idx[v]]
    }

    /// Number of variable CFDs tracked.
    pub fn len(&self) -> usize {
        self.vcfd_rule_idx.len()
    }

    /// Is the structure empty (no variable CFDs)?
    pub fn is_empty(&self) -> bool {
        self.vcfd_rule_idx.is_empty()
    }

    /// A group by id.
    pub fn group(&self, g: GroupId) -> &Group {
        &self.groups[g as usize]
    }

    /// The group's LHS key `ȳ`, resolved to values.
    pub fn group_key(&self, g: GroupId) -> Vec<Value> {
        match &self.groups[g as usize].key {
            GroupKey::Syms(syms) => syms.iter().map(|&s| self.resolve(s).clone()).collect(),
            GroupKey::Raw(vals) => vals.clone(),
        }
    }

    /// The majority B value of a group and its count (ties: the
    /// lexicographically smallest value, keeping resolution deterministic).
    pub fn majority(&self, g: GroupId) -> Option<(Value, usize)> {
        let grp = &self.groups[g as usize];
        grp.counts
            .iter()
            .map(|(b, &c)| (self.resolve_b(b), c))
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(a.0)))
            .map(|(v, c)| (v.clone(), c))
    }

    #[inline]
    fn resolve(&self, s: Symbol) -> &Value {
        self.interned
            .as_ref()
            .expect("symbols only exist in interned mode")
            .values
            .resolve(s)
    }

    #[inline]
    fn resolve_b<'g>(&'g self, b: &'g BKey) -> &'g Value {
        match b {
            BKey::Sym(s) => self.resolve(*s),
            BKey::Raw(v) => v,
        }
    }

    /// Conflict sets of variable CFD `v` with `0 < H < bound`, in ascending
    /// entropy order (O(log |T|) per retrieval step via the AVL tree).
    pub fn groups_below(&self, v: usize, bound: f64) -> Vec<GroupId> {
        self.trees[v]
            .below(bound)
            .into_iter()
            .map(|k| k.id)
            .collect()
    }

    /// The minimum-entropy conflict set of variable CFD `v`, if any.
    pub fn min_entropy_group(&self, v: usize) -> Option<GroupId> {
        self.trees[v].min().map(|k| k.id)
    }

    /// Update hook: tuple `t`'s attribute `a` changed from `old` to its
    /// current value in `d`. Rekeys `t` in every variable CFD reading `a`
    /// and adjusts counts in every variable CFD writing `a`. The affected
    /// slots come from a sorted merge of the two precomputed per-attribute
    /// lists — no per-update allocation — and the symbol cache is
    /// refreshed once, up front, so the rekeying hashes no value content.
    pub fn on_update(&mut self, rules: &RuleSet, d: &Relation, t: TupleId, a: AttrId, old: &Value) {
        // Refresh the cell's cached symbol (one intern — the only value
        // hashing this update performs) and capture the old one.
        let old_sym = match &mut self.interned {
            Some(int) if int.attr_slot[a.index()] != UNTRACKED => {
                let slot = int.attr_slot[a.index()];
                let old_sym = int.values.get(old);
                int.syms[t.index()][slot] = int.values.intern(d.tuple(t).value(a));
                old_sym
            }
            _ => None,
        };
        let (mut i, mut j) = (0usize, 0usize);
        loop {
            let li = self.attr_in_lhs[a.index()].get(i).copied();
            let rj = self.attr_is_rhs[a.index()].get(j).copied();
            let v = match (li, rj) {
                (Some(x), Some(y)) => {
                    if x < y {
                        i += 1;
                        x
                    } else if y < x {
                        j += 1;
                        y
                    } else {
                        i += 1;
                        j += 1;
                        x
                    }
                }
                (Some(x), None) => {
                    i += 1;
                    x
                }
                (None, Some(y)) => {
                    j += 1;
                    y
                }
                (None, None) => break,
            };
            self.remove_member_with(rules, d, v, t, a, old, old_sym);
            self.insert_member(rules, d, v, t);
        }
    }

    /// Project `t` for insertion into variable CFD `v`: `None` when the
    /// LHS pattern does not match, otherwise the group key and the B value
    /// (`None` = null, kept out of the counts). Reads only the symbol
    /// cache — safe to call from build workers, hashes nothing.
    fn project_for_insert(
        &self,
        rules: &RuleSet,
        v: usize,
        t: TupleId,
        tup: &Tuple,
    ) -> Option<(GroupKey, Option<BKey>)> {
        let cfd = &rules.cfds()[self.vcfd_rule_idx[v]];
        if !cfd.lhs_matches(tup) {
            return None;
        }
        let key = match &self.interned {
            Some(int) => {
                let row = &int.syms[t.index()];
                GroupKey::Syms(
                    self.lhs[v]
                        .iter()
                        .map(|a| row[int.attr_slot[a.index()]])
                        .collect(),
                )
            }
            None => GroupKey::Raw(tup.project(&self.lhs[v])),
        };
        let bval = tup.value(self.rhs[v]);
        let b = if bval.is_null() {
            None
        } else {
            Some(match &self.interned {
                Some(int) => BKey::Sym(int.syms[t.index()][int.attr_slot[self.rhs[v].index()]]),
                None => BKey::Raw(bval.clone()),
            })
        };
        Some((key, b))
    }

    /// Insert `t` into variable CFD `v`'s structure if its (current) LHS
    /// matches the pattern. The symbol cache must already reflect `t`'s
    /// current values (`on_update` refreshes it first).
    fn insert_member(&mut self, rules: &RuleSet, d: &Relation, v: usize, t: TupleId) {
        if let Some((key, b)) = self.project_for_insert(rules, v, t, d.tuple(t)) {
            self.insert_projected(v, t, key, b);
        }
    }

    /// The table/arena/tree half of an insert, with the key already
    /// projected — shared by `insert_member` and the build replay.
    fn insert_projected(&mut self, v: usize, t: TupleId, key: GroupKey, b: Option<BKey>) {
        let gid = match self.tables[v].get(&key) {
            Some(&g) => g,
            None => {
                let g = self.groups.len() as GroupId;
                self.groups.push(Group {
                    vcfd: v,
                    key: key.clone(),
                    tuples: Vec::new(),
                    counts: FxHashMap::default(),
                    nulls: 0,
                    sum_c_ln_c: 0.0,
                    entropy: 0.0,
                });
                self.tables[v].insert(key, g);
                g
            }
        };
        self.detach_from_tree(v, gid);
        let grp = &mut self.groups[gid as usize];
        grp.tuples.push(t);
        match b {
            None => grp.nulls += 1,
            Some(b) => grp.bump(b, 1),
        }
        self.attach_to_tree(v, gid);
    }

    /// Remove `t` from the group it occupied *before* `a` changed away from
    /// `old` (whose cached symbol, if any, is `old_sym`; the cache itself
    /// already holds the new value's symbol).
    #[allow(clippy::too_many_arguments)]
    fn remove_member_with(
        &mut self,
        rules: &RuleSet,
        d: &Relation,
        v: usize,
        t: TupleId,
        a: AttrId,
        old: &Value,
        old_sym: Option<Symbol>,
    ) {
        let cfd = &rules.cfds()[self.vcfd_rule_idx[v]];
        let tup = d.tuple(t);
        // Old projection/pattern check: substitute `old` at `a`. Borrowing
        // (not cloning) — the pattern check only reads.
        let value_at = |attr: AttrId| -> &Value {
            if attr == a {
                old
            } else {
                tup.value(attr)
            }
        };
        let matched_old = cfd
            .lhs()
            .iter()
            .zip(cfd.lhs_pattern())
            .all(|(attr, p)| p.matches(value_at(*attr)));
        if !matched_old {
            return;
        }
        // Key assembly from the cache, substituting the old symbol at `a`.
        // A value the interner has never seen cannot be part of any
        // inserted key, so the group cannot exist.
        let key = match &self.interned {
            Some(int) => {
                let row = &int.syms[t.index()];
                let mut syms = Vec::with_capacity(self.lhs[v].len());
                for attr in &self.lhs[v] {
                    if *attr == a {
                        match old_sym {
                            Some(s) => syms.push(s),
                            None => return,
                        }
                    } else {
                        syms.push(row[int.attr_slot[attr.index()]]);
                    }
                }
                GroupKey::Syms(syms)
            }
            None => GroupKey::Raw(
                self.lhs[v]
                    .iter()
                    .map(|attr| value_at(*attr).clone())
                    .collect(),
            ),
        };
        let Some(&gid) = self.tables[v].get(&key) else {
            return;
        };
        self.detach_from_tree(v, gid);
        let b_attr = self.rhs[v];
        let old_bval = value_at(b_attr);
        let old_b = if old_bval.is_null() {
            None
        } else {
            match &self.interned {
                Some(int) => {
                    if b_attr == a {
                        old_sym.map(BKey::Sym)
                    } else {
                        Some(BKey::Sym(
                            int.syms[t.index()][int.attr_slot[b_attr.index()]],
                        ))
                    }
                }
                None => Some(BKey::Raw(old_bval.clone())),
            }
        };
        let grp = &mut self.groups[gid as usize];
        if let Some(pos) = grp.tuples.iter().position(|x| *x == t) {
            grp.tuples.swap_remove(pos);
            match old_b {
                None if old_bval.is_null() => grp.nulls = grp.nulls.saturating_sub(1),
                Some(b) if grp.counts.contains_key(&b) => grp.bump(b, -1),
                _ => {}
            }
        }
        if grp.tuples.is_empty() {
            self.tables[v].remove(&key);
        } else {
            self.attach_to_tree(v, gid);
        }
    }

    fn detach_from_tree(&mut self, v: usize, gid: GroupId) {
        let e = self.groups[gid as usize].entropy;
        if e > 0.0 {
            self.trees[v].remove(&EntropyKey {
                entropy: e,
                id: gid,
            });
        }
    }

    fn attach_to_tree(&mut self, v: usize, gid: GroupId) {
        let e = self.groups[gid as usize].entropy;
        if e > 0.0 {
            self.trees[v].insert(EntropyKey {
                entropy: e,
                id: gid,
            });
        }
    }

    /// Exhaustive consistency check against a fresh rebuild (test helper).
    /// Keys and counts are compared in resolved-value form (symbol numbering
    /// is interner-local), and each group's incremental entropy is checked
    /// against the from-scratch formula.
    #[cfg(test)]
    fn assert_consistent_with_rebuild(&self, rules: &RuleSet, d: &Relation) {
        use crate::entropy::entropy_of_counts;
        type GroupSummary = HashMap<Vec<Value>, (usize, Vec<(Value, usize)>)>;
        let summarize = |me: &TwoInOne, v: usize| -> GroupSummary {
            me.tables[v]
                .values()
                .map(|&g| {
                    let grp = &me.groups[g as usize];
                    let mut counts: Vec<(Value, usize)> = grp
                        .counts
                        .iter()
                        .map(|(b, &c)| (me.resolve_b(b).clone(), c))
                        .collect();
                    counts.sort();
                    (me.group_key(g), (grp.tuples.len(), counts))
                })
                .collect()
        };
        let fresh = TwoInOne::build(rules, d);
        for v in 0..self.len() {
            assert_eq!(
                summarize(self, v),
                summarize(&fresh, v),
                "vcfd {v} diverged from rebuild"
            );
            for &g in self.tables[v].values() {
                let grp = &self.groups[g as usize];
                let oracle = entropy_of_counts(grp.counts.values().copied());
                assert!(
                    (grp.entropy - oracle).abs() < 1e-9,
                    "vcfd {v} group {g}: incremental entropy {} vs oracle {oracle}",
                    grp.entropy
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use uniclean_model::{FixMark, Schema, Tuple};
    use uniclean_rules::parse_rules;

    /// Fig. 8's relation and the FD ABC → E of Example 6.2.
    fn fig8() -> (Arc<Schema>, RuleSet, Relation) {
        let s = Schema::of_strings("r", &["A", "B", "C", "E", "F", "H"]);
        let parsed = parse_rules("cfd phi: r([A, B, C] -> [E])", &s, None).unwrap();
        let rules = RuleSet::cfds_only(s.clone(), parsed.cfds);
        let rows = [
            ["a1", "b1", "c1", "e1", "f1", "h1"],
            ["a1", "b1", "c1", "e1", "f2", "h2"],
            ["a1", "b1", "c1", "e1", "f3", "h3"],
            ["a1", "b1", "c1", "e2", "f1", "h3"],
            ["a2", "b2", "c2", "e1", "f2", "h4"],
            ["a2", "b2", "c2", "e2", "f1", "h4"],
            ["a2", "b2", "c3", "e3", "f3", "h5"],
            ["a2", "b2", "c4", "e3", "f3", "h6"],
        ];
        let d = Relation::new(
            s.clone(),
            rows.iter().map(|r| Tuple::of_strs(r, 0.5)).collect(),
        );
        (s, rules, d)
    }

    #[test]
    fn example_6_2_entropies() {
        let (_, rules, d) = fig8();
        let t = TwoInOne::build(&rules, &d);
        assert_eq!(t.len(), 1);
        // Groups: (a1,b1,c1) H≈0.81, (a2,b2,c2) H=1, (a2,b2,c3) and
        // (a2,b2,c4) H=0.
        let nonzero = t.groups_below(0, f64::INFINITY);
        assert_eq!(nonzero.len(), 2);
        let min = t.min_entropy_group(0).unwrap();
        let g = t.group(min);
        assert!((g.entropy - 0.8112781244591328).abs() < 1e-9);
        assert_eq!(g.tuples.len(), 4);
        let (maj, cnt) = t.majority(min).unwrap();
        assert_eq!(maj, Value::str("e1"));
        assert_eq!(cnt, 3);
    }

    #[test]
    fn groups_below_threshold_excludes_uniform_conflicts() {
        let (_, rules, d) = fig8();
        let t = TwoInOne::build(&rules, &d);
        // δ2 = 0.9: only the 0.81 group qualifies; the H=1 group does not.
        let below = t.groups_below(0, 0.9);
        assert_eq!(below.len(), 1);
        assert!((t.group(below[0]).entropy - 0.8112781244591328).abs() < 1e-9);
    }

    #[test]
    fn resolving_a_conflict_empties_the_tree_entry() {
        let (s, rules, mut d) = fig8();
        let mut t = TwoInOne::build(&rules, &d);
        let e = s.attr_id_or_panic("E");
        // Resolve the (a1,b1,c1) conflict: t4's E := e1.
        let old = d.tuple(TupleId(3)).value(e).clone();
        d.tuple_mut(TupleId(3))
            .set(e, Value::str("e1"), 0.5, FixMark::Reliable);
        t.on_update(&rules, &d, TupleId(3), e, &old);
        let below = t.groups_below(0, f64::INFINITY);
        assert_eq!(below.len(), 1, "only the H=1 group remains");
        t.assert_consistent_with_rebuild(&rules, &d);
    }

    #[test]
    fn lhs_update_rekeys_the_tuple() {
        let (s, rules, mut d) = fig8();
        let mut t = TwoInOne::build(&rules, &d);
        let c = s.attr_id_or_panic("C");
        // Move t7 (a2,b2,c3) into the (a2,b2,c4) group: E values e3/e3 →
        // entropy stays 0 but membership moves.
        let old = d.tuple(TupleId(6)).value(c).clone();
        d.tuple_mut(TupleId(6))
            .set(c, Value::str("c4"), 0.5, FixMark::Reliable);
        t.on_update(&rules, &d, TupleId(6), c, &old);
        t.assert_consistent_with_rebuild(&rules, &d);
    }

    #[test]
    fn null_b_values_stay_out_of_entropy() {
        let s = Schema::of_strings("r", &["K", "B"]);
        let parsed = parse_rules("cfd fd: r([K] -> [B])", &s, None).unwrap();
        let rules = RuleSet::cfds_only(s.clone(), parsed.cfds);
        let b = s.attr_id_or_panic("B");
        let mut t1 = Tuple::of_strs(&["k", "x"], 0.5);
        t1.set(b, Value::Null, 0.0, FixMark::Untouched);
        let d = Relation::new(s, vec![t1, Tuple::of_strs(&["k", "y"], 0.5)]);
        let t = TwoInOne::build(&rules, &d);
        let gid = t.tables[0].values().next().copied().unwrap();
        let g = t.group(gid);
        assert_eq!(g.nulls, 1);
        assert_eq!(g.distinct_values(), 1);
        assert_eq!(g.entropy, 0.0);
    }

    #[test]
    fn pattern_constants_filter_membership() {
        let s = Schema::of_strings("r", &["K", "B"]);
        let parsed = parse_rules("cfd fd: r([K=k1] -> [B])", &s, None).unwrap();
        let rules = RuleSet::cfds_only(s.clone(), parsed.cfds);
        let d = Relation::new(
            s,
            vec![
                Tuple::of_strs(&["k1", "x"], 0.5),
                Tuple::of_strs(&["k2", "y"], 0.5),
            ],
        );
        let t = TwoInOne::build(&rules, &d);
        assert_eq!(t.tables[0].len(), 1);
        let gid = t.tables[0].values().next().copied().unwrap();
        assert_eq!(t.group(gid).tuples, vec![TupleId(0)]);
    }

    #[test]
    fn random_update_storm_stays_consistent() {
        // Pseudo-random single-cell updates must keep the incremental
        // structure identical to a rebuild — in interned and raw mode.
        for interning in [true, false] {
            let (s, rules, mut d) = fig8();
            let mut t = TwoInOne::build_with(&rules, &d, interning, 1);
            let attrs: Vec<AttrId> = ["A", "B", "C", "E"]
                .iter()
                .map(|a| s.attr_id_or_panic(a))
                .collect();
            let vals = ["a1", "b1", "c1", "e1", "e2", "zz"];
            let mut seed = 0x9e3779b97f4a7c15u64;
            for _ in 0..200 {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                let tid = TupleId((seed % 8) as u32);
                let a = attrs[(seed >> 8) as usize % attrs.len()];
                let nv = Value::str(vals[(seed >> 16) as usize % vals.len()]);
                let old = d.tuple(tid).value(a).clone();
                d.tuple_mut(tid).set(a, nv, 0.5, FixMark::Reliable);
                t.on_update(&rules, &d, tid, a, &old);
            }
            t.assert_consistent_with_rebuild(&rules, &d);
        }
    }

    #[test]
    fn insert_tuples_matches_a_fresh_build_bit_for_bit() {
        // Build over a prefix, insert the rest incrementally: group ids,
        // membership, counts and entropies must equal a from-scratch build
        // — in interned and raw mode.
        let (s, rules, d) = fig8();
        for interning in [true, false] {
            for split in [0usize, 3, 5, 8] {
                let prefix = Relation::new(s.clone(), d.tuples()[..split].to_vec());
                let mut inc = TwoInOne::build_with(&rules, &prefix, interning, 1);
                inc.insert_tuples(&rules, &d, split);
                let fresh = TwoInOne::build_with(&rules, &d, interning, 1);
                assert_eq!(inc.len(), fresh.len());
                for v in 0..inc.len() {
                    let dump = |t: &TwoInOne| -> Vec<(Vec<Value>, GroupId, Vec<TupleId>, f64)> {
                        let mut out: Vec<_> = t.tables[v]
                            .values()
                            .map(|&g| {
                                (
                                    t.group_key(g),
                                    g,
                                    t.group(g).tuples.clone(),
                                    t.group(g).entropy,
                                )
                            })
                            .collect();
                        out.sort_by(|a, b| a.0.cmp(&b.0));
                        out
                    };
                    assert_eq!(
                        dump(&inc),
                        dump(&fresh),
                        "interning={interning} split={split} vcfd={v}"
                    );
                }
                inc.assert_consistent_with_rebuild(&rules, &d);
            }
        }
    }

    #[test]
    fn cloned_structure_evolves_like_the_original() {
        let (s, rules, mut d) = fig8();
        let base = TwoInOne::build(&rules, &d);
        let mut a = base.clone();
        let mut b = TwoInOne::build(&rules, &d);
        let e = s.attr_id_or_panic("E");
        let old = d.tuple(TupleId(3)).value(e).clone();
        d.tuple_mut(TupleId(3))
            .set(e, Value::str("e1"), 0.5, FixMark::Reliable);
        a.on_update(&rules, &d, TupleId(3), e, &old);
        b.on_update(&rules, &d, TupleId(3), e, &old);
        assert_eq!(
            a.groups_below(0, f64::INFINITY),
            b.groups_below(0, f64::INFINITY)
        );
        a.assert_consistent_with_rebuild(&rules, &d);
    }

    #[test]
    fn parallel_and_raw_builds_match_the_interned_sequential_one() {
        let (_, rules, d) = fig8();
        let base = TwoInOne::build_with(&rules, &d, true, 1);
        for (interning, threads) in [(true, 4), (false, 1), (false, 4)] {
            let other = TwoInOne::build_with(&rules, &d, interning, threads);
            assert_eq!(base.len(), other.len());
            for v in 0..base.len() {
                let mut a: Vec<(Vec<Value>, Vec<TupleId>)> = base.tables[v]
                    .values()
                    .map(|&g| (base.group_key(g), base.group(g).tuples.clone()))
                    .collect();
                let mut b: Vec<(Vec<Value>, Vec<TupleId>)> = other.tables[v]
                    .values()
                    .map(|&g| (other.group_key(g), other.group(g).tuples.clone()))
                    .collect();
                a.sort();
                b.sort();
                assert_eq!(a, b, "interning={interning} threads={threads}");
                // Group-id assignment must also be identical (it orders
                // equal-entropy AVL nodes).
                let mut ids_a: Vec<GroupId> = base.tables[v].values().copied().collect();
                let mut ids_b: Vec<GroupId> = other.tables[v].values().copied().collect();
                ids_a.sort_unstable();
                ids_b.sort_unstable();
                assert_eq!(ids_a, ids_b);
            }
        }
    }
}
