//! The 2-in-1 structure of §6.3: a hash table per variable CFD plus an AVL
//! tree ordered by entropy.
//!
//! For each variable CFD `ϕ = R(Y → B, tp)` the hash table `HTab` maps each
//! key `ȳ ∈ π_Y(σ_{Y ≍ tp[Y]} D)` to a node carrying the entropy
//! `H(ϕ|Y=ȳ)`, the member tuples of `Δ(ȳ)` and the per-value counts
//! `cnt_{YB}(ȳ, b)`; the AVL tree holds a node for every key with nonzero
//! entropy, ordered by entropy, so `eRepair` can pull the most certain
//! conflict sets first. Both structures are maintained incrementally under
//! cell updates: "after resolving some conflicts, the structures need to be
//! maintained accordingly … O(|Δ(ȳ)||ΣV| + |Δ(ȳ)| log |D|) time".

use std::collections::HashMap;

use uniclean_model::{AttrId, Relation, TupleId, Value};
use uniclean_rules::{Cfd, RuleSet};

use crate::avl::{AvlTree, EntropyKey};
use crate::entropy::entropy_of_counts;

/// Stable identifier of a conflict set (arena index).
pub type GroupId = u64;

/// One conflict set `Δ(ȳ)` for one variable CFD.
#[derive(Debug)]
pub struct Group {
    /// Position in the owner's variable-CFD list.
    pub vcfd: usize,
    /// The LHS key `ȳ`.
    pub key: Vec<Value>,
    /// Member tuples.
    pub tuples: Vec<TupleId>,
    /// Counts of distinct non-null B values.
    pub counts: HashMap<Value, usize>,
    /// Members whose B value is null (kept out of the entropy).
    pub nulls: usize,
    /// Cached `H(ϕ|Y=ȳ)`.
    pub entropy: f64,
}

impl Group {
    /// The majority value and its count (ties: lexicographically smallest
    /// value, keeping resolution deterministic).
    pub fn majority(&self) -> Option<(&Value, usize)> {
        self.counts
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(v, c)| (v, *c))
    }

    fn recompute_entropy(&mut self) {
        self.entropy = entropy_of_counts(self.counts.values().copied());
    }
}

/// The 2-in-1 structure over every variable CFD of a rule set.
pub struct TwoInOne {
    /// Indices into `rules.cfds()` that are variable CFDs.
    vcfd_rule_idx: Vec<usize>,
    /// Cached rule shape per variable CFD.
    lhs: Vec<Vec<AttrId>>,
    rhs: Vec<AttrId>,
    /// HTab per variable CFD.
    tables: Vec<HashMap<Vec<Value>, GroupId>>,
    /// Group arena (never shrinks; emptied groups are recycled lazily).
    groups: Vec<Group>,
    /// AVL per variable CFD over (entropy, group id), nonzero entropy only.
    trees: Vec<AvlTree>,
    /// attr → variable CFDs reading it (LHS) / writing it (RHS).
    attr_in_lhs: Vec<Vec<usize>>,
    attr_is_rhs: Vec<Vec<usize>>,
}

impl TwoInOne {
    /// Build the structure for all variable CFDs in `rules` over `d`.
    /// O(|D| log |D| |ΣV|), as in §6.3.
    pub fn build(rules: &RuleSet, d: &Relation) -> Self {
        let n_attrs = rules.schema().arity();
        let mut vcfd_rule_idx = Vec::new();
        let mut lhs = Vec::new();
        let mut rhs = Vec::new();
        for (i, c) in rules.cfds().iter().enumerate() {
            if c.is_variable() {
                vcfd_rule_idx.push(i);
                lhs.push(c.lhs().to_vec());
                rhs.push(c.rhs()[0]);
            }
        }
        let nv = vcfd_rule_idx.len();
        let mut attr_in_lhs = vec![Vec::new(); n_attrs];
        let mut attr_is_rhs = vec![Vec::new(); n_attrs];
        for (v, attrs) in lhs.iter().enumerate() {
            for a in attrs {
                attr_in_lhs[a.index()].push(v);
            }
            attr_is_rhs[rhs[v].index()].push(v);
        }
        let mut me = TwoInOne {
            vcfd_rule_idx,
            lhs,
            rhs,
            tables: vec![HashMap::new(); nv],
            groups: Vec::new(),
            trees: (0..nv).map(|_| AvlTree::new()).collect(),
            attr_in_lhs,
            attr_is_rhs,
        };
        for (tid, _) in d.iter() {
            for v in 0..nv {
                me.insert_member(rules, d, v, tid);
            }
        }
        me
    }

    /// The variable CFD of slot `v` within `rules`.
    pub fn rule<'r>(&self, rules: &'r RuleSet, v: usize) -> &'r Cfd {
        &rules.cfds()[self.vcfd_rule_idx[v]]
    }

    /// Number of variable CFDs tracked.
    pub fn len(&self) -> usize {
        self.vcfd_rule_idx.len()
    }

    /// Is the structure empty (no variable CFDs)?
    pub fn is_empty(&self) -> bool {
        self.vcfd_rule_idx.is_empty()
    }

    /// A group by id.
    pub fn group(&self, g: GroupId) -> &Group {
        &self.groups[g as usize]
    }

    /// Conflict sets of variable CFD `v` with `0 < H < bound`, in ascending
    /// entropy order (O(log |T|) per retrieval step via the AVL tree).
    pub fn groups_below(&self, v: usize, bound: f64) -> Vec<GroupId> {
        self.trees[v]
            .below(bound)
            .into_iter()
            .map(|k| k.id)
            .collect()
    }

    /// The minimum-entropy conflict set of variable CFD `v`, if any.
    pub fn min_entropy_group(&self, v: usize) -> Option<GroupId> {
        self.trees[v].min().map(|k| k.id)
    }

    /// Update hook: tuple `t`'s attribute `a` changed from `old` to its
    /// current value in `d`. Rekeys `t` in every variable CFD reading `a`
    /// and adjusts counts in every variable CFD writing `a`.
    pub fn on_update(&mut self, rules: &RuleSet, d: &Relation, t: TupleId, a: AttrId, old: &Value) {
        // Remove under the *old* projection, reinsert under the new one.
        let affected: Vec<usize> = self.attr_in_lhs[a.index()]
            .iter()
            .chain(self.attr_is_rhs[a.index()].iter())
            .copied()
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        for v in affected {
            self.remove_member_with(rules, d, v, t, a, old);
            self.insert_member(rules, d, v, t);
        }
    }

    /// Insert `t` into variable CFD `v`'s structure if its (current) LHS
    /// matches the pattern.
    fn insert_member(&mut self, rules: &RuleSet, d: &Relation, v: usize, t: TupleId) {
        let cfd = &rules.cfds()[self.vcfd_rule_idx[v]];
        let tup = d.tuple(t);
        if !cfd.lhs_matches(tup) {
            return;
        }
        let key = tup.project(&self.lhs[v]);
        let gid = match self.tables[v].get(&key) {
            Some(&g) => g,
            None => {
                let g = self.groups.len() as GroupId;
                self.groups.push(Group {
                    vcfd: v,
                    key: key.clone(),
                    tuples: Vec::new(),
                    counts: HashMap::new(),
                    nulls: 0,
                    entropy: 0.0,
                });
                self.tables[v].insert(key, g);
                g
            }
        };
        self.detach_from_tree(v, gid);
        let b = tup.value(self.rhs[v]).clone();
        let grp = &mut self.groups[gid as usize];
        grp.tuples.push(t);
        if b.is_null() {
            grp.nulls += 1;
        } else {
            *grp.counts.entry(b).or_insert(0) += 1;
        }
        grp.recompute_entropy();
        self.attach_to_tree(v, gid);
    }

    /// Remove `t` from the group it occupied *before* `a` changed away from
    /// `old`.
    fn remove_member_with(
        &mut self,
        rules: &RuleSet,
        d: &Relation,
        v: usize,
        t: TupleId,
        a: AttrId,
        old: &Value,
    ) {
        let cfd = &rules.cfds()[self.vcfd_rule_idx[v]];
        let tup = d.tuple(t);
        // Old projection/pattern check: substitute `old` at `a`.
        let value_at = |attr: AttrId| -> Value {
            if attr == a {
                old.clone()
            } else {
                tup.value(attr).clone()
            }
        };
        let matched_old = cfd
            .lhs()
            .iter()
            .zip(cfd.lhs_pattern())
            .all(|(attr, p)| p.matches(&value_at(*attr)));
        if !matched_old {
            return;
        }
        let key: Vec<Value> = self.lhs[v].iter().map(|attr| value_at(*attr)).collect();
        let Some(&gid) = self.tables[v].get(&key) else {
            return;
        };
        self.detach_from_tree(v, gid);
        let old_b = value_at(self.rhs[v]);
        let grp = &mut self.groups[gid as usize];
        if let Some(pos) = grp.tuples.iter().position(|x| *x == t) {
            grp.tuples.swap_remove(pos);
            if old_b.is_null() {
                grp.nulls = grp.nulls.saturating_sub(1);
            } else if let Some(c) = grp.counts.get_mut(&old_b) {
                *c -= 1;
                if *c == 0 {
                    grp.counts.remove(&old_b);
                }
            }
            grp.recompute_entropy();
        }
        if grp.tuples.is_empty() {
            self.tables[v].remove(&key);
        } else {
            self.attach_to_tree(v, gid);
        }
    }

    fn detach_from_tree(&mut self, v: usize, gid: GroupId) {
        let e = self.groups[gid as usize].entropy;
        if e > 0.0 {
            self.trees[v].remove(&EntropyKey {
                entropy: e,
                id: gid,
            });
        }
    }

    fn attach_to_tree(&mut self, v: usize, gid: GroupId) {
        let e = self.groups[gid as usize].entropy;
        if e > 0.0 {
            self.trees[v].insert(EntropyKey {
                entropy: e,
                id: gid,
            });
        }
    }

    /// Exhaustive consistency check against a fresh rebuild (test helper).
    #[cfg(test)]
    fn assert_consistent_with_rebuild(&self, rules: &RuleSet, d: &Relation) {
        type GroupSummary<'a> = HashMap<&'a Vec<Value>, (usize, Vec<(&'a Value, usize)>)>;
        let fresh = TwoInOne::build(rules, d);
        for v in 0..self.len() {
            let mine: GroupSummary = self.tables[v]
                .iter()
                .map(|(k, &g)| {
                    let grp = &self.groups[g as usize];
                    let mut counts: Vec<(&Value, usize)> =
                        grp.counts.iter().map(|(v, c)| (v, *c)).collect();
                    counts.sort();
                    (k, (grp.tuples.len(), counts))
                })
                .collect();
            let theirs: GroupSummary = fresh.tables[v]
                .iter()
                .map(|(k, &g)| {
                    let grp = &fresh.groups[g as usize];
                    let mut counts: Vec<(&Value, usize)> =
                        grp.counts.iter().map(|(v, c)| (v, *c)).collect();
                    counts.sort();
                    (k, (grp.tuples.len(), counts))
                })
                .collect();
            assert_eq!(mine, theirs, "vcfd {v} diverged from rebuild");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use uniclean_model::{FixMark, Schema, Tuple};
    use uniclean_rules::parse_rules;

    /// Fig. 8's relation and the FD ABC → E of Example 6.2.
    fn fig8() -> (Arc<Schema>, RuleSet, Relation) {
        let s = Schema::of_strings("r", &["A", "B", "C", "E", "F", "H"]);
        let parsed = parse_rules("cfd phi: r([A, B, C] -> [E])", &s, None).unwrap();
        let rules = RuleSet::cfds_only(s.clone(), parsed.cfds);
        let rows = [
            ["a1", "b1", "c1", "e1", "f1", "h1"],
            ["a1", "b1", "c1", "e1", "f2", "h2"],
            ["a1", "b1", "c1", "e1", "f3", "h3"],
            ["a1", "b1", "c1", "e2", "f1", "h3"],
            ["a2", "b2", "c2", "e1", "f2", "h4"],
            ["a2", "b2", "c2", "e2", "f1", "h4"],
            ["a2", "b2", "c3", "e3", "f3", "h5"],
            ["a2", "b2", "c4", "e3", "f3", "h6"],
        ];
        let d = Relation::new(
            s.clone(),
            rows.iter().map(|r| Tuple::of_strs(r, 0.5)).collect(),
        );
        (s, rules, d)
    }

    #[test]
    fn example_6_2_entropies() {
        let (_, rules, d) = fig8();
        let t = TwoInOne::build(&rules, &d);
        assert_eq!(t.len(), 1);
        // Groups: (a1,b1,c1) H≈0.81, (a2,b2,c2) H=1, (a2,b2,c3) and
        // (a2,b2,c4) H=0.
        let nonzero = t.groups_below(0, f64::INFINITY);
        assert_eq!(nonzero.len(), 2);
        let min = t.min_entropy_group(0).unwrap();
        let g = t.group(min);
        assert!((g.entropy - 0.8112781244591328).abs() < 1e-9);
        assert_eq!(g.tuples.len(), 4);
        let (maj, cnt) = g.majority().unwrap();
        assert_eq!(maj, &Value::str("e1"));
        assert_eq!(cnt, 3);
    }

    #[test]
    fn groups_below_threshold_excludes_uniform_conflicts() {
        let (_, rules, d) = fig8();
        let t = TwoInOne::build(&rules, &d);
        // δ2 = 0.9: only the 0.81 group qualifies; the H=1 group does not.
        let below = t.groups_below(0, 0.9);
        assert_eq!(below.len(), 1);
        assert!((t.group(below[0]).entropy - 0.8112781244591328).abs() < 1e-9);
    }

    #[test]
    fn resolving_a_conflict_empties_the_tree_entry() {
        let (s, rules, mut d) = fig8();
        let mut t = TwoInOne::build(&rules, &d);
        let e = s.attr_id_or_panic("E");
        // Resolve the (a1,b1,c1) conflict: t4's E := e1.
        let old = d.tuple(TupleId(3)).value(e).clone();
        d.tuple_mut(TupleId(3))
            .set(e, Value::str("e1"), 0.5, FixMark::Reliable);
        t.on_update(&rules, &d, TupleId(3), e, &old);
        let below = t.groups_below(0, f64::INFINITY);
        assert_eq!(below.len(), 1, "only the H=1 group remains");
        t.assert_consistent_with_rebuild(&rules, &d);
    }

    #[test]
    fn lhs_update_rekeys_the_tuple() {
        let (s, rules, mut d) = fig8();
        let mut t = TwoInOne::build(&rules, &d);
        let c = s.attr_id_or_panic("C");
        // Move t7 (a2,b2,c3) into the (a2,b2,c4) group: E values e3/e3 →
        // entropy stays 0 but membership moves.
        let old = d.tuple(TupleId(6)).value(c).clone();
        d.tuple_mut(TupleId(6))
            .set(c, Value::str("c4"), 0.5, FixMark::Reliable);
        t.on_update(&rules, &d, TupleId(6), c, &old);
        t.assert_consistent_with_rebuild(&rules, &d);
    }

    #[test]
    fn null_b_values_stay_out_of_entropy() {
        let s = Schema::of_strings("r", &["K", "B"]);
        let parsed = parse_rules("cfd fd: r([K] -> [B])", &s, None).unwrap();
        let rules = RuleSet::cfds_only(s.clone(), parsed.cfds);
        let b = s.attr_id_or_panic("B");
        let mut t1 = Tuple::of_strs(&["k", "x"], 0.5);
        t1.set(b, Value::Null, 0.0, FixMark::Untouched);
        let d = Relation::new(s, vec![t1, Tuple::of_strs(&["k", "y"], 0.5)]);
        let t = TwoInOne::build(&rules, &d);
        let gid = t.tables[0].values().next().copied().unwrap();
        let g = t.group(gid);
        assert_eq!(g.nulls, 1);
        assert_eq!(g.counts.len(), 1);
        assert_eq!(g.entropy, 0.0);
    }

    #[test]
    fn pattern_constants_filter_membership() {
        let s = Schema::of_strings("r", &["K", "B"]);
        let parsed = parse_rules("cfd fd: r([K=k1] -> [B])", &s, None).unwrap();
        let rules = RuleSet::cfds_only(s.clone(), parsed.cfds);
        let d = Relation::new(
            s,
            vec![
                Tuple::of_strs(&["k1", "x"], 0.5),
                Tuple::of_strs(&["k2", "y"], 0.5),
            ],
        );
        let t = TwoInOne::build(&rules, &d);
        assert_eq!(t.tables[0].len(), 1);
        let gid = t.tables[0].values().next().copied().unwrap();
        assert_eq!(t.group(gid).tuples, vec![TupleId(0)]);
    }

    #[test]
    fn random_update_storm_stays_consistent() {
        // Pseudo-random single-cell updates must keep the incremental
        // structure identical to a rebuild.
        let (s, rules, mut d) = fig8();
        let mut t = TwoInOne::build(&rules, &d);
        let attrs: Vec<AttrId> = ["A", "B", "C", "E"]
            .iter()
            .map(|a| s.attr_id_or_panic(a))
            .collect();
        let vals = ["a1", "b1", "c1", "e1", "e2", "zz"];
        let mut seed = 0x9e3779b97f4a7c15u64;
        for _ in 0..200 {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            let tid = TupleId((seed % 8) as u32);
            let a = attrs[(seed >> 8) as usize % attrs.len()];
            let nv = Value::str(vals[(seed >> 16) as usize % vals.len()]);
            let old = d.tuple(tid).value(a).clone();
            d.tuple_mut(tid).set(a, nv, 0.5, FixMark::Reliable);
            t.on_update(&rules, &d, tid, a, &old);
        }
        t.assert_consistent_with_rebuild(&rules, &d);
    }
}
