//! The 2-in-1 structure of §6.3: a hash table per variable CFD plus an AVL
//! tree ordered by entropy.
//!
//! For each variable CFD `ϕ = R(Y → B, tp)` the hash table `HTab` maps each
//! key `ȳ ∈ π_Y(σ_{Y ≍ tp[Y]} D)` to a node carrying the entropy
//! `H(ϕ|Y=ȳ)`, the member tuples of `Δ(ȳ)` and the per-value counts
//! `cnt_{YB}(ȳ, b)`; the AVL tree holds a node for every key with nonzero
//! entropy, ordered by entropy, so `eRepair` can pull the most certain
//! conflict sets first. Both structures are maintained incrementally under
//! cell updates: "after resolving some conflicts, the structures need to be
//! maintained accordingly … O(|Δ(ȳ)||ΣV| + |Δ(ȳ)| log |D|) time".
//!
//! Storage-native keys: the columnar [`Relation`] already interns every
//! cell, so group keys are projections of the store's own symbol columns
//! (`Vec<Symbol>` hashed with the trivial [`FxHasher`]) and per-value
//! counts are keyed by the cell's [`Symbol`] directly. The structure keeps
//! **no value cache of its own** — PR 2's per-cell symbol cache and private
//! interner are gone; a cell update needs no re-interning here because the
//! store interned the new value when it was written. Pattern matching on
//! the scan paths compares compiled pattern symbols
//! ([`crate::pattern_syms::CfdPatternSyms`]).
//!
//! Symbols are only meaningful against the relation (lineage) the
//! structure was built over; [`TwoInOne::group_key`]/[`TwoInOne::majority`]
//! take the relation to resolve them. The engine always evolves one
//! lineage in place (clones extend the same append-only interner), which
//! is what lets a session pin a *persistent* clone to the post-`cRepair`
//! state and extend it by [`TwoInOne::insert_tuples`] deltas.
//!
//! **Incremental entropy** (kept from PR 2): each group maintains
//! `Σ c·ln c` under count deltas, so the common single-count update
//! refreshes `H` in O(1). The rebuild oracle in the tests keeps the
//! incremental values honest.
//!
//! [`TwoInOne::build_with`] fans the per-tuple pattern checks and key
//! projections out over scoped workers (the chunk stage of
//! [`crate::parallel`]'s chunk–merge–apply design) and replays the
//! precomputed projections in tuple-id order, so group ids — and therefore
//! `eRepair`'s resolution order — are bit-identical to a single-threaded
//! build.

use std::collections::HashMap;

use uniclean_model::{AttrId, FxHashMap, Relation, Symbol, TupleId, Value};
use uniclean_rules::{Cfd, RuleSet};

use crate::avl::{AvlTree, EntropyKey};
use crate::parallel::map_chunks;
use crate::pattern_syms::CfdPatternSyms;

/// Stable identifier of a conflict set (arena index).
pub type GroupId = u64;

/// A group key `ȳ`: the store's symbols for the projected LHS values.
pub type GroupKey = Vec<Symbol>;

/// `c · ln c` with the `0 ln 0 = 0` convention.
#[inline]
fn xlnx(c: usize) -> f64 {
    if c <= 1 {
        0.0 // 1·ln 1 = 0 exactly; avoids ln(0) for c = 0.
    } else {
        let c = c as f64;
        c * c.ln()
    }
}

/// One conflict set `Δ(ȳ)` for one variable CFD.
#[derive(Clone, Debug)]
pub struct Group {
    /// Position in the owner's variable-CFD list.
    pub vcfd: usize,
    /// The LHS key `ȳ` (store symbols).
    key: GroupKey,
    /// Member tuples.
    pub tuples: Vec<TupleId>,
    /// Counts of distinct non-null B values, keyed by store symbol.
    counts: FxHashMap<Symbol, usize>,
    /// Members whose B value is null (kept out of the entropy).
    pub nulls: usize,
    /// `Σ c·ln c` over `counts`, maintained incrementally.
    sum_c_ln_c: f64,
    /// Cached `H(ϕ|Y=ȳ)`.
    pub entropy: f64,
}

impl Group {
    /// Number of distinct non-null B values in the conflict set.
    pub fn distinct_values(&self) -> usize {
        self.counts.len()
    }

    /// Apply a ±1 delta to one value count and refresh the entropy in
    /// O(1): `H = (ln n − Σc·ln c / n) / ln k`, the closed form of §6.1's
    /// `Σ (c/n)·log_k(n/c)`.
    fn bump(&mut self, b: Symbol, delta: isize) {
        let c_old = self.counts.get(&b).copied().unwrap_or(0);
        let c_new = match delta {
            1 => c_old + 1,
            -1 => c_old.saturating_sub(1),
            _ => unreachable!("bump is ±1"),
        };
        if c_new == 0 {
            self.counts.remove(&b);
        } else {
            self.counts.insert(b, c_new);
        }
        self.sum_c_ln_c += xlnx(c_new) - xlnx(c_old);
        if self.counts.is_empty() {
            // Re-anchor the accumulator so float drift cannot outlive the
            // counts that caused it.
            self.sum_c_ln_c = 0.0;
        }
        self.refresh_entropy();
    }

    fn refresh_entropy(&mut self) {
        // `n = |Δ(ȳ)|` minus the null members — always in sync with the
        // membership updates, which precede every `bump`.
        let counted = self.tuples.len() - self.nulls;
        let k = self.counts.len();
        self.entropy = if k <= 1 || counted == 0 {
            0.0
        } else {
            let n = counted as f64;
            ((n.ln() - self.sum_c_ln_c / n) / (k as f64).ln()).max(0.0)
        };
    }
}

/// The 2-in-1 structure over every variable CFD of a rule set.
///
/// The structure is `Clone` so a session can keep a *persistent* copy
/// pinned to the post-`cRepair` state and hand each `eRepair` run a cheap
/// working clone — cloning copies hash buckets and tree nodes without
/// re-hashing a single value, unlike a rebuild.
#[derive(Clone)]
pub struct TwoInOne {
    /// Indices into `rules.cfds()` that are variable CFDs.
    vcfd_rule_idx: Vec<usize>,
    /// Cached rule shape per variable CFD.
    lhs: Vec<Vec<AttrId>>,
    rhs: Vec<AttrId>,
    /// LHS patterns compiled to symbols against the build relation's
    /// lineage (indexed by *rule* id, as compiled).
    pats: CfdPatternSyms,
    /// HTab per variable CFD.
    tables: Vec<FxHashMap<GroupKey, GroupId>>,
    /// Group arena (never shrinks; emptied groups are recycled lazily).
    groups: Vec<Group>,
    /// AVL per variable CFD over (entropy, group id), nonzero entropy only.
    trees: Vec<AvlTree>,
    /// attr → variable CFDs reading it (LHS) / writing it (RHS), each list
    /// ascending (enables the allocation-free merge in `on_update`).
    attr_in_lhs: Vec<Vec<usize>>,
    attr_is_rhs: Vec<Vec<usize>>,
}

impl TwoInOne {
    /// Build the structure for all variable CFDs in `rules` over `d`,
    /// single-threaded. O(|D| log |D| |ΣV|), as in §6.3.
    pub fn build(rules: &RuleSet, d: &Relation) -> Self {
        Self::build_with(rules, d, true, 1)
    }

    /// [`Self::build`] with explicit interning and worker-thread knobs.
    /// The per-tuple pattern checks and key projections fan out over
    /// `threads` scoped workers; the merge replays them in tuple-id order,
    /// so the resulting structure (including group-id assignment) is
    /// bit-identical for every thread count. `interning` is accepted for
    /// configuration symmetry but no longer changes anything here: the
    /// columnar store is symbol-native, so keys are always symbols.
    pub fn build_with(rules: &RuleSet, d: &Relation, interning: bool, threads: usize) -> Self {
        let _ = interning;
        let n_attrs = rules.schema().arity();
        let mut vcfd_rule_idx = Vec::new();
        let mut lhs = Vec::new();
        let mut rhs = Vec::new();
        for (i, c) in rules.cfds().iter().enumerate() {
            if c.is_variable() {
                vcfd_rule_idx.push(i);
                lhs.push(c.lhs().to_vec());
                rhs.push(c.rhs()[0]);
            }
        }
        let nv = vcfd_rule_idx.len();
        let mut attr_in_lhs = vec![Vec::new(); n_attrs];
        let mut attr_is_rhs = vec![Vec::new(); n_attrs];
        for (v, attrs) in lhs.iter().enumerate() {
            for a in attrs {
                attr_in_lhs[a.index()].push(v);
            }
            attr_is_rhs[rhs[v].index()].push(v);
        }

        let mut me = TwoInOne {
            vcfd_rule_idx,
            lhs,
            rhs,
            pats: CfdPatternSyms::compile(rules, d),
            tables: (0..nv).map(|_| HashMap::default()).collect(),
            groups: Vec::new(),
            trees: (0..nv).map(|_| AvlTree::new()).collect(),
            attr_in_lhs,
            attr_is_rhs,
        };

        // Chunk: project every (tuple, vcfd) pair to its group key and B
        // symbol on the workers — pure reads of the symbol columns. Merge/
        // apply: replay in tuple-id order — the exact loop a sequential
        // build runs.
        let projections = map_chunks(d.len(), threads, |range| {
            let mut rows = Vec::with_capacity(range.len());
            for i in range {
                let t = TupleId::from(i);
                let row: Vec<Option<(GroupKey, Option<Symbol>)>> =
                    (0..nv).map(|v| me.project_for_insert(d, v, t)).collect();
                rows.push(row);
            }
            rows
        });
        let mut tid = 0u32;
        for chunk in projections {
            for row in chunk {
                for (v, proj) in row.into_iter().enumerate() {
                    if let Some((key, b)) = proj {
                        me.insert_projected(v, TupleId(tid), key, b);
                    }
                }
                tid += 1;
            }
        }
        me
    }

    /// Append tuples `from..d.len()` to the structure with insert-time
    /// group and entropy deltas — no rebuild, no re-hashing of existing
    /// members. The result (group membership, group-id assignment) is
    /// bit-identical to a from-scratch [`Self::build_with`] over the whole
    /// of `d`, because a build is exactly this insertion replay in
    /// tuple-id order: new group ids are assigned at first key occurrence
    /// and existing groups only ever gain members. This is the
    /// `clean_delta` hot path. `d` must be the build relation's lineage
    /// (the store interned the new rows on push).
    pub fn insert_tuples(&mut self, rules: &RuleSet, d: &Relation, from: usize) {
        let _ = rules;
        let nv = self.vcfd_rule_idx.len();
        for i in from..d.len() {
            let t = TupleId::from(i);
            for v in 0..nv {
                self.insert_member(d, v, t);
            }
        }
    }

    /// The variable CFD of slot `v` within `rules`.
    pub fn rule<'r>(&self, rules: &'r RuleSet, v: usize) -> &'r Cfd {
        &rules.cfds()[self.vcfd_rule_idx[v]]
    }

    /// Number of variable CFDs tracked.
    pub fn len(&self) -> usize {
        self.vcfd_rule_idx.len()
    }

    /// Is the structure empty (no variable CFDs)?
    pub fn is_empty(&self) -> bool {
        self.vcfd_rule_idx.is_empty()
    }

    /// A group by id.
    pub fn group(&self, g: GroupId) -> &Group {
        &self.groups[g as usize]
    }

    /// The group's LHS key `ȳ`, resolved to values through `d`'s interner
    /// (`d` must be the build lineage).
    pub fn group_key(&self, d: &Relation, g: GroupId) -> Vec<Value> {
        self.groups[g as usize]
            .key
            .iter()
            .map(|&s| d.interner().resolve(s).clone())
            .collect()
    }

    /// The majority B value of a group and its count (ties: the
    /// lexicographically smallest value, keeping resolution deterministic).
    pub fn majority(&self, d: &Relation, g: GroupId) -> Option<(Value, usize)> {
        let grp = &self.groups[g as usize];
        grp.counts
            .iter()
            .map(|(&b, &c)| (d.interner().resolve(b), c))
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(a.0)))
            .map(|(v, c)| (v.clone(), c))
    }

    /// Conflict sets of variable CFD `v` with `0 < H < bound`, in ascending
    /// entropy order (O(log |T|) per retrieval step via the AVL tree).
    pub fn groups_below(&self, v: usize, bound: f64) -> Vec<GroupId> {
        self.trees[v]
            .below(bound)
            .into_iter()
            .map(|k| k.id)
            .collect()
    }

    /// The minimum-entropy conflict set of variable CFD `v`, if any.
    pub fn min_entropy_group(&self, v: usize) -> Option<GroupId> {
        self.trees[v].min().map(|k| k.id)
    }

    /// Update hook: tuple `t`'s attribute `a` changed from `old` to its
    /// current value in `d` (the store has already interned the new
    /// value — this hook re-interns nothing). Rekeys `t` in every variable
    /// CFD reading `a` and adjusts counts in every variable CFD writing
    /// `a`. The affected slots come from a sorted merge of the two
    /// precomputed per-attribute lists — no per-update allocation.
    pub fn on_update(&mut self, rules: &RuleSet, d: &Relation, t: TupleId, a: AttrId, old: &Value) {
        // The old value was stored in the relation before the write, so
        // its symbol exists; `None` can only mean a foreign relation.
        let old_sym = d.interner().get(old);
        let (mut i, mut j) = (0usize, 0usize);
        loop {
            let li = self.attr_in_lhs[a.index()].get(i).copied();
            let rj = self.attr_is_rhs[a.index()].get(j).copied();
            let v = match (li, rj) {
                (Some(x), Some(y)) => {
                    if x < y {
                        i += 1;
                        x
                    } else if y < x {
                        j += 1;
                        y
                    } else {
                        i += 1;
                        j += 1;
                        x
                    }
                }
                (Some(x), None) => {
                    i += 1;
                    x
                }
                (None, Some(y)) => {
                    j += 1;
                    y
                }
                (None, None) => break,
            };
            self.remove_member_with(rules, d, v, t, a, old, old_sym);
            self.insert_member(d, v, t);
        }
    }

    /// Project `t` for insertion into variable CFD `v`: `None` when the
    /// LHS pattern does not match, otherwise the group key and the B
    /// symbol (`None` = null, kept out of the counts). Reads only the
    /// symbol columns — safe to call from build workers, hashes nothing.
    fn project_for_insert(
        &self,
        d: &Relation,
        v: usize,
        t: TupleId,
    ) -> Option<(GroupKey, Option<Symbol>)> {
        let rule_idx = self.vcfd_rule_idx[v];
        if !self.pats.lhs_matches_attrs(rule_idx, &self.lhs[v], d, t) {
            return None;
        }
        let key: GroupKey = self.lhs[v].iter().map(|a| d.sym(t, *a)).collect();
        let b_sym = d.sym(t, self.rhs[v]);
        let b = (b_sym != d.null_sym()).then_some(b_sym);
        Some((key, b))
    }

    /// Insert `t` into variable CFD `v`'s structure if its (current) LHS
    /// matches the pattern.
    fn insert_member(&mut self, d: &Relation, v: usize, t: TupleId) {
        if let Some((key, b)) = self.project_for_insert(d, v, t) {
            self.insert_projected(v, t, key, b);
        }
    }

    /// The table/arena/tree half of an insert, with the key already
    /// projected — shared by `insert_member` and the build replay.
    fn insert_projected(&mut self, v: usize, t: TupleId, key: GroupKey, b: Option<Symbol>) {
        let gid = match self.tables[v].get(&key) {
            Some(&g) => g,
            None => {
                let g = self.groups.len() as GroupId;
                self.groups.push(Group {
                    vcfd: v,
                    key: key.clone(),
                    tuples: Vec::new(),
                    counts: FxHashMap::default(),
                    nulls: 0,
                    sum_c_ln_c: 0.0,
                    entropy: 0.0,
                });
                self.tables[v].insert(key, g);
                g
            }
        };
        self.detach_from_tree(v, gid);
        let grp = &mut self.groups[gid as usize];
        grp.tuples.push(t);
        match b {
            None => grp.nulls += 1,
            Some(b) => grp.bump(b, 1),
        }
        self.attach_to_tree(v, gid);
    }

    /// Remove `t` from the group it occupied *before* `a` changed away from
    /// `old` (whose symbol, if interned, is `old_sym`; the store already
    /// holds the new value's symbol).
    #[allow(clippy::too_many_arguments)]
    fn remove_member_with(
        &mut self,
        rules: &RuleSet,
        d: &Relation,
        v: usize,
        t: TupleId,
        a: AttrId,
        old: &Value,
        old_sym: Option<Symbol>,
    ) {
        let cfd = &rules.cfds()[self.vcfd_rule_idx[v]];
        let tup = d.tuple(t);
        // Old projection/pattern check: substitute `old` at `a`. Borrowing
        // (not cloning) — the pattern check only reads. This is the cold
        // per-update path; the hot scans use the compiled symbols.
        let value_at = |attr: AttrId| -> &Value {
            if attr == a {
                old
            } else {
                tup.value(attr)
            }
        };
        let matched_old = cfd
            .lhs()
            .iter()
            .zip(cfd.lhs_pattern())
            .all(|(attr, p)| p.matches(value_at(*attr)));
        if !matched_old {
            return;
        }
        // Key assembly from the symbol columns, substituting the old
        // symbol at `a`. A value the interner has never seen cannot be
        // part of any inserted key, so the group cannot exist.
        let mut key: GroupKey = Vec::with_capacity(self.lhs[v].len());
        for attr in &self.lhs[v] {
            if *attr == a {
                match old_sym {
                    Some(s) => key.push(s),
                    None => return,
                }
            } else {
                key.push(d.sym(t, *attr));
            }
        }
        let Some(&gid) = self.tables[v].get(&key) else {
            return;
        };
        self.detach_from_tree(v, gid);
        let b_attr = self.rhs[v];
        let old_bval = value_at(b_attr);
        let old_b = if old_bval.is_null() {
            None
        } else if b_attr == a {
            old_sym
        } else {
            Some(d.sym(t, b_attr))
        };
        let grp = &mut self.groups[gid as usize];
        if let Some(pos) = grp.tuples.iter().position(|x| *x == t) {
            grp.tuples.swap_remove(pos);
            match old_b {
                None if old_bval.is_null() => grp.nulls = grp.nulls.saturating_sub(1),
                Some(b) if grp.counts.contains_key(&b) => grp.bump(b, -1),
                _ => {}
            }
        }
        if grp.tuples.is_empty() {
            self.tables[v].remove(&key);
        } else {
            self.attach_to_tree(v, gid);
        }
    }

    fn detach_from_tree(&mut self, v: usize, gid: GroupId) {
        let e = self.groups[gid as usize].entropy;
        if e > 0.0 {
            self.trees[v].remove(&EntropyKey {
                entropy: e,
                id: gid,
            });
        }
    }

    fn attach_to_tree(&mut self, v: usize, gid: GroupId) {
        let e = self.groups[gid as usize].entropy;
        if e > 0.0 {
            self.trees[v].insert(EntropyKey {
                entropy: e,
                id: gid,
            });
        }
    }

    /// Exhaustive consistency check against a fresh rebuild (test helper).
    /// Keys and counts are compared in resolved-value form, and each
    /// group's incremental entropy is checked against the from-scratch
    /// formula.
    #[cfg(test)]
    fn assert_consistent_with_rebuild(&self, rules: &RuleSet, d: &Relation) {
        use crate::entropy::entropy_of_counts;
        type GroupSummary = HashMap<Vec<Value>, (usize, Vec<(Value, usize)>)>;
        let summarize = |me: &TwoInOne, v: usize| -> GroupSummary {
            me.tables[v]
                .values()
                .map(|&g| {
                    let grp = &me.groups[g as usize];
                    let mut counts: Vec<(Value, usize)> = grp
                        .counts
                        .iter()
                        .map(|(&b, &c)| (d.interner().resolve(b).clone(), c))
                        .collect();
                    counts.sort();
                    (me.group_key(d, g), (grp.tuples.len(), counts))
                })
                .collect()
        };
        let fresh = TwoInOne::build(rules, d);
        for v in 0..self.len() {
            assert_eq!(
                summarize(self, v),
                summarize(&fresh, v),
                "vcfd {v} diverged from rebuild"
            );
            for &g in self.tables[v].values() {
                let grp = &self.groups[g as usize];
                let oracle = entropy_of_counts(grp.counts.values().copied());
                assert!(
                    (grp.entropy - oracle).abs() < 1e-9,
                    "vcfd {v} group {g}: incremental entropy {} vs oracle {oracle}",
                    grp.entropy
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use uniclean_model::{FixMark, Schema, Tuple};
    use uniclean_rules::parse_rules;

    /// Fig. 8's relation and the FD ABC → E of Example 6.2.
    fn fig8() -> (Arc<Schema>, RuleSet, Relation) {
        let s = Schema::of_strings("r", &["A", "B", "C", "E", "F", "H"]);
        let parsed = parse_rules("cfd phi: r([A, B, C] -> [E])", &s, None).unwrap();
        let rules = RuleSet::cfds_only(s.clone(), parsed.cfds);
        let rows = [
            ["a1", "b1", "c1", "e1", "f1", "h1"],
            ["a1", "b1", "c1", "e1", "f2", "h2"],
            ["a1", "b1", "c1", "e1", "f3", "h3"],
            ["a1", "b1", "c1", "e2", "f1", "h3"],
            ["a2", "b2", "c2", "e1", "f2", "h4"],
            ["a2", "b2", "c2", "e2", "f1", "h4"],
            ["a2", "b2", "c3", "e3", "f3", "h5"],
            ["a2", "b2", "c4", "e3", "f3", "h6"],
        ];
        let d = Relation::new(
            s.clone(),
            rows.iter().map(|r| Tuple::of_strs(r, 0.5)).collect(),
        );
        (s, rules, d)
    }

    #[test]
    fn example_6_2_entropies() {
        let (_, rules, d) = fig8();
        let t = TwoInOne::build(&rules, &d);
        assert_eq!(t.len(), 1);
        // Groups: (a1,b1,c1) H≈0.81, (a2,b2,c2) H=1, (a2,b2,c3) and
        // (a2,b2,c4) H=0.
        let nonzero = t.groups_below(0, f64::INFINITY);
        assert_eq!(nonzero.len(), 2);
        let min = t.min_entropy_group(0).unwrap();
        let g = t.group(min);
        assert!((g.entropy - 0.8112781244591328).abs() < 1e-9);
        assert_eq!(g.tuples.len(), 4);
        let (maj, cnt) = t.majority(&d, min).unwrap();
        assert_eq!(maj, Value::str("e1"));
        assert_eq!(cnt, 3);
    }

    #[test]
    fn groups_below_threshold_excludes_uniform_conflicts() {
        let (_, rules, d) = fig8();
        let t = TwoInOne::build(&rules, &d);
        // δ2 = 0.9: only the 0.81 group qualifies; the H=1 group does not.
        let below = t.groups_below(0, 0.9);
        assert_eq!(below.len(), 1);
        assert!((t.group(below[0]).entropy - 0.8112781244591328).abs() < 1e-9);
    }

    #[test]
    fn resolving_a_conflict_empties_the_tree_entry() {
        let (s, rules, mut d) = fig8();
        let mut t = TwoInOne::build(&rules, &d);
        let e = s.attr_id_or_panic("E");
        // Resolve the (a1,b1,c1) conflict: t4's E := e1.
        let old = d.tuple(TupleId(3)).value(e).clone();
        d.tuple_mut(TupleId(3))
            .set(e, Value::str("e1"), 0.5, FixMark::Reliable);
        t.on_update(&rules, &d, TupleId(3), e, &old);
        let below = t.groups_below(0, f64::INFINITY);
        assert_eq!(below.len(), 1, "only the H=1 group remains");
        t.assert_consistent_with_rebuild(&rules, &d);
    }

    #[test]
    fn lhs_update_rekeys_the_tuple() {
        let (s, rules, mut d) = fig8();
        let mut t = TwoInOne::build(&rules, &d);
        let c = s.attr_id_or_panic("C");
        // Move t7 (a2,b2,c3) into the (a2,b2,c4) group: E values e3/e3 →
        // entropy stays 0 but membership moves.
        let old = d.tuple(TupleId(6)).value(c).clone();
        d.tuple_mut(TupleId(6))
            .set(c, Value::str("c4"), 0.5, FixMark::Reliable);
        t.on_update(&rules, &d, TupleId(6), c, &old);
        t.assert_consistent_with_rebuild(&rules, &d);
    }

    #[test]
    fn null_b_values_stay_out_of_entropy() {
        let s = Schema::of_strings("r", &["K", "B"]);
        let parsed = parse_rules("cfd fd: r([K] -> [B])", &s, None).unwrap();
        let rules = RuleSet::cfds_only(s.clone(), parsed.cfds);
        let b = s.attr_id_or_panic("B");
        let mut t1 = Tuple::of_strs(&["k", "x"], 0.5);
        t1.set(b, Value::Null, 0.0, FixMark::Untouched);
        let d = Relation::new(s, vec![t1, Tuple::of_strs(&["k", "y"], 0.5)]);
        let t = TwoInOne::build(&rules, &d);
        let gid = t.tables[0].values().next().copied().unwrap();
        let g = t.group(gid);
        assert_eq!(g.nulls, 1);
        assert_eq!(g.distinct_values(), 1);
        assert_eq!(g.entropy, 0.0);
    }

    #[test]
    fn pattern_constants_filter_membership() {
        let s = Schema::of_strings("r", &["K", "B"]);
        let parsed = parse_rules("cfd fd: r([K=k1] -> [B])", &s, None).unwrap();
        let rules = RuleSet::cfds_only(s.clone(), parsed.cfds);
        let d = Relation::new(
            s,
            vec![
                Tuple::of_strs(&["k1", "x"], 0.5),
                Tuple::of_strs(&["k2", "y"], 0.5),
            ],
        );
        let t = TwoInOne::build(&rules, &d);
        assert_eq!(t.tables[0].len(), 1);
        let gid = t.tables[0].values().next().copied().unwrap();
        assert_eq!(t.group(gid).tuples, vec![TupleId(0)]);
    }

    #[test]
    fn random_update_storm_stays_consistent() {
        // Pseudo-random single-cell updates must keep the incremental
        // structure identical to a rebuild.
        for threads in [1usize, 4] {
            let (s, rules, mut d) = fig8();
            let mut t = TwoInOne::build_with(&rules, &d, true, threads);
            let attrs: Vec<AttrId> = ["A", "B", "C", "E"]
                .iter()
                .map(|a| s.attr_id_or_panic(a))
                .collect();
            let vals = ["a1", "b1", "c1", "e1", "e2", "zz"];
            let mut seed = 0x9e3779b97f4a7c15u64;
            for _ in 0..200 {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                let tid = TupleId((seed % 8) as u32);
                let a = attrs[(seed >> 8) as usize % attrs.len()];
                let nv = Value::str(vals[(seed >> 16) as usize % vals.len()]);
                let old = d.tuple(tid).value(a).clone();
                d.tuple_mut(tid).set(a, nv, 0.5, FixMark::Reliable);
                t.on_update(&rules, &d, tid, a, &old);
            }
            t.assert_consistent_with_rebuild(&rules, &d);
        }
    }

    #[test]
    fn insert_tuples_matches_a_fresh_build_bit_for_bit() {
        // Build over a prefix, insert the rest incrementally: group ids,
        // membership, counts and entropies must equal a from-scratch build.
        // The prefix relation is extended in place (same store lineage),
        // exactly as `clean_delta` extends `post_c`.
        let (s, rules, d) = fig8();
        for split in [0usize, 3, 5, 8] {
            let all = d.to_tuples();
            let mut grown = Relation::new(s.clone(), all[..split].to_vec());
            let mut inc = TwoInOne::build_with(&rules, &grown, true, 1);
            for t in &all[split..] {
                grown.push(t.clone());
            }
            inc.insert_tuples(&rules, &grown, split);
            let fresh = TwoInOne::build_with(&rules, &grown, true, 1);
            assert_eq!(inc.len(), fresh.len());
            for v in 0..inc.len() {
                let dump = |t: &TwoInOne| -> Vec<(Vec<Value>, GroupId, Vec<TupleId>, f64)> {
                    let mut out: Vec<_> = t.tables[v]
                        .values()
                        .map(|&g| {
                            (
                                t.group_key(&grown, g),
                                g,
                                t.group(g).tuples.clone(),
                                t.group(g).entropy,
                            )
                        })
                        .collect();
                    out.sort_by(|a, b| a.0.cmp(&b.0));
                    out
                };
                assert_eq!(dump(&inc), dump(&fresh), "split={split} vcfd={v}");
            }
            inc.assert_consistent_with_rebuild(&rules, &grown);
        }
    }

    #[test]
    fn cloned_structure_evolves_like_the_original() {
        let (s, rules, mut d) = fig8();
        let base = TwoInOne::build(&rules, &d);
        let mut a = base.clone();
        let mut b = TwoInOne::build(&rules, &d);
        let e = s.attr_id_or_panic("E");
        let old = d.tuple(TupleId(3)).value(e).clone();
        d.tuple_mut(TupleId(3))
            .set(e, Value::str("e1"), 0.5, FixMark::Reliable);
        a.on_update(&rules, &d, TupleId(3), e, &old);
        b.on_update(&rules, &d, TupleId(3), e, &old);
        assert_eq!(
            a.groups_below(0, f64::INFINITY),
            b.groups_below(0, f64::INFINITY)
        );
        a.assert_consistent_with_rebuild(&rules, &d);
    }

    #[test]
    fn parallel_builds_match_the_sequential_one() {
        let (_, rules, d) = fig8();
        let base = TwoInOne::build_with(&rules, &d, true, 1);
        for threads in [2usize, 4] {
            let other = TwoInOne::build_with(&rules, &d, true, threads);
            assert_eq!(base.len(), other.len());
            for v in 0..base.len() {
                let mut a: Vec<(Vec<Value>, Vec<TupleId>)> = base.tables[v]
                    .values()
                    .map(|&g| (base.group_key(&d, g), base.group(g).tuples.clone()))
                    .collect();
                let mut b: Vec<(Vec<Value>, Vec<TupleId>)> = other.tables[v]
                    .values()
                    .map(|&g| (other.group_key(&d, g), other.group(g).tuples.clone()))
                    .collect();
                a.sort();
                b.sort();
                assert_eq!(a, b, "threads={threads}");
                // Group-id assignment must also be identical (it orders
                // equal-entropy AVL nodes).
                let mut ids_a: Vec<GroupId> = base.tables[v].values().copied().collect();
                let mut ids_b: Vec<GroupId> = other.tables[v].values().copied().collect();
                ids_a.sort_unstable();
                ids_b.sort_unstable();
                assert_eq!(ids_a, ids_b);
            }
        }
    }
}
