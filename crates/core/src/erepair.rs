//! `eRepair`: reliable fixes from information entropy (§6, Fig 6).
//!
//! For attributes whose confidence is low or unavailable, evidence is drawn
//! from the data itself: a variable-CFD conflict set `Δ(ȳ)` is resolved to
//! its majority value when its entropy `H(ϕ|Y=ȳ)` falls below the threshold
//! `δ2`; constant-CFD and MD violations are resolved directly. A cell is
//! abandoned once changed `δ1` times ("no enough information to make
//! reliable fixes"). Rules are applied in the dependency-graph order of
//! §6.2 (SCC condensation topologically sorted, out/in-degree ratio within
//! an SCC), repeating until no change.
//!
//! Deterministic fixes from `cRepair` are never overwritten, and neither
//! are cells asserted by confidence (`cf ≥ η`) — entropy evidence must not
//! override confidence evidence.
//!
//! Parallelism: the 2-in-1 structure build and the MD premise
//! verification — the two read-heavy stages — fan out over scoped workers
//! ([`crate::parallel`]); the resolution loop itself stays sequential and
//! consumes the precomputed results in tuple-id order, so output is
//! bit-identical at every `parallelism` setting.

use std::collections::HashMap;

use uniclean_model::{AttrId, FixMark, Relation, TupleId, Value};
use uniclean_reasoning::{erepair_order, RuleRef};
use uniclean_rules::RuleSet;

use crate::config::CleanConfig;
use crate::fix::{FixRecord, FixReport};
use crate::master_index::MasterIndex;
use crate::md_cache::MdMatchCache;
use crate::pattern_syms::{ensure_rule_constants, CfdPatternSyms};
use crate::two_in_one::TwoInOne;

/// Run `eRepair` in place on `d`. Returns the reliable fixes applied.
pub fn e_repair(
    d: &mut Relation,
    dm: Option<&Relation>,
    rules: &RuleSet,
    idx: Option<&MasterIndex>,
    cfg: &CleanConfig,
) -> FixReport {
    let mut structure = TwoInOne::build_with(rules, d, cfg.interning, cfg.effective_parallelism());
    let mut md_cache = MdMatchCache::new(rules, d.len(), cfg.self_match);
    e_run(d, dm, rules, idx, cfg, &mut structure, &mut md_cache)
}

/// The engine behind [`e_repair`], with the 2-in-1 structure and the MD
/// witness cache supplied by the caller. A fresh build plus an empty cache
/// reproduces [`e_repair`] exactly; the incremental path hands in a clone
/// of its persistent post-`cRepair` structure (maintained by insert-time
/// deltas) and its warm cross-call cache instead — both provably
/// transparent, so the resolution sequence is bit-identical either way.
pub(crate) fn e_run(
    d: &mut Relation,
    dm: Option<&Relation>,
    rules: &RuleSet,
    idx: Option<&MasterIndex>,
    cfg: &CleanConfig,
    structure: &mut TwoInOne,
    md_cache: &mut MdMatchCache,
) -> FixReport {
    assert!(
        rules.mds().is_empty() || (dm.is_some() && idx.is_some()),
        "rule set contains MDs: master data and a MasterIndex are required"
    );
    // Stable symbols for rule constants, then compile the CFD patterns
    // once — the per-round scans below match patterns by symbol compare.
    ensure_rule_constants(d, rules);
    let pats = CfdPatternSyms::compile(rules, d);
    let threads = cfg.effective_parallelism();
    let order = erepair_order(rules);
    // Slot of each variable CFD (rules.cfds() index → TwoInOne position).
    let mut vslot: HashMap<usize, usize> = HashMap::new();
    {
        let mut v = 0usize;
        for (i, c) in rules.cfds().iter().enumerate() {
            if c.is_variable() {
                vslot.insert(i, v);
                v += 1;
            }
        }
    }

    if let (Some(dm), Some(idx)) = (dm, idx) {
        // Fan the expensive premise verification out over the workers for
        // every cell `MDReslove` may interrogate in round one; later
        // rounds reuse the entries that repairs have not invalidated, and
        // entries already warm in a cross-call cache are skipped.
        let eta = cfg.eta;
        md_cache.prefill(rules, d, dm, idx, threads, |m, t| {
            let (e, _) = rules.mds()[m].rhs()[0];
            let tup = d.tuple(t);
            tup.mark(e) != FixMark::Deterministic && tup.cf(e) < eta
        });
    }

    let mut st = EState {
        change_count: HashMap::new(),
        report: FixReport::new(),
        eta: cfg.eta,
        delta_update: cfg.delta_update,
        self_match: cfg.self_match,
        md_cache,
    };

    for _round in 0..cfg.max_erepair_rounds {
        let mut changed = false;
        for r in &order {
            match *r {
                RuleRef::Cfd(i) if rules.cfds()[i].is_variable() => {
                    changed |= v_cfd_resolve(d, rules, structure, vslot[&i], cfg, &mut st);
                }
                RuleRef::Cfd(i) => {
                    changed |= c_cfd_resolve(d, rules, structure, i, &pats, &mut st);
                }
                RuleRef::Md(i) => {
                    let dm = dm.expect("MDs require master data");
                    let idx = idx.expect("MDs require a MasterIndex");
                    changed |= md_resolve(d, dm, rules, idx, structure, i, &mut st);
                }
            }
        }
        if !changed {
            break;
        }
    }
    st.report
}

struct EState<'a> {
    change_count: HashMap<(TupleId, AttrId), usize>,
    report: FixReport,
    eta: f64,
    delta_update: usize,
    self_match: bool,
    md_cache: &'a mut MdMatchCache,
}

impl EState<'_> {
    /// May `eRepair` touch this cell at all?
    fn touchable(&self, d: &Relation, t: TupleId, a: AttrId) -> bool {
        let tup = d.tuple(t);
        tup.mark(a) != FixMark::Deterministic
            && tup.cf(a) < self.eta
            && self.change_count.get(&(t, a)).copied().unwrap_or(0) < self.delta_update
    }

    /// Apply one reliable fix and maintain the 2-in-1 structure.
    #[allow(clippy::too_many_arguments)]
    fn apply(
        &mut self,
        d: &mut Relation,
        structure: &mut TwoInOne,
        rules: &RuleSet,
        t: TupleId,
        a: AttrId,
        new: Value,
        rule: &str,
    ) {
        let old = d.tuple(t).value(a).clone();
        debug_assert_ne!(old, new, "apply called without a change");
        let cf = d.tuple(t).cf(a);
        d.tuple_mut(t).set(a, new.clone(), cf, FixMark::Reliable);
        *self.change_count.entry((t, a)).or_insert(0) += 1;
        self.report.push(FixRecord {
            tuple: t,
            attr: a,
            old: old.clone(),
            new,
            mark: FixMark::Reliable,
            rule: rule.into(),
        });
        structure.on_update(rules, d, t, a, &old);
        self.md_cache.invalidate(t, a);
    }
}

/// Procedure `vCFDReslove` (Fig 6): resolve every conflict set of the
/// variable CFD with `0 < H < δ2` to its majority value.
fn v_cfd_resolve(
    d: &mut Relation,
    rules: &RuleSet,
    structure: &mut TwoInOne,
    v: usize,
    cfg: &CleanConfig,
    st: &mut EState<'_>,
) -> bool {
    let cfd_name = structure.rule(rules, v).name().to_string();
    let b = structure.rule(rules, v).rhs()[0];
    let mut changed = false;
    for gid in structure.groups_below(v, cfg.delta_entropy) {
        let (majority, members) = {
            let Some((maj, _)) = structure.majority(d, gid) else {
                continue;
            };
            (maj, structure.group(gid).tuples.clone())
        };
        for t in members {
            if d.tuple(t).value(b) != &majority && st.touchable(d, t, b) {
                st.apply(d, structure, rules, t, b, majority.clone(), &cfd_name);
                changed = true;
            }
        }
    }
    changed
}

/// Procedure `cCFDReslove` (Fig 6): apply the constant pattern to every
/// matching tuple still touchable. The scan matches the LHS pattern by
/// compiled symbols and pre-screens the RHS by symbol too.
fn c_cfd_resolve(
    d: &mut Relation,
    rules: &RuleSet,
    structure: &mut TwoInOne,
    i: usize,
    pats: &CfdPatternSyms,
    st: &mut EState<'_>,
) -> bool {
    let cfd = &rules.cfds()[i];
    let a = cfd.rhs()[0];
    let want = cfd.rhs_pattern()[0]
        .as_const()
        .expect("constant CFD")
        .clone();
    let name = cfd.name().to_string();
    let lhs = cfd.lhs().to_vec();
    let mut changed = false;
    for t in d.ids().collect::<Vec<_>>() {
        if pats.lhs_matches_attrs(i, &lhs, d, t)
            && d.tuple(t).value(a) != &want
            && st.touchable(d, t, a)
        {
            st.apply(d, structure, rules, t, a, want.clone(), &name);
            changed = true;
        }
    }
    changed
}

/// Procedure `MDReslove` (Fig 6): pull master values into matching tuples.
fn md_resolve(
    d: &mut Relation,
    dm: &Relation,
    rules: &RuleSet,
    idx: &MasterIndex,
    structure: &mut TwoInOne,
    i: usize,
    st: &mut EState<'_>,
) -> bool {
    let md = &rules.mds()[i];
    let (e, f) = md.rhs()[0];
    let name = md.name().to_string();
    let (self_match, eta) = (st.self_match, st.eta);
    let mut changed = false;
    for t in d.ids().collect::<Vec<_>>() {
        if !st.touchable(d, t, e) {
            continue;
        }
        // First *disagreeing* witness: an agreeing master tuple earlier in
        // the candidate list must not mask a correction demanded by a later
        // one (and under self-matching the tuple's own copy always agrees —
        // the cache's `exclude_self` skips it). Witness lists come from the
        // memoized (possibly prefilled-in-parallel) cache.
        let Some(s) = st
            .md_cache
            .matches(i, rules, d, dm, idx, t)
            .iter()
            .copied()
            // Under self-matching only asserted witnesses carry evidence.
            .filter(|&s| !self_match || dm.tuple(s).cf(f) >= eta)
            .find(|&s| dm.tuple(s).value(f) != d.tuple(t).value(e))
        else {
            continue;
        };
        let new = dm.tuple(s).value(f).clone();
        st.apply(d, structure, rules, t, e, new, &name);
        changed = true;
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniclean_model::{Schema, Tuple};
    use uniclean_rules::parse_rules;

    fn cfg() -> CleanConfig {
        CleanConfig {
            eta: 0.8,
            delta_entropy: 0.9,
            ..CleanConfig::default()
        }
    }

    /// Example 6.2: only the (a1,b1,c1) group is resolved; the uniform
    /// (a2,b2,c2) group is left alone.
    #[test]
    fn example_6_2_resolution() {
        let s = Schema::of_strings("r", &["A", "B", "C", "E"]);
        let parsed = parse_rules("cfd phi: r([A, B, C] -> [E])", &s, None).unwrap();
        let rules = RuleSet::cfds_only(s.clone(), parsed.cfds);
        let rows = [
            ["a1", "b1", "c1", "e1"],
            ["a1", "b1", "c1", "e1"],
            ["a1", "b1", "c1", "e1"],
            ["a1", "b1", "c1", "e2"],
            ["a2", "b2", "c2", "e1"],
            ["a2", "b2", "c2", "e2"],
        ];
        let mut d = Relation::new(
            s.clone(),
            rows.iter().map(|r| Tuple::of_strs(r, 0.0)).collect(),
        );
        let report = e_repair(&mut d, None, &rules, None, &cfg());
        let e = s.attr_id_or_panic("E");
        assert_eq!(d.tuple(TupleId(3)).value(e), &Value::str("e1"));
        assert_eq!(d.tuple(TupleId(3)).mark(e), FixMark::Reliable);
        // The H = 1 group is untouched.
        assert_eq!(d.tuple(TupleId(4)).value(e), &Value::str("e1"));
        assert_eq!(d.tuple(TupleId(5)).value(e), &Value::str("e2"));
        assert_eq!(report.len(), 1);
    }

    #[test]
    fn deterministic_fixes_are_preserved() {
        let s = Schema::of_strings("r", &["K", "B"]);
        let parsed = parse_rules("cfd fd: r([K] -> [B])", &s, None).unwrap();
        let rules = RuleSet::cfds_only(s.clone(), parsed.cfds);
        let b = s.attr_id_or_panic("B");
        let mut minority = Tuple::of_strs(&["k", "special"], 0.0);
        minority.set(b, Value::str("special"), 0.0, FixMark::Deterministic);
        let mut d = Relation::new(
            s,
            vec![
                Tuple::of_strs(&["k", "common"], 0.0),
                Tuple::of_strs(&["k", "common"], 0.0),
                Tuple::of_strs(&["k", "common"], 0.0),
                minority,
            ],
        );
        let report = e_repair(&mut d, None, &rules, None, &cfg());
        assert_eq!(d.tuple(TupleId(3)).value(b), &Value::str("special"));
        assert!(report.is_empty());
    }

    #[test]
    fn asserted_cells_are_preserved() {
        let s = Schema::of_strings("r", &["K", "B"]);
        let parsed = parse_rules("cfd fd: r([K] -> [B])", &s, None).unwrap();
        let rules = RuleSet::cfds_only(s.clone(), parsed.cfds);
        let b = s.attr_id_or_panic("B");
        let mut asserted = Tuple::of_strs(&["k", "special"], 0.0);
        asserted.set(b, Value::str("special"), 1.0, FixMark::Untouched);
        let mut d = Relation::new(
            s,
            vec![
                Tuple::of_strs(&["k", "common"], 0.0),
                Tuple::of_strs(&["k", "common"], 0.0),
                Tuple::of_strs(&["k", "common"], 0.0),
                asserted,
            ],
        );
        e_repair(&mut d, None, &rules, None, &cfg());
        assert_eq!(d.tuple(TupleId(3)).value(b), &Value::str("special"));
    }

    #[test]
    fn constant_cfd_fixes_are_reliable() {
        let s = Schema::of_strings("tran", &["AC", "city"]);
        let parsed = parse_rules("cfd phi1: tran([AC=131] -> [city=Edi])", &s, None).unwrap();
        let rules = RuleSet::cfds_only(s.clone(), parsed.cfds);
        let mut d = Relation::new(s.clone(), vec![Tuple::of_strs(&["131", "Ldn"], 0.0)]);
        let report = e_repair(&mut d, None, &rules, None, &cfg());
        let city = s.attr_id_or_panic("city");
        assert_eq!(d.tuple(TupleId(0)).value(city), &Value::str("Edi"));
        assert_eq!(d.tuple(TupleId(0)).mark(city), FixMark::Reliable);
        assert_eq!(report.len(), 1);
    }

    #[test]
    fn md_resolution_pulls_master_values() {
        let tran = Schema::of_strings("tran", &["LN", "phn"]);
        let card = Schema::of_strings("card", &["LN", "tel"]);
        let parsed = parse_rules(
            "md psi: tran[LN] = card[LN] -> tran[phn] <=> card[tel]",
            &tran,
            Some(&card),
        )
        .unwrap();
        let rules = RuleSet::new(
            tran.clone(),
            Some(card.clone()),
            vec![],
            parsed.positive_mds,
            vec![],
        );
        let mut d = Relation::new(tran.clone(), vec![Tuple::of_strs(&["Brady", "000"], 0.0)]);
        let dm = Relation::new(card, vec![Tuple::of_strs(&["Brady", "3887644"], 1.0)]);
        let idx = MasterIndex::build(rules.mds(), &dm);
        let report = e_repair(&mut d, Some(&dm), &rules, Some(&idx), &cfg());
        assert_eq!(
            d.tuple(TupleId(0)).value(tran.attr_id_or_panic("phn")),
            &Value::str("3887644")
        );
        assert_eq!(report.len(), 1);
    }

    #[test]
    fn delta1_stops_oscillating_rules() {
        // Example 4.6's oscillator: the δ1 counter cuts the ping-pong off.
        let s = Schema::of_strings("tran", &["AC", "post", "city"]);
        let parsed = parse_rules(
            "cfd phi1: tran([AC=131] -> [city=Edi])\n\
             cfd phi5: tran([post=\"EH8 9AB\"] -> [city=Ldn])",
            &s,
            None,
        )
        .unwrap();
        let rules = RuleSet::cfds_only(s.clone(), parsed.cfds);
        let mut d = Relation::new(s, vec![Tuple::of_strs(&["131", "EH8 9AB", "x"], 0.0)]);
        let report = e_repair(&mut d, None, &rules, None, &cfg());
        // Each apply increments the counter; with δ1 = 2 the city cell is
        // written at most twice.
        assert!(
            report.len() <= 2,
            "δ1 must bound the changes, got {}",
            report.len()
        );
    }

    #[test]
    fn high_entropy_conflicts_are_left_for_hrepair() {
        let s = Schema::of_strings("r", &["K", "B"]);
        let parsed = parse_rules("cfd fd: r([K] -> [B])", &s, None).unwrap();
        let rules = RuleSet::cfds_only(s.clone(), parsed.cfds);
        let mut d = Relation::new(
            s,
            vec![
                Tuple::of_strs(&["k", "x"], 0.0),
                Tuple::of_strs(&["k", "y"], 0.0),
            ],
        );
        let report = e_repair(&mut d, None, &rules, None, &cfg());
        assert!(report.is_empty(), "H = 1 ≥ δ2: no reliable fix");
    }

    #[test]
    fn resolution_cascades_across_rules() {
        // Fixing B by majority enables the constant CFD on B to fire in the
        // next pass of the ordered loop.
        let s = Schema::of_strings("r", &["K", "B", "C"]);
        let parsed = parse_rules(
            "cfd fd: r([K] -> [B])\ncfd cc: r([B=good] -> [C=ok])",
            &s,
            None,
        )
        .unwrap();
        let rules = RuleSet::cfds_only(s.clone(), parsed.cfds);
        let mut d = Relation::new(
            s.clone(),
            vec![
                Tuple::of_strs(&["k", "good", "ok"], 0.0),
                Tuple::of_strs(&["k", "good", "ok"], 0.0),
                Tuple::of_strs(&["k", "good", "ok"], 0.0),
                Tuple::of_strs(&["k", "bad", "no"], 0.0),
            ],
        );
        // Entropy of {good×3, bad×1} ≈ 0.81 < δ2 = 0.9: resolvable.
        e_repair(&mut d, None, &rules, None, &cfg());
        let c = s.attr_id_or_panic("C");
        assert_eq!(d.tuple(TupleId(3)).value(c), &Value::str("ok"));
    }
}
