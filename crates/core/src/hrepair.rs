//! `hRepair`: possible fixes via equivalence-class targets (§7, extending
//! the heuristic of Cong et al. 2007).
//!
//! Every cell `(t, A)` carries a target `targ` that is either `␣` (not yet
//! fixed — the cell keeps its original value), a constant, or `null`
//! (unresolvable conflict). Resolution only ever *upgrades* targets —
//! `␣ → constant → null`, never constant → constant — so the process
//! terminates (Corollary 7.1: the number of fixed targets `H ≤ 3k` only
//! grows). Agreement demanded by variable CFDs is enforced by upgrading
//! every conflicting member of a violating set toward one chosen value and
//! re-checking on the next round; this realizes the equivalence-class
//! semantics (all members end up equal or null) while keeping each cell
//! *individually* resolvable — physically unioning the cells would let a
//! deterministic fix freeze unrelated cells that were dragged into its
//! class through a corrupted key, deadlocking later MD resolution.
//!
//! Extensions over the original heuristic, per §7:
//! * MD violations are resolved by incorporating constants from the master
//!   relation;
//! * deterministic fixes from `cRepair` are *frozen*: their targets are
//!   immovable constants, and conflicts against them are resolved by
//!   nulling the cheapest non-frozen premise cell instead (rules stop
//!   applying to tuples containing null, which settles the violation);
//! * reliable fixes are kept "as many as possible": they participate with
//!   their (usually majority-backed) values but may be overridden.
//!
//! Value choice is cost-guided with the §3.1 model: among the candidate
//! constants of a violating set, the one minimizing the total
//! confidence-weighted normalized edit distance from the members' original
//! values wins; a frozen value, when present, always wins.
//!
//! Parallelism: each round's read-only scans over the round-start snapshot
//! — the per-tuple LHS projections that build the equivalence classes and
//! the per-(tuple, MD) witness verification — fan out over scoped workers
//! ([`crate::parallel`]'s chunk–merge–apply design) and merge in tuple-id
//! order; the upgrade loop itself stays sequential, so output is
//! bit-identical at every `parallelism` setting (pinned by
//! `tests/determinism.rs`).

use std::collections::HashMap;

use uniclean_model::{cell_cost, value_distance, AttrId, FixMark, Relation, TupleId, Value};
use uniclean_rules::RuleSet;

use crate::config::CleanConfig;
use crate::fix::{FixRecord, FixReport};
use crate::master_index::{MasterIndex, ProbeScratch};
use crate::parallel::map_chunks;
use crate::pattern_syms::{ensure_rule_constants, CfdPatternSyms};

/// Target of a cell.
#[derive(Clone, Debug, PartialEq)]
enum Target {
    /// `␣` — not yet fixed; the cell keeps its original value.
    Free,
    /// A chosen constant.
    Const(Value),
    /// Unresolvable conflict; SQL null semantics apply.
    Null,
}

/// Per-cell resolution state.
struct Cells {
    arity: usize,
    target: Vec<Target>,
    /// Deterministic fixes: immovable constants.
    frozen: Vec<bool>,
    reason: Vec<String>,
}

impl Cells {
    fn new(d: &Relation) -> Self {
        let arity = d.schema().arity();
        let n = d.len() * arity;
        let mut c = Cells {
            arity,
            target: vec![Target::Free; n],
            frozen: vec![false; n],
            reason: vec![String::new(); n],
        };
        for (tid, t) in d.iter() {
            for a in d.schema().attr_ids() {
                if t.mark(a) == FixMark::Deterministic {
                    let cell = c.cell(tid, a);
                    c.frozen[cell] = true;
                    c.target[cell] = Target::Const(t.value(a).clone());
                }
            }
        }
        c
    }

    #[inline]
    fn cell(&self, t: TupleId, a: AttrId) -> usize {
        t.index() * self.arity + a.index()
    }

    fn is_frozen(&self, t: TupleId, a: AttrId) -> bool {
        self.frozen[self.cell(t, a)]
    }

    fn frozen_value(&self, t: TupleId, a: AttrId) -> Option<&Value> {
        let cell = self.cell(t, a);
        if self.frozen[cell] {
            match &self.target[cell] {
                Target::Const(v) => Some(v),
                _ => unreachable!("frozen cells always carry a constant"),
            }
        } else {
            None
        }
    }

    /// Upgrade a cell toward `c`. `Ok(true)` when something changed,
    /// `Ok(false)` when it already agrees (or is null), `Err(())` when the
    /// cell is frozen to a different constant.
    fn upgrade(&mut self, t: TupleId, a: AttrId, c: &Value, rule: &str) -> Result<bool, ()> {
        let cell = self.cell(t, a);
        if self.frozen[cell] {
            return match &self.target[cell] {
                Target::Const(f) if f == c => Ok(false),
                _ => Err(()),
            };
        }
        match &self.target[cell] {
            Target::Null => Ok(false),
            Target::Const(x) if x == c => Ok(false),
            Target::Const(_) => {
                // constant → different constant is forbidden; escalate.
                self.target[cell] = Target::Null;
                self.reason[cell] = rule.into();
                Ok(true)
            }
            Target::Free => {
                self.target[cell] = Target::Const(c.clone());
                self.reason[cell] = rule.into();
                Ok(true)
            }
        }
    }

    /// Force a cell to null (premise break). Fails on frozen cells.
    fn force_null(&mut self, t: TupleId, a: AttrId, rule: &str) -> Result<bool, ()> {
        let cell = self.cell(t, a);
        if self.frozen[cell] {
            return Err(());
        }
        if self.target[cell] == Target::Null {
            return Ok(false);
        }
        self.target[cell] = Target::Null;
        self.reason[cell] = rule.into();
        Ok(true)
    }
}

/// Run `hRepair` in place on `d`. Returns the possible fixes applied.
/// Afterwards `d ⊨ Σ` and `(d, Dm) ⊨ Γ` under SQL null semantics whenever
/// the conflict structure is resolvable (the pipeline re-checks; an
/// unresolvable structure requires two contradictory deterministic fixes
/// inside one violation, which the correctness assumptions of §5 exclude).
pub fn h_repair(
    d: &mut Relation,
    dm: Option<&Relation>,
    rules: &RuleSet,
    idx: Option<&MasterIndex>,
    cfg: &CleanConfig,
) -> FixReport {
    assert!(
        rules.mds().is_empty() || (dm.is_some() && idx.is_some()),
        "rule set contains MDs: master data and a MasterIndex are required"
    );
    // Stable symbols for rule constants before cloning the base: every
    // per-round snapshot shares the lineage, so one pattern compilation
    // serves all rounds.
    ensure_rule_constants(d, rules);
    let base = d.clone();
    let mut cells = Cells::new(&base);
    let pats = CfdPatternSyms::compile(rules, &base);

    // Under self-matching the "master" must track the current assignment:
    // resolving against a phase-start snapshot lets two records swap values
    // through each other's stale copies, round after round.
    let self_schema = cfg.self_match.then(|| {
        rules
            .master_schema()
            .expect("self-matching requires MDs with a master schema")
            .clone()
    });

    let threads = cfg.effective_parallelism();
    for _round in 0..cfg.max_hrepair_rounds {
        let cur = materialize(&base, &cells);
        let mut acted = false;
        acted |= resolve_constant_cfds(&base, &cur, rules, &pats, &mut cells);
        acted |= resolve_variable_cfds(&base, &cur, rules, &pats, &mut cells, threads);
        if let Some(ms) = &self_schema {
            let dm_round = Relation::with_schema(ms.clone(), &cur);
            let idx_round =
                MasterIndex::build_parallel(rules.mds(), &dm_round, cfg.interning, threads);
            acted |= resolve_mds(&cur, &dm_round, rules, &idx_round, cfg, &mut cells, threads);
        } else if let (Some(dm), Some(idx)) = (dm, idx) {
            acted |= resolve_mds(&cur, dm, rules, idx, cfg, &mut cells, threads);
        }
        if !acted {
            break;
        }
    }

    let final_rel = materialize(&base, &cells);
    let mut report = FixReport::new();
    for (tid, t) in base.iter() {
        for a in base.schema().attr_ids() {
            let newv = final_rel.tuple(tid).value(a);
            if newv != t.value(a) {
                let cell = cells.cell(tid, a);
                let rule = if cells.reason[cell].is_empty() {
                    "hRepair".to_string()
                } else {
                    cells.reason[cell].clone()
                };
                d.tuple_mut(tid)
                    .set(a, newv.clone(), t.cf(a), FixMark::Possible);
                report.push(FixRecord {
                    tuple: tid,
                    attr: a,
                    old: t.value(a).clone(),
                    new: newv.clone(),
                    mark: FixMark::Possible,
                    rule,
                });
            }
        }
    }
    report
}

/// The current assignment: original values overridden by cell targets.
fn materialize(base: &Relation, cells: &Cells) -> Relation {
    let mut out = base.clone();
    for (tid, t) in base.iter() {
        for a in base.schema().attr_ids() {
            match &cells.target[cells.cell(tid, a)] {
                Target::Free => {}
                Target::Const(v) => {
                    if t.value(a) != v {
                        out.tuple_mut(tid)
                            .set(a, v.clone(), t.cf(a), FixMark::Possible);
                    }
                }
                Target::Null => {
                    if !t.value(a).is_null() {
                        out.tuple_mut(tid)
                            .set(a, Value::Null, 0.0, FixMark::Possible);
                    }
                }
            }
        }
    }
    out
}

fn resolve_constant_cfds(
    base: &Relation,
    cur: &Relation,
    rules: &RuleSet,
    pats: &CfdPatternSyms,
    cells: &mut Cells,
) -> bool {
    let mut acted = false;
    for (i, cfd) in rules
        .cfds()
        .iter()
        .enumerate()
        .filter(|(_, c)| c.is_constant())
    {
        let a = cfd.rhs()[0];
        let want = cfd.rhs_pattern()[0].as_const().expect("constant CFD");
        for (tid, t) in cur.iter() {
            if !pats.lhs_matches_attrs(i, cfd.lhs(), cur, tid) {
                continue;
            }
            let have = t.value(a);
            if have == want || have.is_null() {
                continue;
            }
            match cells.upgrade(tid, a, want, cfd.name()) {
                Ok(changed) => acted |= changed,
                Err(()) => {
                    // Frozen conflict: break the premise instead.
                    acted |= break_premise(base, cur, cells, tid, cfd.lhs(), cfd.name());
                }
            }
        }
    }
    acted
}

fn resolve_variable_cfds(
    base: &Relation,
    cur: &Relation,
    rules: &RuleSet,
    pats: &CfdPatternSyms,
    cells: &mut Cells,
    threads: usize,
) -> bool {
    let vcfds: Vec<(usize, &uniclean_rules::Cfd)> = rules
        .cfds()
        .iter()
        .enumerate()
        .filter(|(_, c)| c.is_variable())
        .collect();
    if vcfds.is_empty() {
        return false;
    }
    // Chunk: project every (tuple, vcfd) pair against the round-start
    // snapshot `cur` on the workers (pattern checks are symbol compares;
    // the group keys stay resolved values because the winner choice below
    // sorts keys by value order). Merge in tuple-id order; the resolution
    // below then sees exactly the groups a sequential scan would have
    // built.
    let projections = map_chunks(cur.len(), threads, |range| {
        range
            .map(|i| {
                let tid = TupleId::from(i);
                let t = cur.tuple(tid);
                vcfds
                    .iter()
                    .map(|(ri, cfd)| {
                        pats.lhs_matches_attrs(*ri, cfd.lhs(), cur, tid)
                            .then(|| t.project(cfd.lhs()))
                    })
                    .collect::<Vec<Option<Vec<Value>>>>()
            })
            .collect::<Vec<_>>()
    });
    let mut per_cfd_groups: Vec<HashMap<Vec<Value>, Vec<TupleId>>> =
        vec![HashMap::new(); vcfds.len()];
    let mut tid = 0u32;
    for chunk in projections {
        for row in chunk {
            for (v, key) in row.into_iter().enumerate() {
                if let Some(key) = key {
                    per_cfd_groups[v].entry(key).or_default().push(TupleId(tid));
                }
            }
            tid += 1;
        }
    }

    let mut acted = false;
    for ((_, cfd), groups) in vcfds.into_iter().zip(per_cfd_groups) {
        let b = cfd.rhs()[0];
        let mut keyed: Vec<(Vec<Value>, Vec<TupleId>)> = groups.into_iter().collect();
        keyed.sort();
        for (_, members) in keyed {
            if members.len() < 2 {
                continue;
            }
            let mut distinct: Vec<Value> = Vec::new();
            let mut enrichable_null = false;
            for &t in &members {
                let v = cur.tuple(t).value(b);
                if v.is_null() {
                    // Null targets satisfy the FD; only a *free* original
                    // null is enrichable.
                    if cells.target[cells.cell(t, b)] == Target::Free {
                        enrichable_null = true;
                    }
                } else if !distinct.contains(v) {
                    distinct.push(v.clone());
                }
            }
            if distinct.len() < 2 && !(enrichable_null && distinct.len() == 1) {
                continue;
            }
            // Choose the value: a frozen value wins (majority over frozen
            // values when several cells are frozen); otherwise cost-pick.
            let mut frozen_counts: HashMap<&Value, usize> = HashMap::new();
            for &t in &members {
                if let Some(v) = cells.frozen_value(t, b) {
                    *frozen_counts.entry(v).or_insert(0) += 1;
                }
            }
            let winner: Value = if let Some((v, _)) = frozen_counts
                .iter()
                .max_by(|x, y| x.1.cmp(y.1).then(y.0.cmp(x.0)))
            {
                (*v).clone()
            } else {
                cost_pick(base, &members, b, &distinct)
            };
            for &t in &members {
                let curv = cur.tuple(t).value(b);
                if curv == &winner {
                    continue;
                }
                if curv.is_null() && cells.target[cells.cell(t, b)] != Target::Free {
                    continue; // forced null: already satisfies the FD
                }
                match cells.upgrade(t, b, &winner, cfd.name()) {
                    Ok(changed) => acted |= changed,
                    Err(()) => {
                        // This member is frozen to a different value than
                        // the (also frozen) winner: detach it by nulling a
                        // cheap premise cell of *this* tuple.
                        acted |= break_premise(base, cur, cells, t, cfd.lhs(), cfd.name());
                    }
                }
            }
        }
    }
    acted
}

fn resolve_mds(
    cur: &Relation,
    dm: &Relation,
    rules: &RuleSet,
    idx: &MasterIndex,
    cfg: &CleanConfig,
    cells: &mut Cells,
    threads: usize,
) -> bool {
    if rules.mds().is_empty() {
        return false;
    }
    // Chunk: verified witness lists per (tuple, MD) against the round-start
    // snapshot — candidate generation plus premise verification is the
    // dominant per-tuple cost of this resolution. Merge in tuple-id order;
    // the sequential upgrade loop below consumes them unchanged.
    let n_mds = rules.mds().len();
    let witness_rows = map_chunks(cur.len(), threads, |range| {
        // One probe scratch per worker: buffers and the symbol-keyed
        // profile cache amortize across the whole chunk.
        let mut scratch = ProbeScratch::new();
        range
            .map(|i| {
                let tid = TupleId::from(i);
                let t = cur.tuple(tid);
                let exclude = cfg.self_match.then_some(tid);
                (0..n_mds)
                    .map(|m| {
                        let mut out = Vec::new();
                        idx.matches_into(
                            m,
                            &rules.mds()[m],
                            t,
                            dm,
                            exclude,
                            &mut scratch,
                            &mut out,
                        );
                        out
                    })
                    .collect::<Vec<Vec<TupleId>>>()
            })
            .collect::<Vec<_>>()
    });
    let witnesses: Vec<Vec<Vec<TupleId>>> = witness_rows.into_iter().flatten().collect();

    let mut acted = false;
    for (i, md) in rules.mds().iter().enumerate() {
        let (e, f) = md.rhs()[0];
        let premise_attrs: Vec<AttrId> = md.premises().iter().map(|p| p.attr).collect();
        for (tid, t) in cur.iter() {
            let have = t.value(e);
            for &sid in &witnesses[tid.index()][i] {
                // A witness may only demand change of a cell that is at
                // most as confident as itself (§3.1: changing confident
                // cells is costly). Real master data carries cf = 1 and
                // always passes; under self-matching this stops dirty
                // low-confidence copies from overwriting verified values.
                if dm.tuple(sid).cf(f) < t.cf(e) {
                    continue;
                }
                let want = dm.tuple(sid).value(f);
                if have == want || have.is_null() {
                    continue;
                }
                match cells.upgrade(tid, e, want, md.name()) {
                    Ok(changed) => acted |= changed,
                    Err(()) => {
                        acted |= break_premise(cur, cur, cells, tid, &premise_attrs, md.name());
                    }
                }
                break; // one master witness per tuple per rule suffices
            }
        }
    }
    acted
}

/// Null the cheapest non-frozen premise cell of `t` so the rule stops
/// applying (null never matches a pattern or similarity premise).
fn break_premise(
    base: &Relation,
    cur: &Relation,
    cells: &mut Cells,
    t: TupleId,
    premise: &[AttrId],
    rule: &str,
) -> bool {
    let mut best: Option<(f64, AttrId)> = None;
    for &a in premise {
        if cells.is_frozen(t, a) || cells.target[cells.cell(t, a)] == Target::Null {
            continue;
        }
        if cur.tuple(t).value(a).is_null() {
            continue;
        }
        let cf = base.tuple(t).cf(a);
        if best.is_none_or(|(bc, _)| cf < bc) {
            best = Some((cf, a));
        }
    }
    match best {
        Some((_, a)) => cells.force_null(t, a, rule).unwrap_or(false),
        None => false, // everything frozen: unresolvable, leave as-is
    }
}

/// Choose among `candidates` the value minimizing the §3.1 cost over the
/// members' *original* B-cells; ties break to the lexicographically
/// smallest value for determinism.
///
/// Confidence gets a small floor: with the paper's experimental protocol
/// most unasserted cells carry `cf = 0`, which would make every change free
/// and the pick arbitrary. The floor keeps the choice majority- and
/// distance-driven (the value closest to most members wins), which is what
/// the cost model intends.
fn cost_pick(base: &Relation, members: &[TupleId], b: AttrId, candidates: &[Value]) -> Value {
    const CF_FLOOR: f64 = 0.05;
    let mut best: Option<(f64, &Value)> = None;
    let mut sorted: Vec<&Value> = candidates.iter().collect();
    sorted.sort();
    for cand in sorted {
        let total: f64 = members
            .iter()
            .map(|&t| {
                let cellv = base.tuple(t);
                cell_cost(
                    cellv.cf(b).max(CF_FLOOR),
                    cellv.value(b),
                    cand,
                    value_distance,
                )
            })
            .sum();
        if best.is_none_or(|(bc, _)| total < bc) {
            best = Some((total, cand));
        }
    }
    best.expect("candidates nonempty").1.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use uniclean_model::{Schema, Tuple};
    use uniclean_rules::{parse_rules, satisfies_all};

    fn cfg() -> CleanConfig {
        CleanConfig {
            eta: 0.8,
            ..CleanConfig::default()
        }
    }

    fn cfd_rules(schema: &Arc<Schema>, text: &str) -> RuleSet {
        let parsed = parse_rules(text, schema, None).unwrap();
        RuleSet::cfds_only(schema.clone(), parsed.cfds)
    }

    #[test]
    fn constant_cfd_violation_fixed() {
        let s = Schema::of_strings("tran", &["AC", "city"]);
        let rules = cfd_rules(&s, "cfd phi1: tran([AC=131] -> [city=Edi])");
        let mut d = Relation::new(s.clone(), vec![Tuple::of_strs(&["131", "Ldn"], 0.5)]);
        let report = h_repair(&mut d, None, &rules, None, &cfg());
        let city = s.attr_id_or_panic("city");
        assert_eq!(d.tuple(TupleId(0)).value(city), &Value::str("Edi"));
        assert_eq!(d.tuple(TupleId(0)).mark(city), FixMark::Possible);
        assert_eq!(report.len(), 1);
        assert!(satisfies_all(rules.cfds(), &[], &d, &Relation::empty(s)));
    }

    #[test]
    fn variable_cfd_conflict_resolved_by_cost() {
        // Majority + higher confidence wins under the cost model.
        let s = Schema::of_strings("r", &["K", "B"]);
        let rules = cfd_rules(&s, "cfd fd: r([K] -> [B])");
        let b = s.attr_id_or_panic("B");
        let mut cheap = Tuple::of_strs(&["k", "bad"], 0.5);
        cheap.set(b, Value::str("bad"), 0.1, FixMark::Untouched);
        let mut good1 = Tuple::of_strs(&["k", "good"], 0.5);
        good1.set(b, Value::str("good"), 0.9, FixMark::Untouched);
        let mut good2 = Tuple::of_strs(&["k", "good"], 0.5);
        good2.set(b, Value::str("good"), 0.9, FixMark::Untouched);
        let mut d = Relation::new(s.clone(), vec![cheap, good1, good2]);
        h_repair(&mut d, None, &rules, None, &cfg());
        assert_eq!(d.tuple(TupleId(0)).value(b), &Value::str("good"));
        assert!(satisfies_all(rules.cfds(), &[], &d, &Relation::empty(s)));
    }

    #[test]
    fn null_enrichment_through_fd() {
        // Example 1.1 step (d): a null street is enriched from the agreeing
        // tuple.
        let s = Schema::of_strings("tran", &["city", "phn", "St"]);
        let rules = cfd_rules(&s, "cfd phi3: tran([city, phn] -> [St])");
        let st = s.attr_id_or_panic("St");
        let mut t4 = Tuple::of_strs(&["Ldn", "3887644", "x"], 0.5);
        t4.set(st, Value::Null, 0.0, FixMark::Untouched);
        let t3 = Tuple::of_strs(&["Ldn", "3887644", "5 Wren St"], 0.5);
        let mut d = Relation::new(s, vec![t3, t4]);
        h_repair(&mut d, None, &rules, None, &cfg());
        assert_eq!(d.tuple(TupleId(1)).value(st), &Value::str("5 Wren St"));
    }

    #[test]
    fn deterministic_fixes_survive() {
        let s = Schema::of_strings("r", &["K", "B"]);
        let rules = cfd_rules(&s, "cfd fd: r([K] -> [B])");
        let b = s.attr_id_or_panic("B");
        let mut frozen = Tuple::of_strs(&["k", "det"], 0.9);
        frozen.set(b, Value::str("det"), 0.9, FixMark::Deterministic);
        let other = Tuple::of_strs(&["k", "heur"], 0.1);
        let mut d = Relation::new(s.clone(), vec![frozen, other]);
        h_repair(&mut d, None, &rules, None, &cfg());
        assert_eq!(d.tuple(TupleId(0)).value(b), &Value::str("det"));
        assert_eq!(d.tuple(TupleId(0)).mark(b), FixMark::Deterministic);
        // The other tuple adopted the frozen value.
        assert_eq!(d.tuple(TupleId(1)).value(b), &Value::str("det"));
        assert!(satisfies_all(rules.cfds(), &[], &d, &Relation::empty(s)));
    }

    #[test]
    fn conflicting_frozen_cells_break_the_premise() {
        // Two deterministically fixed B values under the same key: the FD
        // cannot align them; a premise cell goes to null instead.
        let s = Schema::of_strings("r", &["K", "B"]);
        let rules = cfd_rules(&s, "cfd fd: r([K] -> [B])");
        let b = s.attr_id_or_panic("B");
        let k = s.attr_id_or_panic("K");
        let mut f1 = Tuple::of_strs(&["k", "v1"], 0.9);
        f1.set(b, Value::str("v1"), 0.9, FixMark::Deterministic);
        let mut f2 = Tuple::of_strs(&["k", "v2"], 0.9);
        f2.set(b, Value::str("v2"), 0.9, FixMark::Deterministic);
        let mut d = Relation::new(s.clone(), vec![f1, f2]);
        h_repair(&mut d, None, &rules, None, &cfg());
        // Both frozen values intact; some K became null to detach the rule.
        assert_eq!(d.tuple(TupleId(0)).value(b), &Value::str("v1"));
        assert_eq!(d.tuple(TupleId(1)).value(b), &Value::str("v2"));
        assert!(d.tuple(TupleId(0)).value(k).is_null() || d.tuple(TupleId(1)).value(k).is_null());
        assert!(satisfies_all(rules.cfds(), &[], &d, &Relation::empty(s)));
    }

    #[test]
    fn frozen_conclusion_with_fixable_premise_detaches() {
        // The deadlock that motivated per-cell targets: an MD demands a
        // change to a frozen conclusion; the premise cell is NOT frozen, so
        // it is nulled and the deterministic fix survives.
        let tran = Schema::of_strings("tran", &["LN", "phn"]);
        let card = Schema::of_strings("card", &["LN", "tel"]);
        let parsed = parse_rules(
            "md psi: tran[LN] = card[LN] -> tran[phn] <=> card[tel]",
            &tran,
            Some(&card),
        )
        .unwrap();
        let rules = RuleSet::new(
            tran.clone(),
            Some(card.clone()),
            vec![],
            parsed.positive_mds,
            vec![],
        );
        let phn = tran.attr_id_or_panic("phn");
        let mut t = Tuple::of_strs(&["Brady", "111"], 0.9);
        t.set(phn, Value::str("111"), 0.9, FixMark::Deterministic);
        let mut d = Relation::new(tran.clone(), vec![t]);
        // Master disagrees with the frozen phone.
        let dm = Relation::new(card, vec![Tuple::of_strs(&["Brady", "222"], 1.0)]);
        let idx = MasterIndex::build(rules.mds(), &dm);
        h_repair(&mut d, Some(&dm), &rules, Some(&idx), &cfg());
        assert_eq!(
            d.tuple(TupleId(0)).value(phn),
            &Value::str("111"),
            "frozen fix preserved"
        );
        assert!(
            d.tuple(TupleId(0))
                .value(tran.attr_id_or_panic("LN"))
                .is_null(),
            "premise detached"
        );
        assert!(satisfies_all(&[], rules.mds(), &d, &dm));
    }

    #[test]
    fn md_violation_pulls_master_value() {
        let tran = Schema::of_strings("tran", &["LN", "phn"]);
        let card = Schema::of_strings("card", &["LN", "tel"]);
        let parsed = parse_rules(
            "md psi: tran[LN] = card[LN] -> tran[phn] <=> card[tel]",
            &tran,
            Some(&card),
        )
        .unwrap();
        let rules = RuleSet::new(
            tran.clone(),
            Some(card.clone()),
            vec![],
            parsed.positive_mds,
            vec![],
        );
        let mut d = Relation::new(tran.clone(), vec![Tuple::of_strs(&["Brady", "000"], 0.5)]);
        let dm = Relation::new(card, vec![Tuple::of_strs(&["Brady", "3887644"], 1.0)]);
        let idx = MasterIndex::build(rules.mds(), &dm);
        h_repair(&mut d, Some(&dm), &rules, Some(&idx), &cfg());
        assert_eq!(
            d.tuple(TupleId(0)).value(tran.attr_id_or_panic("phn")),
            &Value::str("3887644")
        );
        assert!(satisfies_all(&[], rules.mds(), &d, &dm));
    }

    #[test]
    fn example_7_2_full_resolution() {
        // ϕ4 standardizes t3[FN] := Robert; ψ then matches s2 and fixes the
        // phone; ϕ3 copies street/post into t4.
        let tran = Schema::of_strings("tran", &["FN", "LN", "city", "phn", "St", "post"]);
        let card = Schema::of_strings("card", &["FN", "LN", "city", "tel", "St", "zip"]);
        let text = "cfd phi4: tran([FN=Bob] -> [FN=Robert])\n\
                    cfd phi3a: tran([city, phn] -> [St])\n\
                    cfd phi3b: tran([city, phn] -> [post])\n\
                    md psi: tran[LN] = card[LN] AND tran[city] = card[city] AND tran[St] = card[St] AND tran[post] = card[zip] AND tran[FN] ~lev(3) card[FN] -> tran[phn] <=> card[tel]";
        let parsed = parse_rules(text, &tran, Some(&card)).unwrap();
        let rules = RuleSet::new(
            tran.clone(),
            Some(card.clone()),
            parsed.cfds,
            parsed.positive_mds,
            vec![],
        );
        let t3 = Tuple::of_strs(
            &["Bob", "Brady", "Ldn", "3887834", "5 Wren St", "WC1H 9SE"],
            0.5,
        );
        let mut t4 = Tuple::of_strs(&["Robert", "Brady", "Ldn", "3887644", "", "WC1E 7HX"], 0.5);
        t4.set(
            tran.attr_id_or_panic("St"),
            Value::Null,
            0.0,
            FixMark::Untouched,
        );
        let mut d = Relation::new(tran.clone(), vec![t3, t4]);
        let dm = Relation::new(
            card.clone(),
            vec![Tuple::of_strs(
                &["Robert", "Brady", "Ldn", "3887644", "5 Wren St", "WC1H 9SE"],
                1.0,
            )],
        );
        let idx = MasterIndex::build(rules.mds(), &dm);
        h_repair(&mut d, Some(&dm), &rules, Some(&idx), &cfg());
        let fnid = tran.attr_id_or_panic("FN");
        let phn = tran.attr_id_or_panic("phn");
        let st = tran.attr_id_or_panic("St");
        assert_eq!(d.tuple(TupleId(0)).value(fnid), &Value::str("Robert"));
        assert_eq!(d.tuple(TupleId(0)).value(phn), &Value::str("3887644"));
        // t3 and t4 now agree on city+phn, so ϕ3 propagates the street.
        assert_eq!(d.tuple(TupleId(1)).value(st), &Value::str("5 Wren St"));
        assert!(satisfies_all(rules.cfds(), rules.mds(), &d, &dm));
    }

    #[test]
    fn oscillating_constants_settle_via_null() {
        // Example 4.6's oscillator terminates in hRepair: Edi, then the
        // conflicting demand upgrades the target to null.
        let s = Schema::of_strings("tran", &["AC", "post", "city"]);
        let rules = cfd_rules(
            &s,
            "cfd phi1: tran([AC=131] -> [city=Edi])\n\
             cfd phi5: tran([post=\"EH8 9AB\"] -> [city=Ldn])",
        );
        let mut d = Relation::new(
            s.clone(),
            vec![Tuple::of_strs(&["131", "EH8 9AB", "x"], 0.5)],
        );
        let report = h_repair(&mut d, None, &rules, None, &cfg());
        let city = s.attr_id_or_panic("city");
        assert!(d.tuple(TupleId(0)).value(city).is_null());
        assert!(report.len() <= 2);
        assert!(satisfies_all(rules.cfds(), &[], &d, &Relation::empty(s)));
    }

    #[test]
    fn clean_data_is_untouched() {
        let s = Schema::of_strings("tran", &["AC", "city"]);
        let rules = cfd_rules(&s, "cfd phi1: tran([AC=131] -> [city=Edi])");
        let mut d = Relation::new(s, vec![Tuple::of_strs(&["131", "Edi"], 0.5)]);
        let report = h_repair(&mut d, None, &rules, None, &cfg());
        assert!(report.is_empty());
    }
}
