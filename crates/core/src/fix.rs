//! Per-cell fix records and phase statistics.
//!
//! "At the end of the process, fixes are marked with three distinct signs,
//! indicating deterministic, reliable and possible" (§3.2). The report is
//! what the experiments score: Exp-3 measures precision/recall *per phase*
//! and Exp-4 the share of deterministic fixes.

use uniclean_model::{AttrId, FixMark, TupleId, Value};

/// One applied fix.
#[derive(Clone, Debug, PartialEq)]
pub struct FixRecord {
    /// Which tuple was updated.
    pub tuple: TupleId,
    /// Which attribute was updated.
    pub attr: AttrId,
    /// Value before the fix.
    pub old: Value,
    /// Value after the fix.
    pub new: Value,
    /// Accuracy class of the fix.
    pub mark: FixMark,
    /// Diagnostic label of the rule that produced the fix.
    pub rule: String,
}

/// All fixes applied during a run, in application order.
#[derive(Clone, Debug, Default)]
pub struct FixReport {
    records: Vec<FixRecord>,
}

impl FixReport {
    /// Create an empty report.
    pub fn new() -> Self {
        FixReport::default()
    }

    /// Append a fix.
    pub fn push(&mut self, rec: FixRecord) {
        self.records.push(rec);
    }

    /// All records in application order.
    pub fn records(&self) -> &[FixRecord] {
        &self.records
    }

    /// Total number of fixes.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Is the report empty?
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of fixes of a given class, counting each cell's *final* state
    /// (a cell re-fixed by a later phase counts once, under the final mark).
    pub fn count_final(&self, mark: FixMark) -> usize {
        self.final_states().filter(|r| r.mark == mark).count()
    }

    /// The last fix applied to each cell, i.e. the cell's final state.
    pub fn final_states(&self) -> impl Iterator<Item = &FixRecord> {
        let mut last: std::collections::HashMap<(TupleId, AttrId), &FixRecord> =
            std::collections::HashMap::new();
        for r in &self.records {
            last.insert((r.tuple, r.attr), r);
        }
        let mut v: Vec<&FixRecord> = last.into_values().collect();
        v.sort_by_key(|r| (r.tuple, r.attr));
        v.into_iter()
    }

    /// Number of distinct cells touched.
    pub fn cells_touched(&self) -> usize {
        self.final_states().count()
    }

    /// Merge another report into this one (phases run in sequence).
    pub fn extend(&mut self, other: FixReport) {
        self.records.extend(other.records);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: u32, a: u16, mark: FixMark, new: &str) -> FixRecord {
        FixRecord {
            tuple: TupleId(t),
            attr: AttrId(a),
            old: Value::str("old"),
            new: Value::str(new),
            mark,
            rule: "r".into(),
        }
    }

    #[test]
    fn counts_use_final_state_per_cell() {
        let mut rep = FixReport::new();
        rep.push(rec(0, 0, FixMark::Reliable, "a"));
        rep.push(rec(0, 0, FixMark::Possible, "b")); // re-fixed later
        rep.push(rec(1, 0, FixMark::Deterministic, "c"));
        assert_eq!(rep.len(), 3);
        assert_eq!(rep.cells_touched(), 2);
        assert_eq!(rep.count_final(FixMark::Reliable), 0);
        assert_eq!(rep.count_final(FixMark::Possible), 1);
        assert_eq!(rep.count_final(FixMark::Deterministic), 1);
    }

    #[test]
    fn extend_concatenates_in_order() {
        let mut a = FixReport::new();
        a.push(rec(0, 0, FixMark::Deterministic, "x"));
        let mut b = FixReport::new();
        b.push(rec(0, 0, FixMark::Possible, "y"));
        a.extend(b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.count_final(FixMark::Possible), 1);
    }

    #[test]
    fn empty_report() {
        let rep = FixReport::new();
        assert!(rep.is_empty());
        assert_eq!(rep.cells_touched(), 0);
    }
}
