//! `cRepair`: deterministic fixes from confidence analysis (§5, Figs 4–5).
//!
//! A cell is *asserted* when its confidence reaches the threshold `η`. A
//! cleaning rule fires only when every premise attribute is asserted, and
//! only ever writes *unasserted* cells; the written cell becomes asserted at
//! confidence `η` (Fig 5 sets `cf := η`), which can recursively unlock
//! further rules. The machinery follows the paper's pseudo-code:
//!
//! * a hash table `H_ϕ` per variable CFD mapping each LHS key `ȳ` to
//!   `(list, val)` — the waiting tuples and the unique asserted RHS value;
//! * a queue `Q[t]` of rules whose premise is fully asserted on `t`
//!   (realized as one global FIFO of `(tuple, rule)` pairs with dedup
//!   flags);
//! * a set `P[t]` of variable CFDs on which `t` waits for an asserted
//!   witness;
//! * counters `count[t, ξ]` of asserted premise attributes.
//!
//! Every cell is written at most once (unasserted → asserted), so the
//! algorithm terminates in O(|D|·|Dm|·size(Θ)) and — as the paper argues in
//! §5.2 — its outcome is independent of rule application order (property-
//! tested below and in the integration suite).
//!
//! Parallelism: MD candidate generation and premise verification — the
//! dominant per-tuple cost — are prefilled over scoped workers into an
//! [`MdMatchCache`] for every tuple whose premise is asserted up front;
//! the inference fixpoint itself stays sequential and recomputes any
//! entry a repair invalidates, so output is bit-identical at every
//! `parallelism` setting (see [`crate::parallel`]).

use std::collections::VecDeque;

use uniclean_model::{AttrId, FixMark, FxHashMap, Relation, Symbol, TupleId, Value};
use uniclean_rules::RuleSet;

use crate::config::CleanConfig;
use crate::fix::{FixRecord, FixReport};
use crate::master_index::MasterIndex;
use crate::md_cache::MdMatchCache;
use crate::pattern_syms::{ensure_rule_constants, CfdPatternSyms};

/// A variable-CFD conflict-set entry: the paper's `H(ȳ) = (list, val)`.
#[derive(Default)]
struct VGroup {
    list: Vec<TupleId>,
    val: Option<Value>,
}

/// The persistable half of the `cRepair` machine: the hash tables,
/// counters and wait sets of Fig 4, plus the memoized MD witness cache.
///
/// A full run builds one, seeds every tuple and drains the queue. The
/// incremental path ([`crate::RepairState`]) keeps the fixpoint alive
/// between calls: appending a batch seeds *only the new tuples* and
/// continues the same fixpoint — valid because `cRepair` is a monotone
/// write-once inference whose outcome is independent of rule application
/// order (§5.2). The [`CGuard`] watches for the two situations where a
/// continuation could diverge from a from-scratch run and must escalate:
/// a write landing on a previously-settled tuple, and conflicting
/// asserted evidence racing for one cell.
pub(crate) struct CFixpoint {
    /// LHS attribute list per rule (CFDs then MDs).
    lhs_of: Vec<Vec<AttrId>>,
    /// RHS (data-side) attribute per rule.
    rhs_of: Vec<AttrId>,
    /// attr → rules with that attr in their LHS.
    attr_to_rules: Vec<Vec<usize>>,
    /// Distinct LHS attribute count per rule (premise-complete threshold).
    lhs_distinct: Vec<u32>,
    /// Variable-CFD hash tables, indexed by rule id (None for others).
    /// Keys are LHS projections in the relation's own symbols — valid
    /// across continuations because the store's interner is append-only.
    h: Vec<Option<FxHashMap<Vec<Symbol>, VGroup>>>,
    /// count[t][ξ].
    count: Vec<Vec<u32>>,
    /// P[t]: variable CFDs t waits on.
    p: Vec<Vec<bool>>,
    /// Memoized MD witness lists (prefilled in parallel, invalidated on
    /// premise rewrites). Entries track the evolving relation, which only
    /// ever moves forward, so they stay valid across continuations.
    md_cache: MdMatchCache,
    /// All schema attributes, precomputed for the agreement check.
    all_attrs: Vec<AttrId>,
    /// Number of CFD rules (MD rule ids start here).
    n_cfds: usize,
    /// Tuples the fixpoint currently covers.
    n_tuples: usize,
}

impl CFixpoint {
    pub(crate) fn new(rules: &RuleSet, n_tuples: usize, self_match: bool) -> Self {
        let n_rules = rules.len();
        let n_attrs = rules.schema().arity();
        let mut lhs_of = Vec::with_capacity(n_rules);
        let mut rhs_of = Vec::with_capacity(n_rules);
        let mut h: Vec<Option<FxHashMap<Vec<Symbol>, VGroup>>> = Vec::with_capacity(n_rules);
        for c in rules.cfds() {
            assert!(!c.lhs().is_empty(), "CFD `{}` has an empty LHS", c.name());
            lhs_of.push(c.lhs().to_vec());
            rhs_of.push(c.rhs()[0]);
            h.push(c.is_variable().then(FxHashMap::default));
        }
        for m in rules.mds() {
            assert!(
                !m.premises().is_empty(),
                "MD `{}` has an empty premise",
                m.name()
            );
            lhs_of.push(m.lhs_attrs());
            rhs_of.push(m.rhs()[0].0);
            h.push(None);
        }
        let mut attr_to_rules = vec![Vec::new(); n_attrs];
        for (r, attrs) in lhs_of.iter().enumerate() {
            // An attribute may appear once per rule LHS (guaranteed for
            // CFDs; MD premises may repeat an attribute with different
            // predicates — count each attr once).
            let mut seen = attrs.clone();
            seen.sort_unstable();
            seen.dedup();
            for a in seen {
                attr_to_rules[a.index()].push(r);
            }
        }
        let lhs_distinct: Vec<u32> = lhs_of
            .iter()
            .map(|attrs| {
                let mut s = attrs.clone();
                s.sort_unstable();
                s.dedup();
                s.len() as u32
            })
            .collect();
        CFixpoint {
            lhs_of,
            rhs_of,
            attr_to_rules,
            lhs_distinct,
            h,
            count: vec![vec![0; n_rules]; n_tuples],
            p: vec![vec![false; n_rules]; n_tuples],
            md_cache: MdMatchCache::new(rules, n_tuples, self_match),
            all_attrs: rules.schema().attr_ids().collect(),
            n_cfds: rules.cfds().len(),
            n_tuples,
        }
    }

    /// Extend the per-tuple state for `n_new` appended tuples.
    pub(crate) fn grow(&mut self, n_new: usize) {
        let n_rules = self.lhs_of.len();
        for _ in 0..n_new {
            self.count.push(vec![0; n_rules]);
            self.p.push(vec![false; n_rules]);
        }
        self.md_cache.grow(n_new);
        self.n_tuples += n_new;
    }
}

/// Divergence watch for fixpoint continuations (`None` on full runs).
pub(crate) struct CGuard {
    /// Tuples below this id are settled: a write to any of them means the
    /// batch's cascade reached previously-settled repairs. Such writes are
    /// *kept* — a continuation is a legal application order, so they equal
    /// the from-scratch outcome — but the caller must refresh any
    /// structure pinned to the old post-`cRepair` state.
    pub settled: usize,
    /// Number of writes that landed on settled tuples.
    pub settled_writes: usize,
    /// Conflicting asserted evidence was observed racing for one cell —
    /// the one situation where `cRepair`'s outcome is order-dependent, so
    /// a continuation order may not reproduce the from-scratch order.
    /// The caller must escalate to a full reclean.
    pub hazard: bool,
}

impl CGuard {
    pub(crate) fn new(settled: usize) -> Self {
        CGuard {
            settled,
            settled_writes: 0,
            hazard: false,
        }
    }
}

struct State<'a> {
    rules: &'a RuleSet,
    dm: Option<&'a Relation>,
    idx: Option<&'a MasterIndex>,
    eta: f64,
    self_match: bool,
    /// CFD LHS patterns compiled to the relation's symbols (transient:
    /// recompiled per run, valid for the run's relation lineage).
    pats: CfdPatternSyms,
    fx: &'a mut CFixpoint,
    /// Queue of (tuple, rule) with pending flags (transient: empty at
    /// fixpoint, so not part of the persisted state).
    queue: VecDeque<(TupleId, usize)>,
    pending: Vec<Vec<bool>>,
    guard: Option<&'a mut CGuard>,
    report: FixReport,
}

/// Run `cRepair` in place on `d`. Returns the deterministic fixes applied.
///
/// `idx` must be built over the same `dm` and MDs when the rule set
/// contains MDs.
pub fn c_repair(
    d: &mut Relation,
    dm: Option<&Relation>,
    rules: &RuleSet,
    idx: Option<&MasterIndex>,
    cfg: &CleanConfig,
) -> FixReport {
    let mut fx = CFixpoint::new(rules, d.len(), cfg.self_match);
    c_run(d, dm, rules, idx, cfg, &mut fx, 0, None)
}

/// The engine behind [`c_repair`]: seed tuples `seed_from..` into `fx` and
/// drain the inference queue. With `seed_from == 0` over a fresh
/// [`CFixpoint`] this is a full run; with the persisted fixpoint of a
/// previous run it *continues* that fixpoint over an appended batch.
#[allow(clippy::too_many_arguments)] // the paper's full parameter set, one slot each
pub(crate) fn c_run(
    d: &mut Relation,
    dm: Option<&Relation>,
    rules: &RuleSet,
    idx: Option<&MasterIndex>,
    cfg: &CleanConfig,
    fx: &mut CFixpoint,
    seed_from: usize,
    guard: Option<&mut CGuard>,
) -> FixReport {
    assert!(
        rules.mds().is_empty() || (dm.is_some() && idx.is_some()),
        "rule set contains MDs: master data and a MasterIndex are required"
    );
    assert_eq!(
        fx.n_tuples,
        d.len(),
        "fixpoint state must cover the relation"
    );
    // Give every rule constant a stable symbol in the relation's interner,
    // then compile the pattern slots once: the per-tuple checks below are
    // pure symbol compares.
    ensure_rule_constants(d, rules);
    let pats = CfdPatternSyms::compile(rules, d);
    if let (Some(dm), Some(idx)) = (dm, idx) {
        // Fan the expensive verification out over the workers for every
        // seeded tuple `MDInfer` will interrogate from the initial
        // assertions; tuples unlocked later by the cascade are computed on
        // demand.
        let n_cfds = fx.n_cfds;
        let eta = cfg.eta;
        let (lhs_of, rhs_of) = (&fx.lhs_of, &fx.rhs_of);
        fx.md_cache.prefill_range(
            rules,
            d,
            dm,
            idx,
            cfg.effective_parallelism(),
            seed_from..d.len(),
            |m, t| {
                let tup = d.tuple(t);
                tup.cf(rhs_of[n_cfds + m]) < eta
                    && lhs_of[n_cfds + m].iter().all(|a| tup.cf(*a) >= eta)
            },
        );
    }
    let n_rules = rules.len();
    let mut st = State {
        rules,
        dm,
        idx,
        eta: cfg.eta,
        self_match: cfg.self_match,
        pats,
        fx,
        queue: VecDeque::new(),
        pending: vec![vec![false; n_rules]; d.len()],
        guard,
        report: FixReport::new(),
    };

    // Initialization (Fig 4, lines 2–6): seed counters from the cells that
    // are asserted up front. Reads the contiguous confidence columns.
    for i in seed_from..d.len() {
        let t = TupleId::from(i);
        for a in rules.schema().attr_ids() {
            if d.cf(t, a) >= st.eta {
                st.on_asserted(d, t, a);
            }
        }
    }

    // Main loop (Fig 4, lines 7–15).
    while let Some((t, r)) = st.queue.pop_front() {
        st.pending[t.index()][r] = false;
        if r < rules.cfds().len() {
            if rules.cfds()[r].is_variable() {
                st.v_cfd_infer(d, t, r);
            } else {
                st.c_cfd_infer(d, t, r);
            }
        } else {
            st.md_infer(d, t, r);
        }
    }
    let report = st.report;
    // This cache tracks the forward-only fixpoint relation: entries stay
    // current via invalidation-on-write and the state never rewinds, so
    // the volatile journal is dead weight that must not accumulate across
    // a long-lived session's continuations.
    fx.md_cache.forget_volatile();
    report
}

impl<'a> State<'a> {
    /// Procedure `update(t, A)` of Fig 5: `t[A]` has just become asserted.
    fn on_asserted(&mut self, d: &Relation, t: TupleId, a: AttrId) {
        let rule_ids: Vec<usize> = self.fx.attr_to_rules[a.index()].clone();
        for r in rule_ids {
            self.fx.count[t.index()][r] += 1;
            if self.fx.count[t.index()][r] == self.fx.lhs_distinct[r] {
                self.push(t, r);
            }
        }
        // Variable CFDs t waits on whose RHS is A: the newly asserted value
        // may become the group witness.
        for r in 0..self.fx.rhs_of.len() {
            if self.fx.p[t.index()][r] && self.fx.rhs_of[r] == a {
                self.fx.p[t.index()][r] = false;
                let key = d.tuple(t).project_syms(&self.fx.lhs_of[r]);
                let val_is_nil = self.fx.h[r]
                    .as_ref()
                    .and_then(|h| h.get(&key))
                    .is_none_or(|g| g.val.is_none());
                if val_is_nil {
                    self.push(t, r);
                }
            }
        }
    }

    fn push(&mut self, t: TupleId, r: usize) {
        if !self.pending[t.index()][r] {
            self.pending[t.index()][r] = true;
            self.queue.push_back((t, r));
        }
    }

    /// Write an unasserted cell, assert it at `η`, record the fix if the
    /// value changed, and propagate.
    fn assert_cell(
        &mut self,
        d: &mut Relation,
        t: TupleId,
        a: AttrId,
        new: Value,
        rule_name: &str,
    ) {
        if let Some(g) = self.guard.as_deref_mut() {
            if t.index() < g.settled {
                g.settled_writes += 1;
            }
        }
        let old = d.tuple(t).value(a).clone();
        let changed = old != new;
        let mark = if changed {
            FixMark::Deterministic
        } else {
            d.tuple(t).mark(a)
        };
        d.tuple_mut(t).set(a, new.clone(), self.eta, mark);
        self.fx.md_cache.invalidate(t, a);
        if changed {
            self.report.push(FixRecord {
                tuple: t,
                attr: a,
                old,
                new,
                mark: FixMark::Deterministic,
                rule: rule_name.to_string(),
            });
        }
        self.on_asserted(d, t, a);
    }

    /// Conflicting asserted evidence was observed for one cell: a
    /// continuation cannot promise the from-scratch winner, so the guard
    /// (when present) demands escalation.
    fn flag_hazard(&mut self) {
        if let Some(g) = self.guard.as_deref_mut() {
            g.hazard = true;
        }
    }

    /// Procedure `vCFDInfer` (Fig 5).
    fn v_cfd_infer(&mut self, d: &mut Relation, t: TupleId, r: usize) {
        let cfd = &self.rules.cfds()[r];
        if !self.pats.lhs_matches_attrs(r, &self.fx.lhs_of[r], d, t) {
            return;
        }
        let b = self.fx.rhs_of[r];
        let key = d.tuple(t).project_syms(&self.fx.lhs_of[r]);
        let rhs_asserted = d.tuple(t).cf(b) >= self.eta;
        let name = cfd.name().to_string();
        if rhs_asserted {
            // Branch (a): t's RHS may become the unique asserted witness.
            let val = d.tuple(t).value(b).clone();
            let group = self.fx.h[r]
                .as_mut()
                .expect("variable CFD")
                .entry(key)
                .or_default();
            let mut waiters = Vec::new();
            let mut conflict = false;
            if group.val.is_none() {
                group.val = Some(val.clone());
                waiters = std::mem::take(&mut group.list);
            } else if group.val.as_ref() != Some(&val) {
                // A second asserted witness with a *different* value means
                // the asserted evidence contradicts itself; the paper
                // assumes this cannot happen ("Notably, there exist no two
                // t1, t2 in Δ(ȳ) such that t1[B] ≠ t2[B] … if the
                // confidence placed by users is correct"). We keep the
                // first witness — and, on a continuation, escalate: which
                // witness is "first" is then order-dependent.
                conflict = true;
            }
            if conflict {
                self.flag_hazard();
            }
            for w in waiters {
                if d.tuple(w).cf(b) < self.eta {
                    self.assert_cell(d, w, b, val.clone(), &name);
                }
            }
        } else {
            let val = self.fx.h[r]
                .as_ref()
                .expect("variable CFD")
                .get(&key)
                .and_then(|g| g.val.clone());
            match val {
                Some(v) => self.assert_cell(d, t, b, v, &name),
                None => {
                    // Branch (c): wait for a witness.
                    self.fx.h[r]
                        .as_mut()
                        .expect("variable CFD")
                        .entry(d.tuple(t).project_syms(&self.fx.lhs_of[r]))
                        .or_default()
                        .list
                        .push(t);
                    self.fx.p[t.index()][r] = true;
                }
            }
        }
    }

    /// Procedure `cCFDInfer` (Fig 5).
    fn c_cfd_infer(&mut self, d: &mut Relation, t: TupleId, r: usize) {
        let cfd = &self.rules.cfds()[r];
        if !self.pats.lhs_matches_attrs(r, &self.fx.lhs_of[r], d, t) {
            return;
        }
        let a = self.fx.rhs_of[r];
        if d.tuple(t).cf(a) >= self.eta {
            // Deterministic fixes never overwrite asserted cells (§5.1
            // requires t[A].cf < η). On a continuation, a *rule-written*
            // cell holding a different constant is racing evidence: in a
            // from-scratch interleaving this rule might have fired first.
            if self.guard.is_some()
                && d.tuple(t).mark(a) == FixMark::Deterministic
                && d.tuple(t).value(a) != cfd.rhs_pattern()[0].as_const().expect("constant CFD")
            {
                self.flag_hazard();
            }
            return;
        }
        let want = cfd.rhs_pattern()[0]
            .as_const()
            .expect("constant CFD")
            .clone();
        let name = cfd.name().to_string();
        self.assert_cell(d, t, a, want, &name);
    }

    /// Procedure `MDInfer` (Fig 5).
    ///
    /// Witness choice: prefer a master tuple whose conclusion *disagrees*
    /// (a correction); fall back to an agreeing witness (a confirmation at
    /// confidence η) only when it is not value-identical to `t` — an
    /// identical tuple carries no independent evidence, which also makes
    /// self-matching (master = the data itself, §1/§9) sound: a tuple can
    /// never confirm or correct through its own copy.
    fn md_infer(&mut self, d: &mut Relation, t: TupleId, r: usize) {
        let md_idx = r - self.rules.cfds().len();
        let md = &self.rules.mds()[md_idx];
        let (e, f) = md.rhs()[0];
        let dm = self.dm.expect("MDs require master data");
        let idx = self.idx.expect("MDs require a MasterIndex");
        let rules = self.rules;
        let (self_match, eta) = (self.self_match, self.eta);
        if d.tuple(t).cf(e) >= self.eta {
            // On a continuation, a rule-written conclusion contradicted by
            // a usable witness is racing evidence (see `c_cfd_infer`).
            if self.guard.is_some() && d.tuple(t).mark(e) == FixMark::Deterministic {
                let all = self.fx.md_cache.matches(md_idx, rules, d, dm, idx, t);
                let disagree = all
                    .iter()
                    .copied()
                    .filter(|&s| !self_match || dm.tuple(s).cf(f) >= eta)
                    .any(|s| dm.tuple(s).value(f) != d.tuple(t).value(e));
                if disagree {
                    self.flag_hazard();
                }
            }
            return;
        }
        let witness = {
            // Witness lists come from the memoized (possibly prefilled-in-
            // parallel) cache; the cache already excludes the tuple's own
            // positional copy under self-matching.
            let all = self.fx.md_cache.matches(md_idx, rules, d, dm, idx, t);
            // The self-snapshot is dirty, not master data: only witnesses
            // whose conclusion cell is itself asserted carry evidence.
            let mut usable = all
                .iter()
                .copied()
                .filter(|&s| !self_match || dm.tuple(s).cf(f) >= eta);
            let correcting = usable
                .clone()
                .find(|&s| dm.tuple(s).value(f) != d.tuple(t).value(e));
            match correcting {
                Some(s) => Some(s),
                None => usable.find(|&s| {
                    dm.tuple(s).arity() != d.tuple(t).arity()
                        || !d.tuple(t).agrees_with(dm.tuple(s), &self.fx.all_attrs)
                }),
            }
        };
        let Some(witness) = witness else {
            return;
        };
        let new = dm.tuple(witness).value(f).clone();
        let name = md.name().to_string();
        self.assert_cell(d, t, e, new, &name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use uniclean_model::{Schema, Tuple};
    use uniclean_rules::parse_rules;

    fn cfg(eta: f64) -> CleanConfig {
        CleanConfig {
            eta,
            ..CleanConfig::default()
        }
    }

    /// Example 5.2's scenario: tuples t1, t2 of Fig. 1(b) with ϕ1, ϕ3 and ψ.
    fn example_setup() -> (Arc<Schema>, Arc<Schema>, RuleSet, Relation, Relation) {
        let tran = Schema::of_strings("tran", &["FN", "LN", "St", "city", "AC", "post", "phn"]);
        let card = Schema::of_strings("card", &["FN", "LN", "St", "city", "AC", "zip", "tel"]);
        let text = "cfd phi1: tran([AC=131] -> [city=Edi])\n\
                    cfd phi3: tran([city, phn] -> [St])\n\
                    md psi: tran[LN] = card[LN] AND tran[city] = card[city] AND tran[St] = card[St] AND tran[post] = card[zip] AND tran[FN] ~lev(3) card[FN] -> tran[phn] <=> card[tel]";
        let parsed = parse_rules(text, &tran, Some(&card)).unwrap();
        let rules = RuleSet::new(
            tran.clone(),
            Some(card.clone()),
            parsed.cfds,
            parsed.positive_mds,
            vec![],
        );

        // t1: city should be Edi (AC=131 asserted); St/post/LN asserted;
        // phn is wrong with cf 0.
        let mut t1 = Tuple::of_strs(
            &[
                "M.",
                "Smith",
                "10 Oak St",
                "Ldn",
                "131",
                "EH8 9LE",
                "9999999",
            ],
            0.0,
        );
        for (a, c) in [
            ("FN", 0.9),
            ("LN", 1.0),
            ("St", 0.9),
            ("city", 0.5),
            ("AC", 0.9),
            ("post", 0.9),
            ("phn", 0.0),
        ] {
            let id = tran.attr_id_or_panic(a);
            let v = t1.value(id).clone();
            t1.set(id, v, c, FixMark::Untouched);
        }
        // t2: same person, street unknown (low confidence), city asserted.
        let mut t2 = Tuple::of_strs(
            &[
                "Max",
                "Smith",
                "Po Box 25",
                "Edi",
                "131",
                "EH8 9LE",
                "3256778",
            ],
            0.0,
        );
        for (a, c) in [
            ("FN", 0.7),
            ("LN", 1.0),
            ("St", 0.5),
            ("city", 0.9),
            ("AC", 0.7),
            ("post", 0.9),
            ("phn", 0.8),
        ] {
            let id = tran.attr_id_or_panic(a);
            let v = t2.value(id).clone();
            t2.set(id, v, c, FixMark::Untouched);
        }
        let d = Relation::new(tran.clone(), vec![t1, t2]);
        let dm = Relation::new(
            card.clone(),
            vec![Tuple::of_strs(
                &[
                    "Mark",
                    "Smith",
                    "10 Oak St",
                    "Edi",
                    "131",
                    "EH8 9LE",
                    "3256778",
                ],
                1.0,
            )],
        );
        (tran, card, rules, d, dm)
    }

    #[test]
    fn example_5_2_cascade() {
        let (tran, _, rules, mut d, dm) = example_setup();
        let idx = MasterIndex::build(rules.mds(), &dm);
        let report = c_repair(&mut d, Some(&dm), &rules, Some(&idx), &cfg(0.8));

        let city = tran.attr_id_or_panic("city");
        let phn = tran.attr_id_or_panic("phn");
        let st = tran.attr_id_or_panic("St");

        // (3) ϕ1 fixes t1[city] := Edi at cf = η.
        assert_eq!(d.tuple(TupleId(0)).value(city), &Value::str("Edi"));
        assert_eq!(d.tuple(TupleId(0)).cf(city), 0.8);
        assert_eq!(d.tuple(TupleId(0)).mark(city), FixMark::Deterministic);
        // (4) ψ fixes t1[phn] from the master card.
        assert_eq!(d.tuple(TupleId(0)).value(phn), &Value::str("3256778"));
        // (5) ϕ3 copies the now-asserted street of t1 into t2.
        assert_eq!(d.tuple(TupleId(1)).value(st), &Value::str("10 Oak St"));
        assert_eq!(d.tuple(TupleId(1)).mark(st), FixMark::Deterministic);
        assert_eq!(report.count_final(FixMark::Deterministic), 3);
    }

    #[test]
    fn unasserted_premises_block_fixes() {
        let (tran, _, rules, mut d, dm) = example_setup();
        let idx = MasterIndex::build(rules.mds(), &dm);
        // Raise η beyond every premise confidence: nothing may fire.
        let report = c_repair(&mut d, Some(&dm), &rules, Some(&idx), &cfg(0.95));
        assert!(report.is_empty());
        assert_eq!(
            d.tuple(TupleId(0)).value(tran.attr_id_or_panic("city")),
            &Value::str("Ldn")
        );
    }

    #[test]
    fn asserted_cells_are_never_overwritten() {
        let tran = Schema::of_strings("tran", &["AC", "city"]);
        let parsed = parse_rules("cfd phi1: tran([AC=131] -> [city=Edi])", &tran, None).unwrap();
        let rules = RuleSet::cfds_only(tran.clone(), parsed.cfds);
        let mut t = Tuple::of_strs(&["131", "Ldn"], 0.9);
        // city is asserted (0.9 ≥ 0.8) even though it contradicts ϕ1.
        let city = tran.attr_id_or_panic("city");
        let v = t.value(city).clone();
        t.set(city, v, 0.9, FixMark::Untouched);
        let mut d = Relation::new(tran.clone(), vec![t]);
        let report = c_repair(&mut d, None, &rules, None, &cfg(0.8));
        assert!(report.is_empty());
        assert_eq!(d.tuple(TupleId(0)).value(city), &Value::str("Ldn"));
    }

    #[test]
    fn variable_cfd_waits_until_witness_appears() {
        // t0's B is unasserted; t1 arrives with an asserted B later in the
        // queue (its LHS asserts after t0 enters the waiting list).
        let s = Schema::of_strings("r", &["K", "B"]);
        let parsed = parse_rules("cfd fd: r([K] -> [B])", &s, None).unwrap();
        let rules = RuleSet::cfds_only(s.clone(), parsed.cfds);
        let k = s.attr_id_or_panic("K");
        let b = s.attr_id_or_panic("B");
        let mut t0 = Tuple::of_strs(&["k", "wrong"], 0.0);
        t0.set(k, Value::str("k"), 1.0, FixMark::Untouched);
        let mut t1 = Tuple::of_strs(&["k", "right"], 0.0);
        t1.set(k, Value::str("k"), 1.0, FixMark::Untouched);
        t1.set(b, Value::str("right"), 1.0, FixMark::Untouched);
        let mut d = Relation::new(s.clone(), vec![t0, t1]);
        let report = c_repair(&mut d, None, &rules, None, &cfg(0.8));
        assert_eq!(d.tuple(TupleId(0)).value(b), &Value::str("right"));
        assert_eq!(report.count_final(FixMark::Deterministic), 1);
    }

    #[test]
    fn variable_cfd_requires_unique_witness_key_match() {
        // Different keys never share witnesses.
        let s = Schema::of_strings("r", &["K", "B"]);
        let parsed = parse_rules("cfd fd: r([K] -> [B])", &s, None).unwrap();
        let rules = RuleSet::cfds_only(s.clone(), parsed.cfds);
        let b = s.attr_id_or_panic("B");
        let mk = |kv: &str, bv: &str, bcf: f64| {
            let mut t = Tuple::of_strs(&[kv, bv], 1.0);
            t.set(b, Value::str(bv), bcf, FixMark::Untouched);
            t
        };
        let mut d = Relation::new(s.clone(), vec![mk("k1", "x", 1.0), mk("k2", "y", 0.0)]);
        let report = c_repair(&mut d, None, &rules, None, &cfg(0.8));
        assert!(report.is_empty());
        assert_eq!(d.tuple(TupleId(1)).value(b), &Value::str("y"));
    }

    #[test]
    fn standardization_rule_cannot_fire_deterministically() {
        // ϕ4: FN=Bob → FN=Robert needs FN asserted on the left, which
        // asserts the very cell the fix would overwrite (§5.1 forbids it).
        let s = Schema::of_strings("r", &["FN"]);
        let parsed = parse_rules("cfd phi4: r([FN=Bob] -> [FN=Robert])", &s, None).unwrap();
        let rules = RuleSet::cfds_only(s.clone(), parsed.cfds);
        let mut d = Relation::new(s, vec![Tuple::of_strs(&["Bob"], 1.0)]);
        let report = c_repair(&mut d, None, &rules, None, &cfg(0.8));
        assert!(report.is_empty());
    }

    #[test]
    fn result_is_independent_of_rule_order() {
        // §5.2: "applying the rules in different orders yields the same set
        // of deterministic fixes".
        let (_, card, _, d0, dm) = example_setup();
        let tran = d0.schema().clone();
        let texts = [
            "cfd phi1: tran([AC=131] -> [city=Edi])\ncfd phi3: tran([city, phn] -> [St])\nmd psi: tran[LN] = card[LN] AND tran[city] = card[city] AND tran[St] = card[St] AND tran[post] = card[zip] AND tran[FN] ~lev(3) card[FN] -> tran[phn] <=> card[tel]",
            "md psi: tran[LN] = card[LN] AND tran[city] = card[city] AND tran[St] = card[St] AND tran[post] = card[zip] AND tran[FN] ~lev(3) card[FN] -> tran[phn] <=> card[tel]\ncfd phi3: tran([city, phn] -> [St])\ncfd phi1: tran([AC=131] -> [city=Edi])",
        ];
        let mut snapshots = Vec::new();
        for text in texts {
            let parsed = parse_rules(text, &tran, Some(&card)).unwrap();
            let rules = RuleSet::new(
                tran.clone(),
                Some(card.clone()),
                parsed.cfds,
                parsed.positive_mds,
                vec![],
            );
            let idx = MasterIndex::build(rules.mds(), &dm);
            let mut d = d0.clone();
            c_repair(&mut d, Some(&dm), &rules, Some(&idx), &cfg(0.8));
            let snap: Vec<Value> = d
                .rows()
                .flat_map(|t| t.cells().map(|c| c.value.clone()))
                .collect();
            snapshots.push(snap);
        }
        assert_eq!(snapshots[0], snapshots[1]);
    }

    #[test]
    fn empty_rules_do_nothing() {
        let s = Schema::of_strings("r", &["A"]);
        let rules = RuleSet::cfds_only(s.clone(), vec![]);
        let mut d = Relation::new(s, vec![Tuple::of_strs(&["x"], 1.0)]);
        let report = c_repair(&mut d, None, &rules, None, &cfg(0.8));
        assert!(report.is_empty());
    }
}
