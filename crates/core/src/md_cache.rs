//! Memoized MD premise verification — the parallel "chunk" stage of the
//! chunk–merge–apply design (see [`crate::parallel`]).
//!
//! `MasterIndex::matches_excluding` — candidate generation plus full
//! premise verification against master data — dominates the running time
//! of `cRepair` and `eRepair` on MD-heavy workloads, and it is a pure
//! function of one data tuple's premise cells (master data never changes
//! within a phase). [`MdMatchCache`] exploits both facts:
//!
//! * [`MdMatchCache::prefill`] computes the witness lists for every tuple
//!   a phase is about to interrogate, fanned out over scoped workers and
//!   merged back in tuple-id order;
//! * [`MdMatchCache::matches`] serves the sequential engine — a cache hit
//!   returns the precomputed list, a miss (never prefilled, or invalidated
//!   by a repair) recomputes on the spot, exactly as the unparallelized
//!   code would;
//! * [`MdMatchCache::invalidate`] drops entries whose premise cells a fix
//!   just rewrote, keeping the cache transparent: the served lists are
//!   always equal to a direct `matches_excluding` call on the current
//!   relation state, so results are bit-identical at every thread count.

use uniclean_model::{AttrId, Relation, TupleId};
use uniclean_rules::RuleSet;

use crate::master_index::{MasterIndex, ProbeScratch};
use crate::parallel::map_chunks;

/// Per-(MD, tuple) verified witness lists with premise-based invalidation.
///
/// A cache can outlive one phase run: [`RepairState`](crate::RepairState)
/// keeps the `eRepair` cache warm across `clean_delta` calls, where every
/// run restarts from the same post-`cRepair` relation. Entries computed
/// *before* any write are valid for that base state and survive; entries
/// recomputed *after* a write reflect a mid-run state, so they are tracked
/// as volatile and dropped by [`MdMatchCache::begin_run`] before the next
/// run replays the same fixes.
pub(crate) struct MdMatchCache {
    /// `entries[md][tuple]`: `None` = not computed (or invalidated).
    entries: Vec<Vec<Option<Box<[TupleId]>>>>,
    /// `attr.index()` → MDs whose premise reads that attribute.
    attr_to_mds: Vec<Vec<usize>>,
    /// Self-matching mode: exclude the tuple's own positional master copy.
    exclude_self: bool,
    /// `(md, tuple)` slots invalidated since the last `begin_run`; refills
    /// of these reflect mid-run states, not the run's base state.
    volatile: Vec<(usize, TupleId)>,
    /// Probe-side buffers and symbol-keyed profile cache for the
    /// sequential recompute path; cleared on [`Self::begin_run`] because a
    /// rewound run may re-intern different values behind the same symbols.
    scratch: ProbeScratch,
    /// Reusable witness buffer for the sequential miss path — recomputes
    /// happen per invalidated cell, so a per-miss `Vec` allocation adds up
    /// on repair-heavy runs.
    miss_buf: Vec<TupleId>,
}

impl MdMatchCache {
    pub(crate) fn new(rules: &RuleSet, n_tuples: usize, exclude_self: bool) -> Self {
        let n_mds = rules.mds().len();
        let n_attrs = rules.schema().arity();
        let mut attr_to_mds = vec![Vec::new(); n_attrs];
        for (m, md) in rules.mds().iter().enumerate() {
            let mut attrs: Vec<AttrId> = md.premises().iter().map(|p| p.attr).collect();
            attrs.sort_unstable();
            attrs.dedup();
            for a in attrs {
                attr_to_mds[a.index()].push(m);
            }
        }
        MdMatchCache {
            entries: vec![vec![None; n_tuples]; n_mds],
            attr_to_mds,
            exclude_self,
            volatile: Vec::new(),
            scratch: ProbeScratch::new(),
            miss_buf: Vec::new(),
        }
    }

    /// Extend the cache with empty slots for `n_new` appended tuples.
    pub(crate) fn grow(&mut self, n_new: usize) {
        for per_md in &mut self.entries {
            per_md.extend(std::iter::repeat_with(|| None).take(n_new));
        }
    }

    /// Start a fresh run from the cache's base state: drop every entry
    /// whose slot was invalidated (and possibly refilled at a mid-run
    /// state) since the previous `begin_run`. Entries never invalidated
    /// still describe the base state and stay warm.
    pub(crate) fn begin_run(&mut self) {
        for (m, t) in self.volatile.drain(..) {
            self.entries[m][t.index()] = None;
        }
        // A fresh run restarts from the base relation state; symbols
        // interned mid-run by the previous replay may differ, so the
        // symbol-keyed probe cache must not carry over.
        self.scratch.reset();
    }

    /// Discard the volatile journal *without* dropping entries — for
    /// caches that track a forward-only relation (the `cRepair` fixpoint's
    /// cache): every entry is kept current by invalidation-on-write, the
    /// state never rewinds, so the journal serves no purpose and must not
    /// accumulate across a long-lived session.
    pub(crate) fn forget_volatile(&mut self) {
        self.volatile.clear();
    }

    #[inline]
    fn exclude(&self, t: TupleId) -> Option<TupleId> {
        self.exclude_self.then_some(t)
    }

    /// Fan the expensive verification out over `threads` workers for every
    /// `(md, tuple)` pair `want` selects, merging results in tuple-id
    /// order. Pairs not selected (or later invalidated) fall back to the
    /// sequential recompute in [`Self::matches`].
    pub(crate) fn prefill(
        &mut self,
        rules: &RuleSet,
        d: &Relation,
        dm: &Relation,
        idx: &MasterIndex,
        threads: usize,
        want: impl Fn(usize, TupleId) -> bool + Sync,
    ) {
        self.prefill_range(rules, d, dm, idx, threads, 0..d.len(), want);
    }

    /// [`Self::prefill`] restricted to the tuple-id range `span` — the
    /// incremental path only prefills the appended batch.
    #[allow(clippy::too_many_arguments)] // prefill's parameter set plus the span
    pub(crate) fn prefill_range(
        &mut self,
        rules: &RuleSet,
        d: &Relation,
        dm: &Relation,
        idx: &MasterIndex,
        threads: usize,
        span: std::ops::Range<usize>,
        want: impl Fn(usize, TupleId) -> bool + Sync,
    ) {
        if threads <= 1 || rules.mds().is_empty() {
            return;
        }
        let exclude_self = self.exclude_self;
        let n_mds = rules.mds().len();
        let base = span.start;
        // chunk: one worker per tuple range, producing per-tuple rows of
        // witness lists; merge: move rows back in chunk (= tuple-id) order.
        // Slots already warm (a cross-call cache) are skipped — their
        // entries equal what this recomputation would produce.
        let entries = &self.entries;
        let chunks = map_chunks(span.len(), threads, |range| {
            let mut scratch = ProbeScratch::new();
            let mut buf = Vec::new();
            let mut rows: Vec<Vec<Option<Box<[TupleId]>>>> = Vec::with_capacity(range.len());
            for i in range {
                let t = TupleId::from(base + i);
                let mut row: Vec<Option<Box<[TupleId]>>> = vec![None; n_mds];
                for (m, md) in rules.mds().iter().enumerate() {
                    if entries[m][t.index()].is_some() || !want(m, t) {
                        continue;
                    }
                    idx.matches_into(
                        m,
                        md,
                        d.tuple(t),
                        dm,
                        exclude_self.then_some(t),
                        &mut scratch,
                        &mut buf,
                    );
                    row[m] = Some(buf.as_slice().into());
                }
                rows.push(row);
            }
            rows
        });
        let mut i = base;
        for chunk in chunks {
            for row in chunk {
                for (m, entry) in row.into_iter().enumerate() {
                    if entry.is_some() {
                        self.entries[m][i] = entry;
                    }
                }
                i += 1;
            }
        }
    }

    /// The verified witness list for `(md_idx, t)` against the current
    /// relation state; recomputes on a miss.
    pub(crate) fn matches(
        &mut self,
        md_idx: usize,
        rules: &RuleSet,
        d: &Relation,
        dm: &Relation,
        idx: &MasterIndex,
        t: TupleId,
    ) -> &[TupleId] {
        let exclude = self.exclude(t);
        let slot = &mut self.entries[md_idx][t.index()];
        if slot.is_none() {
            let md = &rules.mds()[md_idx];
            self.miss_buf.clear();
            idx.matches_into(
                md_idx,
                md,
                d.tuple(t),
                dm,
                exclude,
                &mut self.scratch,
                &mut self.miss_buf,
            );
            *slot = Some(self.miss_buf.as_slice().into());
        }
        slot.as_deref().expect("filled above")
    }

    /// Cell `(t, a)` was just rewritten: drop every witness list whose
    /// premise read it.
    pub(crate) fn invalidate(&mut self, t: TupleId, a: AttrId) {
        for &m in &self.attr_to_mds[a.index()] {
            self.entries[m][t.index()] = None;
            self.volatile.push((m, t));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniclean_model::{Schema, Tuple, Value};
    use uniclean_rules::parse_rules;

    fn setup() -> (RuleSet, Relation, Relation, MasterIndex) {
        let tran = Schema::of_strings("tran", &["LN", "city", "phn"]);
        let card = Schema::of_strings("card", &["LN", "city", "tel"]);
        let text =
            "md m: tran[LN] = card[LN] AND tran[city] = card[city] -> tran[phn] <=> card[tel]";
        let parsed = parse_rules(text, &tran, Some(&card)).unwrap();
        let rules = RuleSet::new(
            tran.clone(),
            Some(card.clone()),
            vec![],
            parsed.positive_mds,
            vec![],
        );
        let d = Relation::new(
            tran,
            vec![
                Tuple::of_strs(&["Smith", "Edi", "000"], 0.5),
                Tuple::of_strs(&["Brady", "Ldn", "111"], 0.5),
                Tuple::of_strs(&["Smith", "Ldn", "222"], 0.5),
            ],
        );
        let dm = Relation::new(
            card,
            vec![
                Tuple::of_strs(&["Smith", "Edi", "911"], 1.0),
                Tuple::of_strs(&["Brady", "Ldn", "922"], 1.0),
            ],
        );
        let idx = MasterIndex::build(rules.mds(), &dm);
        (rules, d, dm, idx)
    }

    #[test]
    fn lazy_matches_equal_direct_computation() {
        let (rules, d, dm, idx) = setup();
        let mut cache = MdMatchCache::new(&rules, d.len(), false);
        let mut scratch = crate::master_index::ProbeScratch::new();
        let mut want = Vec::new();
        for t in d.ids() {
            idx.matches_into(
                0,
                &rules.mds()[0],
                d.tuple(t),
                &dm,
                None,
                &mut scratch,
                &mut want,
            );
            let got = cache.matches(0, &rules, &d, &dm, &idx, t);
            assert_eq!(got, want.as_slice(), "tuple {t:?}");
        }
    }

    #[test]
    fn prefill_matches_lazy_path() {
        let (rules, d, dm, idx) = setup();
        let mut eager = MdMatchCache::new(&rules, d.len(), false);
        eager.prefill(&rules, &d, &dm, &idx, 2, |_, _| true);
        let mut lazy = MdMatchCache::new(&rules, d.len(), false);
        for t in d.ids() {
            assert_eq!(
                eager.matches(0, &rules, &d, &dm, &idx, t).to_vec(),
                lazy.matches(0, &rules, &d, &dm, &idx, t).to_vec(),
            );
        }
    }

    #[test]
    fn invalidation_tracks_premise_rewrites() {
        let (rules, mut d, dm, idx) = setup();
        let city = d.schema().attr_id_or_panic("city");
        let phn = d.schema().attr_id_or_panic("phn");
        let mut cache = MdMatchCache::new(&rules, d.len(), false);

        // t2 (Smith, Ldn) matches nothing; repair city → Edi and it must
        // match master row 0 — but only if the cache was invalidated.
        let t = TupleId(2);
        assert!(cache.matches(0, &rules, &d, &dm, &idx, t).is_empty());
        d.tuple_mut(t)
            .set(city, Value::str("Edi"), 0.5, Default::default());
        cache.invalidate(t, city);
        assert_eq!(cache.matches(0, &rules, &d, &dm, &idx, t), &[TupleId(0)]);

        // Rewriting a non-premise attribute must keep the entry.
        d.tuple_mut(t)
            .set(phn, Value::str("999"), 0.5, Default::default());
        cache.invalidate(t, phn);
        assert_eq!(cache.matches(0, &rules, &d, &dm, &idx, t), &[TupleId(0)]);
    }
}
