//! The owned, reusable cleaning session: [`Cleaner`], built through
//! [`Cleaner::builder`], backed by a persistent [`PreparedCleaner`].
//!
//! The paper describes *one* unified process over record matching (MDs)
//! and repairing (CFDs); this module makes the public API match. A single
//! phase loop drives `cRepair → eRepair → hRepair` regardless of where
//! master data comes from — an external relation (§1, Fig 1), the data
//! itself via per-phase snapshots (§9's master-free adaptation), or
//! nowhere (CFD-only repairing). The [`MasterSource`] enum picks the
//! variant; the loop body is shared.
//!
//! The engine is layered in two:
//!
//! * [`PreparedCleaner`] — everything that depends only on the rules,
//!   the master data and the configuration: normalized rules, the §5.2
//!   master access paths ([`MasterIndex`]). Built
//!   **once** per session by [`CleanerBuilder::build`] and shared
//!   (`Arc`) by every call — a service pays rule/index preparation once,
//!   not per request.
//! * [`RepairState`](crate::RepairState) — everything that depends on one
//!   relation: the working data, the `cRepair` fixpoint, the 2-in-1
//!   structures and warm caches. Created by [`Cleaner::begin`] and evolved
//!   in place by [`Cleaner::clean_delta`] as batches arrive.
//!
//! Construction is fallible and typed: every misuse that used to panic
//! (`expect`/`assert!` in `UniClean::new` and `clean_without_master`)
//! is a [`CleanError`] from [`CleanerBuilder::build`]. A built `Cleaner`
//! owns `Arc`s of its rules and master data, so it can live in a service
//! and be shared across threads for many `clean` calls.
//!
//! Instrumentation flows through one surface: [`PhaseObserver`] receives
//! per-phase timing and fix counts as the run progresses, and the same
//! [`PhaseStats`] records land in [`CleanResult::phases`].

use std::sync::Arc;
use std::time::Instant;

use uniclean_model::{repair_cost, Relation};
use uniclean_rules::{satisfies_all, RuleSet};

use crate::config::CleanConfig;
use crate::crepair::{c_run, CFixpoint};
use crate::erepair::e_run;
use crate::error::CleanError;
use crate::fix::FixReport;
use crate::hrepair::h_repair;
use crate::incremental::StateCapture;
use crate::master_index::MasterIndex;
use crate::md_cache::MdMatchCache;
use crate::phase::Phase;
use crate::pipeline::CleanResult;
use crate::two_in_one::TwoInOne;

/// Where the master relation `Dm` comes from.
#[derive(Clone, Debug, Default)]
pub enum MasterSource {
    /// An external, correct master relation (the paper's main setting,
    /// §2.1: master data is "consistent and accurate").
    External(Arc<Relation>),
    /// Master-free mode (§1/§9): before each phase a snapshot of the
    /// current repair state is rendered into the MDs' master schema, so
    /// matches are found *within* `D` and each phase sees the previous
    /// phase's repairs. The rule set must be authored with a master schema
    /// that mirrors the data schema positionally (e.g. a renamed clone).
    /// Deterministic fixes lose their master-data warranty in this mode.
    SelfSnapshot,
    /// No master data: CFD-only repairing (the experiments' `Uni(CFD)`).
    /// Building a cleaner whose rules contain MDs over this source fails
    /// with [`CleanError::MdsWithoutMaster`].
    #[default]
    None,
}

impl MasterSource {
    /// Convenience constructor accepting either a `Relation` or an
    /// `Arc<Relation>`.
    pub fn external(dm: impl Into<Arc<Relation>>) -> Self {
        MasterSource::External(dm.into())
    }
}

/// Timing and fix-count record of one executed phase.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhaseStats {
    /// Which phase ran.
    pub phase: Phase,
    /// Wall-clock seconds the phase took (excluding snapshot/index
    /// construction for [`MasterSource::SelfSnapshot`], matching how the
    /// paper reports per-algorithm times).
    pub seconds: f64,
    /// Fixes the phase applied.
    pub fixes: usize,
}

/// Streaming instrumentation hook: benches, progress bars and telemetry
/// all consume this one surface instead of poking at hardcoded fields.
pub trait PhaseObserver {
    /// A phase is about to run.
    fn on_phase_start(&mut self, _phase: Phase) {}
    /// A phase finished with the given stats.
    fn on_phase_end(&mut self, _stats: &PhaseStats) {}
}

/// Observer that ignores everything (the default for [`Cleaner::clean`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoOpObserver;

impl PhaseObserver for NoOpObserver {}

/// Observer that records every phase's stats — the plain "give me the
/// timings" consumer the bench harness uses.
#[derive(Clone, Debug, Default)]
pub struct PhaseTimings {
    /// Stats in execution order.
    pub stats: Vec<PhaseStats>,
}

impl PhaseObserver for PhaseTimings {
    fn on_phase_end(&mut self, stats: &PhaseStats) {
        self.stats.push(*stats);
    }
}

impl PhaseTimings {
    /// Seconds per phase in fixed (c, e, h) order; phases that did not run
    /// report 0.
    pub fn seconds(&self) -> [f64; 3] {
        seconds_by_phase(&self.stats)
    }
}

/// Map phase stats into fixed (c, e, h) slots — the shared backing of
/// [`PhaseTimings::seconds`] and [`CleanResult::phase_seconds`].
pub(crate) fn seconds_by_phase(stats: &[PhaseStats]) -> [f64; 3] {
    let mut out = [0.0; 3];
    for s in stats {
        out[s.phase.index()] = s.seconds;
    }
    out
}

/// The immutable, per-session half of the engine: normalized rules, master
/// source, validated configuration and prebuilt §5.2 master access paths.
/// Constructed **once** by [`CleanerBuilder::build`] and reused —
/// unchanged — by every [`Cleaner::clean`], [`Cleaner::begin`] and
/// [`Cleaner::clean_delta`] call.
pub struct PreparedCleaner {
    rules: Arc<RuleSet>,
    master: MasterSource,
    /// Prebuilt §5.2 access paths for [`MasterSource::External`]; the
    /// self-snapshot mode rebuilds per phase instead.
    index: Option<MasterIndex>,
    config: CleanConfig,
}

impl PreparedCleaner {
    /// The rule set `Θ = Σ ∪ Γ`.
    pub fn rules(&self) -> &Arc<RuleSet> {
        &self.rules
    }

    /// The master source this session cleans against.
    pub fn master(&self) -> &MasterSource {
        &self.master
    }

    /// The prebuilt master access paths ([`MasterSource::External`] only).
    pub fn master_index(&self) -> Option<&MasterIndex> {
        self.index.as_ref()
    }

    /// The validated configuration (with `self_match` already set to match
    /// the master source).
    pub fn config(&self) -> &CleanConfig {
        &self.config
    }

    /// The `(Dm, index)` pair phases see under [`MasterSource::External`]
    /// and [`MasterSource::None`] (the per-phase self-snapshot is handled
    /// by the phase loop itself).
    pub(crate) fn external_view(&self) -> (Option<&Relation>, Option<&MasterIndex>) {
        match &self.master {
            MasterSource::External(m) => (Some(m), self.index.as_ref()),
            _ => (None, None),
        }
    }

    /// Render the current repair state into the MDs' master schema
    /// (self-snapshot mode only; `build` guarantees the schema exists and
    /// mirrors the data schema). A columnar-store clone — no row tuples
    /// are materialized.
    pub(crate) fn snapshot(&self, work: &Relation) -> Relation {
        let master_schema = self
            .rules
            .master_schema()
            .expect("Cleaner::build verified the self-snapshot schema")
            .clone();
        Relation::with_schema(master_schema, work)
    }

    /// The master view the §3.2 acceptance check runs against, given the
    /// final repair state. Returns a borrow for external masters and an
    /// owned snapshot (stored in `storage`) otherwise.
    pub(crate) fn acceptance_master<'a>(
        &'a self,
        work: &Relation,
        storage: &'a mut Option<Relation>,
    ) -> &'a Relation {
        match &self.master {
            MasterSource::External(m) => m,
            MasterSource::SelfSnapshot => storage.insert(self.snapshot(work)),
            MasterSource::None => storage.insert(Relation::empty(self.rules.schema().clone())),
        }
    }
}

/// The shared phase loop: run the pipeline prefix on `work`, streaming
/// stats to `observer`. With `capture`, the per-relation structures a
/// [`RepairState`](crate::RepairState) persists are stashed as the run
/// passes through them — the captured run is bit-identical to an
/// uncaptured one (capturing only clones).
pub(crate) fn run_phases(
    prepared: &PreparedCleaner,
    work: &mut Relation,
    phase: Phase,
    observer: &mut dyn PhaseObserver,
    mut capture: Option<&mut StateCapture>,
) -> (FixReport, Vec<PhaseStats>) {
    let rules = &prepared.rules;
    let cfg = &prepared.config;
    let mut report = FixReport::new();
    let mut phases = Vec::with_capacity(phase.through().len());

    for &kind in phase.through() {
        // Per-phase master view. External masters reuse the access
        // paths built at `build` time; the self-snapshot re-renders the
        // current repair state so each phase sees the previous phase's
        // fixes (the §9 interleaving).
        let snapshot_storage;
        let (dm, index): (Option<&Relation>, Option<&MasterIndex>) = match &prepared.master {
            MasterSource::External(m) => (Some(m), prepared.index.as_ref()),
            MasterSource::SelfSnapshot => {
                let snap = prepared.snapshot(work);
                let idx = MasterIndex::build_parallel(
                    rules.mds(),
                    &snap,
                    cfg.interning,
                    cfg.effective_parallelism(),
                );
                snapshot_storage = (snap, idx);
                (Some(&snapshot_storage.0), Some(&snapshot_storage.1))
            }
            MasterSource::None => (None, None),
        };

        observer.on_phase_start(kind);
        let fixes_before = report.len();
        let started = Instant::now();
        let fixes = match kind {
            Phase::CRepair => {
                let mut fx = CFixpoint::new(rules, work.len(), cfg.self_match);
                let rep = c_run(work, dm, rules, index, cfg, &mut fx, 0, None);
                if let Some(cap) = capture.as_deref_mut() {
                    cap.cfix = Some(fx);
                    cap.post_c = Some(work.clone());
                }
                rep
            }
            Phase::ERepair => {
                let mut structure =
                    TwoInOne::build_with(rules, work, cfg.interning, cfg.effective_parallelism());
                let mut cache = MdMatchCache::new(rules, work.len(), cfg.self_match);
                if let Some(cap) = capture.as_deref_mut() {
                    cap.two = Some(structure.clone());
                }
                let rep = e_run(work, dm, rules, index, cfg, &mut structure, &mut cache);
                if let Some(cap) = capture.as_deref_mut() {
                    cap.e_cache = Some(cache);
                }
                rep
            }
            Phase::HRepair => h_repair(work, dm, rules, index, cfg),
        };
        report.extend(fixes);
        let stats = PhaseStats {
            phase: kind,
            seconds: started.elapsed().as_secs_f64(),
            fixes: report.len() - fixes_before,
        };
        observer.on_phase_end(&stats);
        phases.push(stats);
    }
    (report, phases)
}

/// An owned, reusable cleaning session: a shared [`PreparedCleaner`]
/// behind an `Arc`, cheap to clone across threads.
///
/// ```
/// use std::sync::Arc;
/// use uniclean_core::{Cleaner, CleanConfig, MasterSource, Phase};
/// use uniclean_model::{Relation, Schema, Tuple};
/// use uniclean_rules::{parse_rules, RuleSet};
///
/// let tran = Schema::of_strings("tran", &["AC", "city"]);
/// let parsed = parse_rules("cfd phi1: tran([AC=131] -> [city=Edi])", &tran, None).unwrap();
/// let rules = RuleSet::cfds_only(tran.clone(), parsed.cfds);
///
/// let cleaner = Cleaner::builder()
///     .rules(rules)
///     .master(MasterSource::None)
///     .config(CleanConfig::default())
///     .build()
///     .unwrap();
/// let dirty = Relation::new(tran, vec![Tuple::of_strs(&["131", "Ldn"], 0.5)]);
/// let result = cleaner.clean(&dirty, Phase::Full);
/// assert!(result.consistent);
/// ```
pub struct Cleaner {
    prepared: Arc<PreparedCleaner>,
}

impl std::fmt::Debug for Cleaner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Summaries only: a service logging `{:?}` must not dump a
        // multi-thousand-tuple master relation.
        let prepared = &self.prepared;
        let master = match &prepared.master {
            MasterSource::External(dm) => {
                format!("External({}, {} tuples)", dm.schema().name(), dm.len())
            }
            MasterSource::SelfSnapshot => "SelfSnapshot".to_string(),
            MasterSource::None => "None".to_string(),
        };
        f.debug_struct("Cleaner")
            .field("schema", &prepared.rules.schema().name())
            .field("cfds", &prepared.rules.cfds().len())
            .field("mds", &prepared.rules.mds().len())
            .field("master", &master)
            .field("config", &prepared.config)
            .finish_non_exhaustive()
    }
}

impl Cleaner {
    /// Start building a session.
    pub fn builder() -> CleanerBuilder {
        CleanerBuilder::default()
    }

    /// The persistent, per-session half of the engine.
    pub fn prepared(&self) -> &Arc<PreparedCleaner> {
        &self.prepared
    }

    /// The rule set `Θ = Σ ∪ Γ`.
    pub fn rules(&self) -> &Arc<RuleSet> {
        &self.prepared.rules
    }

    /// The master source this session cleans against.
    pub fn master(&self) -> &MasterSource {
        &self.prepared.master
    }

    /// The validated configuration (with `self_match` already set to match
    /// the master source).
    pub fn config(&self) -> &CleanConfig {
        &self.prepared.config
    }

    /// Clean `d`, running phases up to and including `phase`.
    pub fn clean(&self, d: &Relation, phase: Phase) -> CleanResult {
        self.clean_observed(d, phase, &mut NoOpObserver)
    }

    /// [`Cleaner::clean`] with a [`PhaseObserver`] receiving per-phase
    /// timing and fix counts as the run progresses.
    pub fn clean_observed(
        &self,
        d: &Relation,
        phase: Phase,
        observer: &mut dyn PhaseObserver,
    ) -> CleanResult {
        let mut work = d.clone();
        let (report, phases) = run_phases(&self.prepared, &mut work, phase, observer, None);

        // Acceptance (§3.2): `Dr ⊨ Σ` and `(Dr, Dm) ⊨ Γ`, checked against
        // whatever master view the final state implies.
        let rules = &self.prepared.rules;
        let mut storage = None;
        let dm_final = self.prepared.acceptance_master(&work, &mut storage);
        let consistent = satisfies_all(rules.cfds(), rules.mds(), &work, dm_final);
        let cost = repair_cost(d, &work);
        CleanResult {
            repaired: work,
            report,
            cost,
            consistent,
            phases,
        }
    }
}

/// Configures and validates a [`Cleaner`].
#[derive(Clone, Default)]
pub struct CleanerBuilder {
    rules: Option<Arc<RuleSet>>,
    master: MasterSource,
    config: CleanConfig,
}

impl CleanerBuilder {
    /// The rule set to clean with (required). Accepts a `RuleSet` or a
    /// shared `Arc<RuleSet>`.
    pub fn rules(mut self, rules: impl Into<Arc<RuleSet>>) -> Self {
        self.rules = Some(rules.into());
        self
    }

    /// Where master data comes from (default: [`MasterSource::None`]).
    pub fn master(mut self, master: MasterSource) -> Self {
        self.master = master;
        self
    }

    /// Thresholds and limits (default: [`CleanConfig::default`]).
    /// `self_match` is forced on for [`MasterSource::SelfSnapshot`];
    /// otherwise the flag is honored as given (a caller supplying its own
    /// data snapshot as an External master keeps the self-exclusion guard).
    pub fn config(mut self, config: CleanConfig) -> Self {
        self.config = config;
        self
    }

    /// Worker threads for the parallel phase internals (shorthand for
    /// setting [`CleanConfig::parallelism`] after [`Self::config`]).
    /// `1` runs the exact single-threaded path; any setting produces
    /// bit-identical output — see [`crate::parallel`].
    pub fn parallelism(mut self, threads: std::num::NonZeroUsize) -> Self {
        self.config.parallelism = Some(threads);
        self
    }

    /// Validate everything and assemble the session.
    ///
    /// Errors (never panics on user input):
    /// * [`CleanError::MissingRules`] — no rule set given;
    /// * [`CleanError::Config`] — thresholds out of range, non-finite, or
    ///   zero limits;
    /// * [`CleanError::MdsWithoutMaster`] — MDs over [`MasterSource::None`];
    /// * [`CleanError::MasterSchemaMismatch`] — external master relation
    ///   whose schema differs from the rule set's master schema;
    /// * [`CleanError::MissingSelfSchema`] / [`CleanError::SelfSchemaMismatch`]
    ///   — self-snapshot without a positionally mirroring master schema.
    pub fn build(self) -> Result<Cleaner, CleanError> {
        let rules = self.rules.ok_or(CleanError::MissingRules)?;
        let mut config = self.config;
        // SelfSnapshot requires the self-exclusion guard; for the other
        // sources the caller's flag is honored (a caller may supply its own
        // data snapshot as an External master and still want the guard).
        if matches!(self.master, MasterSource::SelfSnapshot) {
            config.self_match = true;
        }
        config.validate()?;

        match &self.master {
            MasterSource::External(dm) => {
                if let Some(expected) = rules.master_schema() {
                    if expected.as_ref() != dm.schema().as_ref() {
                        return Err(CleanError::MasterSchemaMismatch {
                            expected: expected.to_string(),
                            found: dm.schema().to_string(),
                        });
                    }
                }
            }
            MasterSource::SelfSnapshot => {
                let master_schema = rules.master_schema().ok_or(CleanError::MissingSelfSchema)?;
                if master_schema.arity() != rules.schema().arity() {
                    return Err(CleanError::SelfSchemaMismatch {
                        data_arity: rules.schema().arity(),
                        master_arity: master_schema.arity(),
                    });
                }
            }
            MasterSource::None => {
                if !rules.mds().is_empty() {
                    return Err(CleanError::MdsWithoutMaster);
                }
            }
        }

        let index = match &self.master {
            MasterSource::External(dm) => Some(MasterIndex::build_parallel(
                rules.mds(),
                dm,
                config.interning,
                config.effective_parallelism(),
            )),
            _ => None,
        };
        Ok(Cleaner {
            prepared: Arc::new(PreparedCleaner {
                rules,
                master: self.master,
                index,
                config,
            }),
        })
    }
}
