//! The owned, reusable cleaning session: [`Cleaner`], built through
//! [`Cleaner::builder`].
//!
//! The paper describes *one* unified process over record matching (MDs)
//! and repairing (CFDs); this module makes the public API match. A single
//! phase loop drives `cRepair → eRepair → hRepair` regardless of where
//! master data comes from — an external relation (§1, Fig 1), the data
//! itself via per-phase snapshots (§9's master-free adaptation), or
//! nowhere (CFD-only repairing). The [`MasterSource`] enum picks the
//! variant; the loop body is shared.
//!
//! Construction is fallible and typed: every misuse that used to panic
//! (`expect`/`assert!` in `UniClean::new` and `clean_without_master`)
//! is a [`CleanError`] from [`CleanerBuilder::build`]. A built `Cleaner`
//! owns `Arc`s of its rules and master data, so it can live in a service
//! and be shared across threads for many `clean` calls; the master access
//! paths (§5.2) are built once at `build` time.
//!
//! Instrumentation flows through one surface: [`PhaseObserver`] receives
//! per-phase timing and fix counts as the run progresses, and the same
//! [`PhaseStats`] records land in [`CleanResult::phases`].

use std::sync::Arc;
use std::time::Instant;

use uniclean_model::{repair_cost, Relation};
use uniclean_rules::{satisfies_all, RuleSet};

use crate::config::CleanConfig;
use crate::crepair::c_repair;
use crate::erepair::e_repair;
use crate::error::CleanError;
use crate::fix::FixReport;
use crate::hrepair::h_repair;
use crate::master_index::MasterIndex;
use crate::pipeline::{CleanResult, Phase};

/// Where the master relation `Dm` comes from.
#[derive(Clone, Debug, Default)]
pub enum MasterSource {
    /// An external, correct master relation (the paper's main setting,
    /// §2.1: master data is "consistent and accurate").
    External(Arc<Relation>),
    /// Master-free mode (§1/§9): before each phase a snapshot of the
    /// current repair state is rendered into the MDs' master schema, so
    /// matches are found *within* `D` and each phase sees the previous
    /// phase's repairs. The rule set must be authored with a master schema
    /// that mirrors the data schema positionally (e.g. a renamed clone).
    /// Deterministic fixes lose their master-data warranty in this mode.
    SelfSnapshot,
    /// No master data: CFD-only repairing (the experiments' `Uni(CFD)`).
    /// Building a cleaner whose rules contain MDs over this source fails
    /// with [`CleanError::MdsWithoutMaster`].
    #[default]
    None,
}

impl MasterSource {
    /// Convenience constructor accepting either a `Relation` or an
    /// `Arc<Relation>`.
    pub fn external(dm: impl Into<Arc<Relation>>) -> Self {
        MasterSource::External(dm.into())
    }
}

/// One of the three cleaning phases, as reported to observers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PhaseKind {
    /// Deterministic fixes from confidence analysis (§5).
    CRepair,
    /// Reliable fixes from information entropy (§6).
    ERepair,
    /// Possible fixes via equivalence classes and the cost model (§7).
    HRepair,
}

impl PhaseKind {
    /// Stable display label (`"cRepair"`, `"eRepair"`, `"hRepair"`).
    pub fn label(self) -> &'static str {
        match self {
            PhaseKind::CRepair => "cRepair",
            PhaseKind::ERepair => "eRepair",
            PhaseKind::HRepair => "hRepair",
        }
    }

    /// Position in the fixed phase order (0, 1, 2).
    pub fn index(self) -> usize {
        match self {
            PhaseKind::CRepair => 0,
            PhaseKind::ERepair => 1,
            PhaseKind::HRepair => 2,
        }
    }
}

/// Timing and fix-count record of one executed phase.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhaseStats {
    /// Which phase ran.
    pub phase: PhaseKind,
    /// Wall-clock seconds the phase took (excluding snapshot/index
    /// construction for [`MasterSource::SelfSnapshot`], matching how the
    /// paper reports per-algorithm times).
    pub seconds: f64,
    /// Fixes the phase applied.
    pub fixes: usize,
}

/// Streaming instrumentation hook: benches, progress bars and telemetry
/// all consume this one surface instead of poking at hardcoded fields.
pub trait PhaseObserver {
    /// A phase is about to run.
    fn on_phase_start(&mut self, _phase: PhaseKind) {}
    /// A phase finished with the given stats.
    fn on_phase_end(&mut self, _stats: &PhaseStats) {}
}

/// Observer that ignores everything (the default for [`Cleaner::clean`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoOpObserver;

impl PhaseObserver for NoOpObserver {}

/// Observer that records every phase's stats — the plain "give me the
/// timings" consumer the bench harness uses.
#[derive(Clone, Debug, Default)]
pub struct PhaseTimings {
    /// Stats in execution order.
    pub stats: Vec<PhaseStats>,
}

impl PhaseObserver for PhaseTimings {
    fn on_phase_end(&mut self, stats: &PhaseStats) {
        self.stats.push(*stats);
    }
}

impl PhaseTimings {
    /// Seconds per phase in fixed (c, e, h) order; phases that did not run
    /// report 0.
    pub fn seconds(&self) -> [f64; 3] {
        seconds_by_phase(&self.stats)
    }
}

/// Map phase stats into fixed (c, e, h) slots — the shared backing of
/// [`PhaseTimings::seconds`] and [`CleanResult::phase_seconds`].
pub(crate) fn seconds_by_phase(stats: &[PhaseStats]) -> [f64; 3] {
    let mut out = [0.0; 3];
    for s in stats {
        out[s.phase.index()] = s.seconds;
    }
    out
}

/// An owned, reusable cleaning session: rules + master source + validated
/// configuration, with master access paths built once.
///
/// ```
/// use std::sync::Arc;
/// use uniclean_core::{Cleaner, CleanConfig, MasterSource, Phase};
/// use uniclean_model::{Relation, Schema, Tuple};
/// use uniclean_rules::{parse_rules, RuleSet};
///
/// let tran = Schema::of_strings("tran", &["AC", "city"]);
/// let parsed = parse_rules("cfd phi1: tran([AC=131] -> [city=Edi])", &tran, None).unwrap();
/// let rules = RuleSet::cfds_only(tran.clone(), parsed.cfds);
///
/// let cleaner = Cleaner::builder()
///     .rules(rules)
///     .master(MasterSource::None)
///     .config(CleanConfig::default())
///     .build()
///     .unwrap();
/// let dirty = Relation::new(tran, vec![Tuple::of_strs(&["131", "Ldn"], 0.5)]);
/// let result = cleaner.clean(&dirty, Phase::Full);
/// assert!(result.consistent);
/// ```
pub struct Cleaner {
    rules: Arc<RuleSet>,
    master: MasterSource,
    /// Prebuilt §5.2 access paths for [`MasterSource::External`]; the
    /// self-snapshot mode rebuilds per phase instead.
    index: Option<MasterIndex>,
    config: CleanConfig,
}

impl std::fmt::Debug for Cleaner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Summaries only: a service logging `{:?}` must not dump a
        // multi-thousand-tuple master relation.
        let master = match &self.master {
            MasterSource::External(dm) => {
                format!("External({}, {} tuples)", dm.schema().name(), dm.len())
            }
            MasterSource::SelfSnapshot => "SelfSnapshot".to_string(),
            MasterSource::None => "None".to_string(),
        };
        f.debug_struct("Cleaner")
            .field("schema", &self.rules.schema().name())
            .field("cfds", &self.rules.cfds().len())
            .field("mds", &self.rules.mds().len())
            .field("master", &master)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Cleaner {
    /// Start building a session.
    pub fn builder() -> CleanerBuilder {
        CleanerBuilder::default()
    }

    /// The rule set `Θ = Σ ∪ Γ`.
    pub fn rules(&self) -> &Arc<RuleSet> {
        &self.rules
    }

    /// The master source this session cleans against.
    pub fn master(&self) -> &MasterSource {
        &self.master
    }

    /// The validated configuration (with `self_match` already set to match
    /// the master source).
    pub fn config(&self) -> &CleanConfig {
        &self.config
    }

    /// Clean `d`, running phases up to and including `phase`.
    pub fn clean(&self, d: &Relation, phase: Phase) -> CleanResult {
        self.clean_observed(d, phase, &mut NoOpObserver)
    }

    /// [`Cleaner::clean`] with a [`PhaseObserver`] receiving per-phase
    /// timing and fix counts as the run progresses.
    pub fn clean_observed(
        &self,
        d: &Relation,
        phase: Phase,
        observer: &mut dyn PhaseObserver,
    ) -> CleanResult {
        let kinds: &[PhaseKind] = match phase {
            Phase::CRepair => &[PhaseKind::CRepair],
            Phase::CERepair => &[PhaseKind::CRepair, PhaseKind::ERepair],
            Phase::Full => &[PhaseKind::CRepair, PhaseKind::ERepair, PhaseKind::HRepair],
        };

        let mut work = d.clone();
        let mut report = FixReport::new();
        let mut phases = Vec::with_capacity(kinds.len());

        for &kind in kinds {
            // Per-phase master view. External masters reuse the access
            // paths built at `build` time; the self-snapshot re-renders the
            // current repair state so each phase sees the previous phase's
            // fixes (the §9 interleaving).
            let snapshot_storage;
            let (dm, index): (Option<&Relation>, Option<&MasterIndex>) = match &self.master {
                MasterSource::External(m) => (Some(m), self.index.as_ref()),
                MasterSource::SelfSnapshot => {
                    let snap = self.snapshot(&work);
                    let idx = MasterIndex::build_with(
                        self.rules.mds(),
                        &snap,
                        self.config.blocking_l,
                        self.config.interning,
                    );
                    snapshot_storage = (snap, idx);
                    (Some(&snapshot_storage.0), Some(&snapshot_storage.1))
                }
                MasterSource::None => (None, None),
            };

            observer.on_phase_start(kind);
            let fixes_before = report.len();
            let started = Instant::now();
            let fixes = match kind {
                PhaseKind::CRepair => c_repair(&mut work, dm, &self.rules, index, &self.config),
                PhaseKind::ERepair => e_repair(&mut work, dm, &self.rules, index, &self.config),
                PhaseKind::HRepair => h_repair(&mut work, dm, &self.rules, index, &self.config),
            };
            report.extend(fixes);
            let stats = PhaseStats {
                phase: kind,
                seconds: started.elapsed().as_secs_f64(),
                fixes: report.len() - fixes_before,
            };
            observer.on_phase_end(&stats);
            phases.push(stats);
        }

        // Acceptance (§3.2): `Dr ⊨ Σ` and `(Dr, Dm) ⊨ Γ`, checked against
        // whatever master view the final state implies.
        let final_storage;
        let dm_final: &Relation = match &self.master {
            MasterSource::External(m) => m,
            MasterSource::SelfSnapshot => {
                final_storage = self.snapshot(&work);
                &final_storage
            }
            MasterSource::None => {
                final_storage = Relation::empty(self.rules.schema().clone());
                &final_storage
            }
        };
        let consistent = satisfies_all(self.rules.cfds(), self.rules.mds(), &work, dm_final);
        let cost = repair_cost(d, &work);
        CleanResult {
            repaired: work,
            report,
            cost,
            consistent,
            phases,
        }
    }

    /// Render the current repair state into the MDs' master schema
    /// (self-snapshot mode only; `build` guarantees the schema exists and
    /// mirrors the data schema).
    fn snapshot(&self, work: &Relation) -> Relation {
        let master_schema = self
            .rules
            .master_schema()
            .expect("Cleaner::build verified the self-snapshot schema")
            .clone();
        Relation::new(master_schema, work.tuples().to_vec())
    }
}

/// Configures and validates a [`Cleaner`].
#[derive(Clone, Default)]
pub struct CleanerBuilder {
    rules: Option<Arc<RuleSet>>,
    master: MasterSource,
    config: CleanConfig,
}

impl CleanerBuilder {
    /// The rule set to clean with (required). Accepts a `RuleSet` or a
    /// shared `Arc<RuleSet>`.
    pub fn rules(mut self, rules: impl Into<Arc<RuleSet>>) -> Self {
        self.rules = Some(rules.into());
        self
    }

    /// Where master data comes from (default: [`MasterSource::None`]).
    pub fn master(mut self, master: MasterSource) -> Self {
        self.master = master;
        self
    }

    /// Thresholds and limits (default: [`CleanConfig::default`]).
    /// `self_match` is forced on for [`MasterSource::SelfSnapshot`];
    /// otherwise the flag is honored as given (a caller supplying its own
    /// data snapshot as an External master keeps the self-exclusion guard).
    pub fn config(mut self, config: CleanConfig) -> Self {
        self.config = config;
        self
    }

    /// Worker threads for the parallel phase internals (shorthand for
    /// setting [`CleanConfig::parallelism`] after [`Self::config`]).
    /// `1` runs the exact single-threaded path; any setting produces
    /// bit-identical output — see [`crate::parallel`].
    pub fn parallelism(mut self, threads: std::num::NonZeroUsize) -> Self {
        self.config.parallelism = Some(threads);
        self
    }

    /// Validate everything and assemble the session.
    ///
    /// Errors (never panics on user input):
    /// * [`CleanError::MissingRules`] — no rule set given;
    /// * [`CleanError::Config`] — thresholds out of range, non-finite, or
    ///   zero limits;
    /// * [`CleanError::MdsWithoutMaster`] — MDs over [`MasterSource::None`];
    /// * [`CleanError::MasterSchemaMismatch`] — external master relation
    ///   whose schema differs from the rule set's master schema;
    /// * [`CleanError::MissingSelfSchema`] / [`CleanError::SelfSchemaMismatch`]
    ///   — self-snapshot without a positionally mirroring master schema.
    pub fn build(self) -> Result<Cleaner, CleanError> {
        let rules = self.rules.ok_or(CleanError::MissingRules)?;
        let mut config = self.config;
        // SelfSnapshot requires the self-exclusion guard; for the other
        // sources the caller's flag is honored (a caller may supply its own
        // data snapshot as an External master and still want the guard).
        if matches!(self.master, MasterSource::SelfSnapshot) {
            config.self_match = true;
        }
        config.validate()?;

        match &self.master {
            MasterSource::External(dm) => {
                if let Some(expected) = rules.master_schema() {
                    if expected.as_ref() != dm.schema().as_ref() {
                        return Err(CleanError::MasterSchemaMismatch {
                            expected: expected.to_string(),
                            found: dm.schema().to_string(),
                        });
                    }
                }
            }
            MasterSource::SelfSnapshot => {
                let master_schema = rules.master_schema().ok_or(CleanError::MissingSelfSchema)?;
                if master_schema.arity() != rules.schema().arity() {
                    return Err(CleanError::SelfSchemaMismatch {
                        data_arity: rules.schema().arity(),
                        master_arity: master_schema.arity(),
                    });
                }
            }
            MasterSource::None => {
                if !rules.mds().is_empty() {
                    return Err(CleanError::MdsWithoutMaster);
                }
            }
        }

        let index = match &self.master {
            MasterSource::External(dm) => Some(MasterIndex::build_with(
                rules.mds(),
                dm,
                config.blocking_l,
                config.interning,
            )),
            _ => None,
        };
        Ok(Cleaner {
            rules,
            master: self.master,
            index,
            config,
        })
    }
}
