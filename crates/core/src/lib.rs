//! UniClean core — the three-phase cleaning system of the paper (§3.2).
//!
//! ```text
//!           dirty D ──► cRepair ──► eRepair ──► hRepair ──► repair Dr
//!                     confidence     entropy     heuristic
//!                    deterministic  reliable     possible
//!                        fixes        fixes        fixes
//! ```
//!
//! * [`crepair`] — deterministic fixes from confidence analysis and master
//!   data (§5, Figs 4–5);
//! * [`erepair`] — reliable fixes from information entropy (§6, Fig 6),
//!   backed by the 2-in-1 hash-table + AVL structure of §6.3
//!   ([`two_in_one`], [`avl`]);
//! * [`hrepair`] — possible fixes via equivalence classes and the cost
//!   model (§7, extending Cong et al.), preserving deterministic fixes
//!   (Corollary 7.1);
//! * [`session`] — the [`Cleaner`] session API: builder construction,
//!   [`MasterSource`] (external / self-snapshot / none), typed
//!   [`CleanError`]s, the [`PhaseObserver`] instrumentation hook, and the
//!   persistent [`PreparedCleaner`] (rules/index/config built once per
//!   session, shared by every call);
//! * [`incremental`] — incremental cleaning: the per-relation
//!   [`RepairState`] and [`Cleaner::clean_delta`], which absorb appended
//!   batches by continuing the persisted `cRepair` fixpoint and reusing
//!   the warm structures, bit-identical to a from-scratch reclean;
//! * [`phase`] — the one [`Phase`] type (phase identity and pipeline
//!   prefix selector, consolidated in 0.4);
//! * [`pipeline`] — [`CleanResult`] and the deprecated pre-0.2 entry
//!   points (`UniClean`, `clean_without_master`), now thin shims over the
//!   session;
//! * [`master_index`] — blocked access to master data (exact hash index for
//!   equality premises — interned to dense symbols on the fast path — and
//!   the §5.2 LCS suffix-tree blocker for edit-distance premises);
//! * [`parallel`] — the scoped-thread chunk–merge–apply fan-out the phases
//!   use for their read-heavy stages, bit-identical at every thread count;
//! * [`fix`] — per-cell fix records and phase statistics;
//! * [`entropy`] — the paper's base-`k` entropy `H(ϕ | Y = ȳ)` (§6.1).

pub mod avl;
pub mod config;
pub mod crepair;
pub mod entropy;
pub mod erepair;
pub mod error;
pub mod fix;
pub mod hrepair;
pub mod incremental;
pub mod master_index;
mod md_cache;
pub mod parallel;
mod pattern_syms;
pub mod phase;
pub mod pipeline;
pub mod session;
pub mod two_in_one;

/// Re-export of the similarity crate, so downstream layers (server, CLI)
/// can reach kernel dispatch introspection ([`similarity::simd`]) without a
/// direct dependency.
pub use uniclean_similarity as similarity;

pub use config::CleanConfig;
pub use crepair::c_repair;
pub use erepair::e_repair;
pub use error::{CleanError, ConfigError};
pub use fix::{FixRecord, FixReport};
pub use hrepair::h_repair;
pub use incremental::{RepairState, TupleViolation, ViolationKind};
pub use master_index::{IndexPolicy, MasterIndex, ProbeScratch};
pub use parallel::effective_parallelism;
pub use phase::Phase;
pub use pipeline::CleanResult;
#[allow(deprecated)]
pub use pipeline::{clean_without_master, UniClean};
pub use session::{
    Cleaner, CleanerBuilder, MasterSource, NoOpObserver, PhaseObserver, PhaseStats, PhaseTimings,
    PreparedCleaner,
};
