//! UniClean core — the three-phase cleaning system of the paper (§3.2).
//!
//! ```text
//!           dirty D ──► cRepair ──► eRepair ──► hRepair ──► repair Dr
//!                     confidence     entropy     heuristic
//!                    deterministic  reliable     possible
//!                        fixes        fixes        fixes
//! ```
//!
//! * [`crepair`] — deterministic fixes from confidence analysis and master
//!   data (§5, Figs 4–5);
//! * [`erepair`] — reliable fixes from information entropy (§6, Fig 6),
//!   backed by the 2-in-1 hash-table + AVL structure of §6.3
//!   ([`two_in_one`], [`avl`]);
//! * [`hrepair`] — possible fixes via equivalence classes and the cost
//!   model (§7, extending Cong et al.), preserving deterministic fixes
//!   (Corollary 7.1);
//! * [`pipeline`] — the `UniClean` orchestrator running the three phases
//!   and checking `Dr ⊨ Σ`, `(Dr, Dm) ⊨ Γ`;
//! * [`master_index`] — blocked access to master data (exact hash index for
//!   equality premises, the §5.2 LCS suffix-tree blocker for edit-distance
//!   premises);
//! * [`fix`] — per-cell fix records and phase statistics;
//! * [`entropy`] — the paper's base-`k` entropy `H(ϕ | Y = ȳ)` (§6.1).

pub mod avl;
pub mod config;
pub mod crepair;
pub mod entropy;
pub mod erepair;
pub mod fix;
pub mod hrepair;
pub mod master_index;
pub mod pipeline;
pub mod two_in_one;

pub use config::CleanConfig;
pub use crepair::c_repair;
pub use erepair::e_repair;
pub use fix::{FixRecord, FixReport};
pub use hrepair::h_repair;
pub use master_index::MasterIndex;
pub use pipeline::{clean_without_master, CleanResult, Phase, UniClean};
