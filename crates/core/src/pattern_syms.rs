//! Symbol-compiled CFD pattern matching.
//!
//! A CFD pattern slot is a constant or a wildcard. Against the columnar
//! store, both compare as symbols: a wildcard matches any non-null symbol,
//! a constant matches exactly one symbol — the one the relation's interner
//! issued for that constant. [`CfdPatternSyms`] resolves every pattern
//! constant once per (rule set, relation lineage); the per-tuple check
//! then reads the tuple's symbol column and compares `u32`s, never value
//! content.
//!
//! **Lineage.** Compiled symbols are only meaningful against the relation
//! they were compiled for and relations *derived* from it (clones,
//! incremental extensions) — the interner is append-only, so a symbol
//! never re-resolves. A constant absent from the interner at compile time
//! is kept in fallback form and re-probed live on each use (one interner
//! lookup); the engine avoids this path by interning every rule constant
//! at phase entry ([`ensure_rule_constants`]).

use uniclean_model::{AttrId, Relation, Symbol, TupleId, Value};
use uniclean_rules::{PatternValue, RuleSet};

/// One compiled pattern slot.
#[derive(Clone, Debug)]
enum Slot {
    /// Wildcard `_`: matches any non-null symbol.
    Wildcard,
    /// Constant with its interned symbol (`None` = not interned at
    /// compile time; re-probed live).
    Const(Value, Option<Symbol>),
}

/// Compiled LHS patterns for a list of CFDs against one relation lineage.
#[derive(Clone, Debug, Default)]
pub(crate) struct CfdPatternSyms {
    /// `lhs[cfd][slot]`, aligned with each CFD's `lhs()`/`lhs_pattern()`.
    lhs: Vec<Vec<Slot>>,
}

impl CfdPatternSyms {
    /// Compile the LHS patterns of every CFD in `rules` against `d`'s
    /// interner (read-only: constants the interner has not seen stay in
    /// fallback form).
    pub(crate) fn compile(rules: &RuleSet, d: &Relation) -> Self {
        let lhs = rules
            .cfds()
            .iter()
            .map(|cfd| {
                cfd.lhs_pattern()
                    .iter()
                    .map(|p| match p {
                        PatternValue::Wildcard => Slot::Wildcard,
                        PatternValue::Const(v) => Slot::Const(v.clone(), d.interner().get(v)),
                    })
                    .collect()
            })
            .collect();
        CfdPatternSyms { lhs }
    }

    /// Does `d.tuple(t)[X] ≍ tp[X]` hold for CFD `idx`? Pure symbol
    /// compares on the compiled path; `attrs` is the rule's `lhs()` (the
    /// callers all have it cached).
    #[inline]
    pub(crate) fn lhs_matches_attrs(
        &self,
        idx: usize,
        attrs: &[AttrId],
        d: &Relation,
        t: TupleId,
    ) -> bool {
        let null = d.null_sym();
        attrs
            .iter()
            .zip(self.lhs[idx].iter())
            .all(|(a, slot)| match slot {
                Slot::Wildcard => d.sym(t, *a) != null,
                Slot::Const(_, Some(cs)) => d.sym(t, *a) == *cs,
                Slot::Const(v, None) => match d.interner().get(v) {
                    Some(cs) => d.sym(t, *a) == cs,
                    // A value the interner has never seen cannot be stored
                    // in any cell of `d`.
                    None => false,
                },
            })
    }
}

/// Intern every CFD pattern constant into `d`'s interner, so pattern
/// compilation resolves every constant to a symbol. Idempotent and cheap
/// (rule constants are few); called at phase entry.
pub(crate) fn ensure_rule_constants(d: &mut Relation, rules: &RuleSet) {
    for cfd in rules.cfds() {
        for p in cfd.lhs_pattern().iter().chain(cfd.rhs_pattern()) {
            if let Some(v) = p.as_const() {
                d.ensure_interned(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniclean_model::{Schema, Tuple};
    use uniclean_rules::parse_rules;

    #[test]
    fn compiled_matching_agrees_with_value_matching() {
        let s = Schema::of_strings("r", &["A", "B"]);
        let parsed =
            parse_rules("cfd c: r([A=x] -> [B=y])\ncfd f: r([A] -> [B])", &s, None).unwrap();
        let rules = uniclean_rules::RuleSet::cfds_only(s.clone(), parsed.cfds);
        let mut d = Relation::new(
            s,
            vec![
                Tuple::of_strs(&["x", "1"], 0.5),
                Tuple::of_strs(&["z", "2"], 0.5),
            ],
        );
        d.tuple_mut(TupleId(1))
            .set(AttrId(0), Value::Null, 0.0, Default::default());
        ensure_rule_constants(&mut d, &rules);
        let pats = CfdPatternSyms::compile(&rules, &d);
        for (i, cfd) in rules.cfds().iter().enumerate() {
            for t in d.ids() {
                assert_eq!(
                    pats.lhs_matches_attrs(i, cfd.lhs(), &d, t),
                    cfd.lhs_matches(d.tuple(t)),
                    "cfd {i} tuple {t:?}"
                );
            }
        }
    }

    #[test]
    fn uninterned_constant_is_probed_live() {
        let s = Schema::of_strings("r", &["A", "B"]);
        let parsed = parse_rules("cfd c: r([A=zz] -> [B=y])", &s, None).unwrap();
        let rules = uniclean_rules::RuleSet::cfds_only(s.clone(), parsed.cfds);
        let mut d = Relation::new(s, vec![Tuple::of_strs(&["x", "1"], 0.5)]);
        // Compile while "zz" is unknown to the interner.
        let pats = CfdPatternSyms::compile(&rules, &d);
        assert!(!pats.lhs_matches_attrs(0, rules.cfds()[0].lhs(), &d, TupleId(0)));
        // A later write introduces the constant; the live probe must see it.
        d.tuple_mut(TupleId(0))
            .set(AttrId(0), Value::str("zz"), 0.5, Default::default());
        assert!(pats.lhs_matches_attrs(0, rules.cfds()[0].lhs(), &d, TupleId(0)));
    }
}
