//! Typed errors for session construction and configuration.
//!
//! Everything a user can get wrong — bad thresholds, MDs without master
//! data, schema mismatches, unparsable rule text — surfaces as a value of
//! one of these enums instead of a panic. The panicking entry points
//! (`UniClean::new`, `clean_without_master`) are deprecated shims that
//! merely `panic!` with these errors' `Display` text.

use std::fmt;

use uniclean_model::ModelError;
use uniclean_rules::{ParseError, RuleSetError};

/// An invalid [`crate::CleanConfig`] field.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// A threshold is NaN or infinite.
    NonFinite {
        /// Field name (`eta`, `delta_entropy`).
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A threshold lies outside its documented `[0, 1]` range.
    OutOfRange {
        /// Field name.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A count that must be at least 1 is 0 (`max_erepair_rounds`,
    /// `max_hrepair_rounds`).
    ZeroLimit {
        /// Field name.
        field: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NonFinite { field, value } => {
                write!(f, "{field} must be finite, got {value}")
            }
            ConfigError::OutOfRange { field, value } => {
                write!(f, "{field} must be in [0,1], got {value}")
            }
            ConfigError::ZeroLimit { field } => write!(f, "{field} must be at least 1"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Why a [`crate::Cleaner`] could not be built (or a rule file not turned
/// into a session).
#[derive(Clone, Debug, PartialEq)]
pub enum CleanError {
    /// The builder was finished without [`crate::CleanerBuilder::rules`].
    MissingRules,
    /// The configuration failed validation.
    Config(ConfigError),
    /// The rule set contains MDs but the master source is
    /// [`crate::MasterSource::None`].
    MdsWithoutMaster,
    /// An external master relation's schema differs from the rule set's
    /// master schema.
    MasterSchemaMismatch {
        /// Rendered schema the rule set expects (`name(attr, …)`), so a
        /// mismatch is diagnosable even when both schemas share a name.
        expected: String,
        /// Rendered schema of the supplied relation.
        found: String,
    },
    /// [`crate::MasterSource::SelfSnapshot`] needs MDs authored against a
    /// (renamed) master schema, but the rule set has none.
    MissingSelfSchema,
    /// The self-snapshot master schema does not mirror the data schema
    /// positionally.
    SelfSchemaMismatch {
        /// Arity of the data schema.
        data_arity: usize,
        /// Arity of the master schema.
        master_arity: usize,
    },
    /// Rule text failed to parse.
    Parse(ParseError),
    /// Rules were inconsistent with each other or their schemas.
    Rules(RuleSetError),
    /// A [`crate::RepairState`] was handed to a [`crate::Cleaner`] other
    /// than the one that created it (`clean_delta` relies on the state's
    /// structures matching the session's rules, master and config).
    ForeignState,
    /// A `clean_delta` batch tuple does not fit the data schema.
    BatchArityMismatch {
        /// Arity of the data schema.
        expected: usize,
        /// Arity of the offending batch tuple.
        found: usize,
    },
    /// A model-layer construction invariant failed — a row's arity did
    /// not match its schema, or a confidence left `[0, 1]`. Raised by the
    /// typed relation/cell constructors (`Relation::try_new`,
    /// `Relation::try_push_row`, `Cell::try_new`) and surfaced here so
    /// session-level code can bubble ingest failures as one error type.
    Model(ModelError),
}

impl fmt::Display for CleanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CleanError::MissingRules => {
                write!(f, "no rule set supplied: call CleanerBuilder::rules before build")
            }
            CleanError::Config(e) => write!(f, "invalid cleaning configuration: {e}"),
            CleanError::MdsWithoutMaster => {
                write!(f, "rule set contains MDs but no master relation was supplied")
            }
            CleanError::MasterSchemaMismatch { expected, found } => write!(
                f,
                "master relation schema `{found}` does not match the rule set's master schema `{expected}`"
            ),
            CleanError::MissingSelfSchema => {
                write!(f, "self-matching needs MDs with a (renamed) master schema")
            }
            CleanError::SelfSchemaMismatch { data_arity, master_arity } => write!(
                f,
                "self-matching master schema must mirror the data schema \
                 (data arity {data_arity}, master arity {master_arity})"
            ),
            CleanError::Parse(e) => write!(f, "{e}"),
            CleanError::Rules(e) => write!(f, "{e}"),
            CleanError::ForeignState => write!(
                f,
                "repair state belongs to a different Cleaner session; \
                 pass it back to the cleaner that created it"
            ),
            CleanError::BatchArityMismatch { expected, found } => write!(
                f,
                "batch tuple arity {found} does not match the data schema arity {expected}"
            ),
            CleanError::Model(e) => write!(f, "invalid relation data: {e}"),
        }
    }
}

impl std::error::Error for CleanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CleanError::Config(e) => Some(e),
            CleanError::Parse(e) => Some(e),
            CleanError::Rules(e) => Some(e),
            CleanError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for CleanError {
    fn from(e: ConfigError) -> Self {
        CleanError::Config(e)
    }
}

impl From<ParseError> for CleanError {
    fn from(e: ParseError) -> Self {
        CleanError::Parse(e)
    }
}

impl From<RuleSetError> for CleanError {
    fn from(e: RuleSetError) -> Self {
        CleanError::Rules(e)
    }
}

impl From<ModelError> for CleanError {
    fn from(e: ModelError) -> Self {
        CleanError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_keeps_the_historic_panic_phrases() {
        // `should_panic(expected = …)` tests of the deprecated shims match
        // on substrings of these messages; they must not drift silently.
        assert!(CleanError::MdsWithoutMaster
            .to_string()
            .contains("no master relation"));
        assert!(CleanError::MissingSelfSchema
            .to_string()
            .contains("(renamed) master schema"));
        assert!(CleanError::SelfSchemaMismatch {
            data_arity: 3,
            master_arity: 2
        }
        .to_string()
        .contains("mirror the data schema"));
        assert!(CleanError::Config(ConfigError::ZeroLimit {
            field: "max_erepair_rounds"
        })
        .to_string()
        .contains("invalid cleaning configuration"));
    }

    #[test]
    fn sources_chain() {
        use std::error::Error as _;
        let e = CleanError::Config(ConfigError::OutOfRange {
            field: "eta",
            value: 1.5,
        });
        assert!(e.source().unwrap().to_string().contains("eta"));
        assert!(CleanError::MissingRules.source().is_none());
        let e = CleanError::from(ModelError::ConfidenceOutOfRange { cf: 2.0 });
        assert!(e.to_string().contains("invalid relation data"));
        assert!(e.source().unwrap().to_string().contains('2'));
    }
}
