//! The UniClean pipeline (§3.2, Fig 2): cRepair → eRepair → hRepair.
//!
//! "Various fixes are found by executing three algorithms consecutively …
//! There is no need to iterate the processes for the three types of fixes."
//! The pipeline also computes the §3.1 repair cost and verifies the
//! acceptance conditions of the data cleaning problem: `Dr ⊨ Σ` and
//! `(Dr, Dm) ⊨ Γ` (under SQL null semantics, §7).
//!
//! The phase loop itself lives in [`crate::session`] behind the
//! [`Cleaner`](crate::Cleaner) session API; this module keeps the phase
//! selector ([`Phase`]), the run result ([`CleanResult`]) and the
//! deprecated pre-0.2 entry points ([`UniClean`], [`clean_without_master`]),
//! which are thin shims over the session.

use std::marker::PhantomData;

use uniclean_model::{FixMark, Relation};
use uniclean_rules::RuleSet;

use crate::config::CleanConfig;
use crate::fix::FixReport;
use crate::session::{Cleaner, MasterSource, PhaseStats};

// The phase selector historically lived here; it is now one type with the
// phase identity (see `crate::phase`) and re-exported from both paths.
pub use crate::phase::Phase;

/// Result of a cleaning run.
#[derive(Clone, Debug)]
pub struct CleanResult {
    /// The (partially) repaired relation.
    pub repaired: Relation,
    /// Every fix applied, in order, across phases.
    pub report: FixReport,
    /// `cost(Dr, D)` under the §3.1 model.
    pub cost: f64,
    /// Did the final relation satisfy `Σ` and `Γ` (null semantics)? Always
    /// expected after `Phase::Full`; `false` can only arise from frozen
    /// conflicts, which contradict the correctness assumptions on master
    /// data and confidence (§5.1).
    pub consistent: bool,
    /// Per-phase timing and fix counts, in execution order. The same
    /// records stream through [`crate::PhaseObserver`] during the run.
    pub phases: Vec<PhaseStats>,
}

impl CleanResult {
    /// Fix counts by final mark: (deterministic, reliable, possible).
    pub fn fix_counts(&self) -> (usize, usize, usize) {
        (
            self.report.count_final(FixMark::Deterministic),
            self.report.count_final(FixMark::Reliable),
            self.report.count_final(FixMark::Possible),
        )
    }

    /// Wall-clock seconds spent in each phase, in fixed (c, e, h) order;
    /// phases that did not run report 0.
    pub fn phase_seconds(&self) -> [f64; 3] {
        crate::session::seconds_by_phase(&self.phases)
    }
}

/// The pre-0.2 borrowed entry point, now a shim over [`Cleaner`].
#[deprecated(
    since = "0.2.0",
    note = "use `Cleaner::builder().rules(..).master(MasterSource::external(..)).build()` — \
            it returns typed errors instead of panicking and owns its inputs"
)]
pub struct UniClean<'a> {
    inner: Cleaner,
    _borrowed: PhantomData<&'a RuleSet>,
}

#[allow(deprecated)]
impl<'a> UniClean<'a> {
    /// Prepare a cleaning run: validates the configuration and builds the
    /// master-data access paths (§5.2) once, to be shared by all phases.
    ///
    /// # Panics
    /// Panics on invalid configuration or MDs without a master relation —
    /// the reason this constructor is deprecated. [`Cleaner::builder`]
    /// reports the same conditions as [`crate::CleanError`] values.
    ///
    /// Validation is stricter than pre-0.2: zero round caps
    /// (`max_erepair_rounds` / `max_hrepair_rounds`) and an external
    /// master whose schema differs from the rule set's master schema were
    /// silently accepted before and are rejected now.
    pub fn new(rules: &'a RuleSet, master: Option<&'a Relation>, config: CleanConfig) -> Self {
        let master = match master {
            Some(dm) => MasterSource::external(dm.clone()),
            None => MasterSource::None,
        };
        let inner = Cleaner::builder()
            .rules(rules.clone())
            .master(master)
            .config(config)
            .build()
            .unwrap_or_else(|e| panic!("{e}"));
        UniClean {
            inner,
            _borrowed: PhantomData,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &CleanConfig {
        self.inner.config()
    }

    /// Clean `d`, running phases up to and including `phase`.
    pub fn clean(&self, d: &Relation, phase: Phase) -> CleanResult {
        self.inner.clean(d, phase)
    }
}

/// Master-free cleaning (§1/§9), now a shim over
/// [`MasterSource::SelfSnapshot`]: the data acts as its own master; before
/// each phase a snapshot of the current relation is rendered into the MDs'
/// master schema, so matches are found *within* `D` and each phase sees
/// the previous phase's repairs.
///
/// # Panics
/// Panics on invalid configuration or when the rule set lacks a mirroring
/// master schema — the reason this function is deprecated. Use
/// `Cleaner::builder().master(MasterSource::SelfSnapshot)` for the typed
/// equivalent.
#[deprecated(
    since = "0.2.0",
    note = "use `Cleaner::builder().rules(..).master(MasterSource::SelfSnapshot).build()`"
)]
pub fn clean_without_master(
    rules: &RuleSet,
    d: &Relation,
    config: CleanConfig,
    phase: Phase,
) -> CleanResult {
    Cleaner::builder()
        .rules(rules.clone())
        .master(MasterSource::SelfSnapshot)
        .config(config)
        .build()
        .unwrap_or_else(|e| panic!("{e}"))
        .clean(d, phase)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::MasterSource;
    use std::sync::Arc;
    use uniclean_model::{Schema, Tuple, TupleId, Value};
    use uniclean_rules::parse_rules;

    /// The full Example 1.1 scenario: master data Dm (Fig 1a), dirty D
    /// (Fig 1b), rules ϕ1–ϕ4 and ψ. The pipeline must discover the fraud:
    /// t3 and t4 refer to the same person.
    fn example_1_1() -> (Arc<Schema>, Arc<Schema>, RuleSet, Relation, Relation) {
        let tran = Schema::of_strings(
            "tran",
            &["FN", "LN", "St", "city", "AC", "post", "phn", "gd"],
        );
        let card = Schema::of_strings(
            "card",
            &["FN", "LN", "St", "city", "AC", "zip", "tel", "gd"],
        );
        let text = "cfd phi1: tran([AC=131] -> [city=Edi])\n\
                    cfd phi2: tran([AC=020] -> [city=Ldn])\n\
                    cfd phi3: tran([city, phn] -> [St, AC, post])\n\
                    cfd phi4: tran([FN=Bob] -> [FN=Robert])\n\
                    md psi: tran[LN] = card[LN] AND tran[city] = card[city] AND tran[St] = card[St] AND tran[post] = card[zip] AND tran[FN] ~lev(4) card[FN] -> tran[FN] <=> card[FN], tran[phn] <=> card[tel]";
        let parsed = parse_rules(text, &tran, Some(&card)).unwrap();
        let rules = RuleSet::new(
            tran.clone(),
            Some(card.clone()),
            parsed.cfds,
            parsed.positive_mds,
            parsed.negative_mds,
        );

        let dm = Relation::new(
            card.clone(),
            vec![
                Tuple::of_strs(
                    &[
                        "Mark",
                        "Smith",
                        "10 Oak St",
                        "Edi",
                        "131",
                        "EH8 9LE",
                        "3256778",
                        "Male",
                    ],
                    1.0,
                ),
                Tuple::of_strs(
                    &[
                        "Robert",
                        "Brady",
                        "5 Wren St",
                        "Ldn",
                        "020",
                        "WC1H 9SE",
                        "3887644",
                        "Male",
                    ],
                    1.0,
                ),
            ],
        );

        // Fig 1(b) with its cf rows.
        let mk = |vals: &[&str], cfs: &[f64]| {
            let mut t = Tuple::of_strs(vals, 0.0);
            for (i, &c) in cfs.iter().enumerate() {
                let a = uniclean_model::AttrId::from(i);
                let v = t.value(a).clone();
                t.set(a, v, c, FixMark::Untouched);
            }
            t
        };
        let t1 = mk(
            &[
                "M.",
                "Smith",
                "10 Oak St",
                "Ldn",
                "131",
                "EH8 9LE",
                "9999999",
                "Male",
            ],
            &[0.9, 1.0, 0.9, 0.5, 0.9, 0.9, 0.0, 0.8],
        );
        let t2 = mk(
            &[
                "Max",
                "Smith",
                "Po Box 25",
                "Edi",
                "131",
                "EH8 9AB",
                "3256778",
                "Male",
            ],
            &[0.7, 1.0, 0.5, 0.9, 0.7, 0.6, 0.8, 0.8],
        );
        let t3 = mk(
            &[
                "Bob",
                "Brady",
                "5 Wren St",
                "Edi",
                "020",
                "WC1H 9SE",
                "3887834",
                "Male",
            ],
            &[0.6, 1.0, 0.9, 0.2, 0.9, 0.8, 0.9, 0.8],
        );
        let t4 = mk(
            &[
                "Robert", "Brady", "", "Ldn", "020", "WC1E 7HX", "3887644", "Male",
            ],
            &[0.7, 1.0, 0.0, 0.5, 0.7, 0.3, 0.7, 0.8],
        );
        let mut t4 = t4;
        t4.set(
            tran.attr_id_or_panic("St"),
            Value::Null,
            0.0,
            FixMark::Untouched,
        );
        let d = Relation::new(tran.clone(), vec![t1, t2, t3, t4]);
        (tran, card, rules, d, dm)
    }

    fn cleaner(rules: &RuleSet, dm: &Relation, eta: f64) -> Cleaner {
        Cleaner::builder()
            .rules(rules.clone())
            .master(MasterSource::external(dm.clone()))
            .config(CleanConfig {
                eta,
                delta_entropy: 0.8,
                ..CleanConfig::default()
            })
            .build()
            .unwrap()
    }

    #[test]
    fn example_1_1_end_to_end() {
        let (tran, _, rules, d, dm) = example_1_1();
        let uni = cleaner(&rules, &dm, 0.8);
        let result = uni.clean(&d, Phase::Full);
        assert!(result.consistent, "final repair must satisfy Σ and Γ");

        let get = |t: u32, a: &str| {
            result
                .repaired
                .tuple(TupleId(t))
                .value(tran.attr_id_or_panic(a))
                .clone()
        };
        // Steps (a)–(d) of Example 1.1 on t3/t4:
        assert_eq!(get(2, "city"), Value::str("Ldn"), "ϕ2 repairs t3[city]");
        assert_eq!(get(2, "FN"), Value::str("Robert"), "ϕ4 normalizes t3[FN]");
        assert_eq!(
            get(2, "phn"),
            Value::str("3887644"),
            "ψ corrects t3[phn] from s2"
        );
        assert_eq!(get(3, "St"), Value::str("5 Wren St"), "ϕ3 enriches t4[St]");
        assert_eq!(get(3, "post"), Value::str("WC1H 9SE"), "ϕ3 fixes t4[post]");
        // t3 and t4 now agree on all identity attributes: the fraud is
        // evident.
        for a in ["FN", "LN", "St", "city", "AC", "post", "phn"] {
            assert_eq!(get(2, a), get(3, a), "t3/t4 must agree on {a}");
        }
        // And t1 was matched against s1 (Example 5.2's deterministic path).
        assert_eq!(get(0, "city"), Value::str("Edi"));
        assert_eq!(get(0, "phn"), Value::str("3256778"));
    }

    #[test]
    fn phases_are_cumulative() {
        let (_, _, rules, d, dm) = example_1_1();
        let uni = cleaner(&rules, &dm, 0.8);
        let c = uni.clean(&d, Phase::CRepair);
        let ce = uni.clean(&d, Phase::CERepair);
        let full = uni.clean(&d, Phase::Full);
        assert!(c.report.len() <= ce.report.len());
        assert!(ce.report.len() <= full.report.len());
        assert_eq!(c.phases.len(), 1);
        assert_eq!(ce.phases.len(), 2);
        assert_eq!(full.phases.len(), 3);
        // Deterministic fixes are identical across runs (later phases never
        // undo them).
        assert_eq!(
            c.report.count_final(FixMark::Deterministic),
            full.report
                .records()
                .iter()
                .filter(|r| r.mark == FixMark::Deterministic)
                .map(|r| (r.tuple, r.attr))
                .collect::<std::collections::HashSet<_>>()
                .len()
        );
        assert!(!c.consistent, "cRepair alone leaves violations here");
        assert!(full.consistent);
    }

    #[test]
    fn cost_is_zero_for_clean_input() {
        let tran = Schema::of_strings("tran", &["AC", "city"]);
        let parsed = parse_rules("cfd phi1: tran([AC=131] -> [city=Edi])", &tran, None).unwrap();
        let rules = RuleSet::cfds_only(tran.clone(), parsed.cfds);
        let d = Relation::new(tran, vec![Tuple::of_strs(&["131", "Edi"], 1.0)]);
        let uni = Cleaner::builder().rules(rules).build().unwrap();
        let r = uni.clean(&d, Phase::Full);
        assert_eq!(r.cost, 0.0);
        assert!(r.report.is_empty());
        assert!(r.consistent);
    }

    #[test]
    #[allow(deprecated)]
    #[should_panic(expected = "no master relation")]
    fn deprecated_shim_panics_on_mds_without_master() {
        let tran = Schema::of_strings("tran", &["LN", "phn"]);
        let card = Schema::of_strings("card", &["LN", "tel"]);
        let parsed = parse_rules(
            "md m: tran[LN] = card[LN] -> tran[phn] <=> card[tel]",
            &tran,
            Some(&card),
        )
        .unwrap();
        let rules = RuleSet::new(tran, Some(card), vec![], parsed.positive_mds, vec![]);
        UniClean::new(&rules, None, CleanConfig::default());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shim_matches_cleaner_output() {
        let (_, _, rules, d, dm) = example_1_1();
        let cfg = CleanConfig {
            eta: 0.8,
            ..CleanConfig::default()
        };
        let old = UniClean::new(&rules, Some(&dm), cfg.clone()).clean(&d, Phase::Full);
        let new = cleaner(&rules, &dm, 0.8).clean(&d, Phase::Full);
        assert_eq!(old.repaired.diff_cells(&new.repaired), 0);
        assert_eq!(old.report.len(), new.report.len());
        assert_eq!(old.cost, new.cost);
        assert_eq!(old.consistent, new.consistent);
    }
}

#[cfg(test)]
mod self_matching_tests {
    use super::*;
    use crate::session::MasterSource;
    use uniclean_model::{FixMark, Schema, Tuple, TupleId, Value};
    use uniclean_rules::parse_rules;

    fn self_cleaner(rules: &RuleSet, eta: f64) -> Cleaner {
        Cleaner::builder()
            .rules(rules.clone())
            .master(MasterSource::SelfSnapshot)
            .config(CleanConfig {
                eta,
                ..CleanConfig::default()
            })
            .build()
            .unwrap()
    }

    /// Duplicate records of one person inside D, no master data: the MD
    /// matches them against the self-snapshot and repairing still closes
    /// the loop (the paper's master-free contention).
    #[test]
    fn duplicates_within_d_are_reconciled_without_master() {
        let tran = Schema::of_strings("tran", &["LN", "city", "AC", "phn"]);
        let selfm = Schema::of_strings("tranm", &["LN", "city", "AC", "phn"]);
        let text = "cfd phi2: tran([AC=020] -> [city=Ldn])\n\
                    md psi: tran[LN] = tranm[LN] AND tran[city] = tranm[city] -> tran[phn] <=> tranm[phn]";
        let parsed = parse_rules(text, &tran, Some(&selfm)).unwrap();
        let rules = RuleSet::new(
            tran.clone(),
            Some(selfm),
            parsed.cfds,
            parsed.positive_mds,
            vec![],
        );

        // Record A: phone verified (cf 1), city wrong. Record B: city
        // verified, phone unknown.
        let phn = tran.attr_id_or_panic("phn");
        let city = tran.attr_id_or_panic("city");
        let mut a = Tuple::of_strs(&["Brady", "Edi", "020", "3887644"], 1.0);
        a.set(city, Value::str("Edi"), 0.0, FixMark::Untouched);
        let mut b = Tuple::of_strs(&["Brady", "Ldn", "020", "0000000"], 1.0);
        b.set(phn, Value::str("0000000"), 0.0, FixMark::Untouched);
        let d = Relation::new(tran.clone(), vec![a, b]);

        let r = self_cleaner(&rules, 0.8).clean(&d, Phase::Full);
        assert!(r.consistent, "self-matching repair must satisfy Σ and Γ");
        // ϕ2 fixes A's city; the self-MD then identifies the two records
        // and B adopts A's verified phone.
        assert_eq!(r.repaired.tuple(TupleId(0)).value(city), &Value::str("Ldn"));
        assert_eq!(
            r.repaired.tuple(TupleId(1)).value(phn),
            &Value::str("3887644")
        );
    }

    /// A tuple must never assert itself through its own snapshot copy.
    #[test]
    fn no_self_confirmation() {
        let tran = Schema::of_strings("tran", &["LN", "phn"]);
        let selfm = Schema::of_strings("tranm", &["LN", "phn"]);
        let parsed = parse_rules(
            "md psi: tran[LN] = tranm[LN] -> tran[phn] <=> tranm[phn]",
            &tran,
            Some(&selfm),
        )
        .unwrap();
        let rules = RuleSet::new(
            tran.clone(),
            Some(selfm),
            vec![],
            parsed.positive_mds,
            vec![],
        );
        let mut t = Tuple::of_strs(&["Brady", "123"], 1.0);
        let phn = tran.attr_id_or_panic("phn");
        t.set(phn, Value::str("123"), 0.0, FixMark::Untouched);
        let d = Relation::new(tran, vec![t]);
        let r = self_cleaner(&rules, 0.8).clean(&d, Phase::CRepair);
        assert!(r.report.is_empty());
        assert_eq!(
            r.repaired.tuple(TupleId(0)).cf(phn),
            0.0,
            "no circular assertion"
        );
    }

    /// The deprecated free function and the session produce byte-identical
    /// repairs.
    #[test]
    #[allow(deprecated)]
    fn deprecated_clean_without_master_matches_self_snapshot() {
        let tran = Schema::of_strings("tran", &["LN", "city", "AC", "phn"]);
        let selfm = Schema::of_strings("tranm", &["LN", "city", "AC", "phn"]);
        let text = "cfd phi2: tran([AC=020] -> [city=Ldn])\n\
                    md psi: tran[LN] = tranm[LN] AND tran[city] = tranm[city] -> tran[phn] <=> tranm[phn]";
        let parsed = parse_rules(text, &tran, Some(&selfm)).unwrap();
        let rules = RuleSet::new(
            tran.clone(),
            Some(selfm),
            parsed.cfds,
            parsed.positive_mds,
            vec![],
        );
        let phn = tran.attr_id_or_panic("phn");
        let mut a = Tuple::of_strs(&["Brady", "Edi", "020", "3887644"], 1.0);
        let city = tran.attr_id_or_panic("city");
        a.set(city, Value::str("Edi"), 0.0, FixMark::Untouched);
        let mut b = Tuple::of_strs(&["Brady", "Ldn", "020", "0000000"], 1.0);
        b.set(phn, Value::str("0000000"), 0.0, FixMark::Untouched);
        let d = Relation::new(tran.clone(), vec![a, b]);

        let cfg = CleanConfig {
            eta: 0.8,
            ..CleanConfig::default()
        };
        let old = clean_without_master(&rules, &d, cfg.clone(), Phase::Full);
        let new = self_cleaner(&rules, 0.8).clean(&d, Phase::Full);
        assert_eq!(old.repaired.diff_cells(&new.repaired), 0);
        assert_eq!(old.report.len(), new.report.len());
        assert_eq!(old.consistent, new.consistent);
    }
}
