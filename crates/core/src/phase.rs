//! The one phase type of the pipeline.
//!
//! Before 0.4 the crate carried two parallel enums: `pipeline::Phase`
//! (`CRepair` / `CERepair` / `Full` — "run the phases up to here") and
//! `session::PhaseKind` (`CRepair` / `ERepair` / `HRepair` — "which phase
//! is this"), plus hand-written index/label tables mapping between them.
//! They were the same three phases wearing two hats. [`Phase`] merges
//! them: a value names one phase of the fixed `cRepair → eRepair →
//! hRepair` order, and — used as a selector — means "run every phase up to
//! and including this one". The selector spellings [`Phase::CERepair`] and
//! [`Phase::Full`] remain available as associated constants, so value and
//! comparison call sites (`cleaner.clean(&d, Phase::Full)`,
//! `phase == Phase::Full`) compile unchanged. (The deprecated `PhaseKind`
//! alias that bridged the 0.4 migration was removed in 0.6 — spell it
//! [`Phase`].) Two caveats for migrators:
//! exhaustive `match`es over the old selector must switch to the variant
//! names (associated-constant patterns do not count toward exhaustiveness),
//! and `{:?}` prints the variant name (`Phase::Full` debugs as
//! `"HRepair"`).

/// One of the three cleaning phases — and, as a selector, the prefix of
/// the pipeline ending at that phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Deterministic fixes from confidence analysis (§5). As a selector:
    /// run `cRepair` only.
    CRepair,
    /// Reliable fixes from information entropy (§6). As a selector: run
    /// `cRepair` then `eRepair`.
    ERepair,
    /// Possible fixes via equivalence classes and the cost model (§7). As
    /// a selector: run all three phases.
    HRepair,
}

impl Phase {
    /// Selector spelling for "deterministic + reliable fixes"
    /// (`cRepair` + `eRepair`) — the same value as [`Phase::ERepair`].
    #[allow(non_upper_case_globals)] // keeps the pre-0.4 variant spelling
    pub const CERepair: Phase = Phase::ERepair;
    /// Selector spelling for the full pipeline — the same value as
    /// [`Phase::HRepair`].
    #[allow(non_upper_case_globals)] // keeps the pre-0.4 variant spelling
    pub const Full: Phase = Phase::HRepair;

    /// All phases in execution order.
    pub const ALL: [Phase; 3] = [Phase::CRepair, Phase::ERepair, Phase::HRepair];

    /// Stable display label (`"cRepair"`, `"eRepair"`, `"hRepair"`).
    pub fn label(self) -> &'static str {
        match self {
            Phase::CRepair => "cRepair",
            Phase::ERepair => "eRepair",
            Phase::HRepair => "hRepair",
        }
    }

    /// Position in the fixed phase order (0, 1, 2).
    pub fn index(self) -> usize {
        self as usize
    }

    /// The pipeline prefix this selector denotes: every phase up to and
    /// including `self`, in execution order.
    pub fn through(self) -> &'static [Phase] {
        &Phase::ALL[..=self.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selector_constants_alias_the_variants() {
        assert_eq!(Phase::CERepair, Phase::ERepair);
        assert_eq!(Phase::Full, Phase::HRepair);
    }

    #[test]
    fn through_yields_prefixes() {
        assert_eq!(Phase::CRepair.through(), &[Phase::CRepair]);
        assert_eq!(Phase::CERepair.through(), &[Phase::CRepair, Phase::ERepair]);
        assert_eq!(Phase::Full.through(), &Phase::ALL);
    }

    #[test]
    fn labels_and_indexes_are_stable() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        assert_eq!(Phase::CRepair.label(), "cRepair");
        assert_eq!(Phase::ERepair.label(), "eRepair");
        assert_eq!(Phase::HRepair.label(), "hRepair");
    }
}
