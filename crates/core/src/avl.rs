//! An AVL tree keyed by (entropy, group id) — the ordered half of the
//! 2-in-1 structure of §6.3.
//!
//! "For each ȳ with entropy H(ϕ|Y = ȳ) ≠ 0, we create a node v in T … for
//! each node v in T, its left child vl.ǫ ≤ v.ǫ and its right child
//! vr.ǫ ≥ v.ǫ." The tree supports O(log n) insert/remove and ordered
//! traversal from the minimum-entropy conflict set upward, which is how
//! `eRepair` picks the most certain conflicts first.
//!
//! Built from scratch (no `BTreeMap`) as the paper specifies an AVL tree;
//! the property tests validate it against a sorted-vector oracle.

use std::cmp::Ordering;

/// Tree key: entropy plus a disambiguating group id.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EntropyKey {
    /// The entropy value (finite, non-negative).
    pub entropy: f64,
    /// Stable identifier of the conflict set.
    pub id: u64,
}

impl EntropyKey {
    fn cmp_key(&self, other: &EntropyKey) -> Ordering {
        self.entropy
            .partial_cmp(&other.entropy)
            .expect("entropy is never NaN")
            .then(self.id.cmp(&other.id))
    }
}

#[derive(Clone)]
struct Node {
    key: EntropyKey,
    height: i32,
    left: Option<Box<Node>>,
    right: Option<Box<Node>>,
}

impl Node {
    fn new(key: EntropyKey) -> Box<Node> {
        Box::new(Node {
            key,
            height: 1,
            left: None,
            right: None,
        })
    }
}

fn height(n: &Option<Box<Node>>) -> i32 {
    n.as_ref().map_or(0, |x| x.height)
}

fn update(n: &mut Box<Node>) {
    n.height = 1 + height(&n.left).max(height(&n.right));
}

fn balance_factor(n: &Node) -> i32 {
    height(&n.left) - height(&n.right)
}

fn rotate_right(mut n: Box<Node>) -> Box<Node> {
    let mut l = n.left.take().expect("rotate_right needs a left child");
    n.left = l.right.take();
    update(&mut n);
    l.right = Some(n);
    update(&mut l);
    l
}

fn rotate_left(mut n: Box<Node>) -> Box<Node> {
    let mut r = n.right.take().expect("rotate_left needs a right child");
    n.right = r.left.take();
    update(&mut n);
    r.left = Some(n);
    update(&mut r);
    r
}

fn rebalance(mut n: Box<Node>) -> Box<Node> {
    update(&mut n);
    let bf = balance_factor(&n);
    if bf > 1 {
        if balance_factor(n.left.as_ref().expect("bf>1 implies left")) < 0 {
            n.left = Some(rotate_left(n.left.take().expect("left")));
        }
        return rotate_right(n);
    }
    if bf < -1 {
        if balance_factor(n.right.as_ref().expect("bf<-1 implies right")) > 0 {
            n.right = Some(rotate_right(n.right.take().expect("right")));
        }
        return rotate_left(n);
    }
    n
}

fn insert_node(n: Option<Box<Node>>, key: EntropyKey) -> (Box<Node>, bool) {
    match n {
        None => (Node::new(key), true),
        Some(mut node) => {
            let added = match key.cmp_key(&node.key) {
                Ordering::Less => {
                    let (child, added) = insert_node(node.left.take(), key);
                    node.left = Some(child);
                    added
                }
                Ordering::Greater => {
                    let (child, added) = insert_node(node.right.take(), key);
                    node.right = Some(child);
                    added
                }
                Ordering::Equal => false, // duplicate (same id & entropy)
            };
            (rebalance(node), added)
        }
    }
}

fn remove_node(n: Option<Box<Node>>, key: &EntropyKey) -> (Option<Box<Node>>, bool) {
    match n {
        None => (None, false),
        Some(mut node) => match key.cmp_key(&node.key) {
            Ordering::Less => {
                let (child, removed) = remove_node(node.left.take(), key);
                node.left = child;
                (Some(rebalance(node)), removed)
            }
            Ordering::Greater => {
                let (child, removed) = remove_node(node.right.take(), key);
                node.right = child;
                (Some(rebalance(node)), removed)
            }
            Ordering::Equal => match (node.left.take(), node.right.take()) {
                (None, None) => (None, true),
                (Some(l), None) => (Some(l), true),
                (None, Some(r)) => (Some(r), true),
                (Some(l), Some(r)) => {
                    // Replace with the in-order successor (min of right).
                    let (r, succ) = pop_min(r);
                    node.key = succ;
                    node.left = Some(l);
                    node.right = r;
                    (Some(rebalance(node)), true)
                }
            },
        },
    }
}

fn pop_min(mut n: Box<Node>) -> (Option<Box<Node>>, EntropyKey) {
    if let Some(l) = n.left.take() {
        let (rest, min) = pop_min(l);
        n.left = rest;
        (Some(rebalance(n)), min)
    } else {
        (n.right.take(), n.key)
    }
}

/// The AVL tree.
#[derive(Clone, Default)]
pub struct AvlTree {
    root: Option<Box<Node>>,
    len: usize,
}

impl AvlTree {
    /// An empty tree.
    pub fn new() -> Self {
        AvlTree::default()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the tree empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert a key; returns false if it was already present.
    pub fn insert(&mut self, key: EntropyKey) -> bool {
        let (root, added) = insert_node(self.root.take(), key);
        self.root = Some(root);
        if added {
            self.len += 1;
        }
        added
    }

    /// Remove a key; returns false if it was absent.
    pub fn remove(&mut self, key: &EntropyKey) -> bool {
        let (root, removed) = remove_node(self.root.take(), key);
        self.root = root;
        if removed {
            self.len -= 1;
        }
        removed
    }

    /// The minimum-entropy key, if any — `eRepair`'s next conflict set.
    pub fn min(&self) -> Option<EntropyKey> {
        let mut cur = self.root.as_ref()?;
        while let Some(l) = cur.left.as_ref() {
            cur = l;
        }
        Some(cur.key)
    }

    /// In-order traversal collecting keys with `entropy < bound`.
    pub fn below(&self, bound: f64) -> Vec<EntropyKey> {
        let mut out = Vec::new();
        fn walk(n: &Option<Box<Node>>, bound: f64, out: &mut Vec<EntropyKey>) {
            if let Some(node) = n {
                walk(&node.left, bound, out);
                if node.key.entropy < bound {
                    out.push(node.key);
                    walk(&node.right, bound, out);
                }
                // If this node is ≥ bound, the right subtree is all ≥ too.
            }
        }
        walk(&self.root, bound, &mut out);
        out
    }

    /// All keys in order (diagnostics/tests).
    pub fn in_order(&self) -> Vec<EntropyKey> {
        self.below(f64::INFINITY)
    }

    /// Verify AVL invariants (test helper): balance factors in {-1,0,1} and
    /// in-order keys sorted.
    pub fn check_invariants(&self) -> Result<(), String> {
        fn check(n: &Option<Box<Node>>) -> Result<i32, String> {
            let Some(node) = n else { return Ok(0) };
            let lh = check(&node.left)?;
            let rh = check(&node.right)?;
            if (lh - rh).abs() > 1 {
                return Err(format!("unbalanced at id {}", node.key.id));
            }
            if node.height != 1 + lh.max(rh) {
                return Err(format!("stale height at id {}", node.key.id));
            }
            Ok(1 + lh.max(rh))
        }
        check(&self.root)?;
        let keys = self.in_order();
        for w in keys.windows(2) {
            if w[0].cmp_key(&w[1]) != Ordering::Less {
                return Err("in-order keys not strictly increasing".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn k(e: f64, id: u64) -> EntropyKey {
        EntropyKey { entropy: e, id }
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut t = AvlTree::new();
        assert!(t.insert(k(0.5, 1)));
        assert!(t.insert(k(0.2, 2)));
        assert!(t.insert(k(0.8, 3)));
        assert!(!t.insert(k(0.5, 1)), "duplicate rejected");
        assert_eq!(t.len(), 3);
        assert_eq!(t.min().unwrap().id, 2);
        assert!(t.remove(&k(0.2, 2)));
        assert!(!t.remove(&k(0.2, 2)));
        assert_eq!(t.min().unwrap().id, 1);
        assert_eq!(t.len(), 2);
        t.check_invariants().unwrap();
    }

    #[test]
    fn below_returns_prefix_under_bound() {
        let mut t = AvlTree::new();
        for (i, e) in [0.9, 0.1, 0.5, 0.3, 0.7].into_iter().enumerate() {
            t.insert(k(e, i as u64));
        }
        let under = t.below(0.5);
        let es: Vec<f64> = under.iter().map(|x| x.entropy).collect();
        assert_eq!(es, vec![0.1, 0.3]);
    }

    #[test]
    fn equal_entropies_are_distinguished_by_id() {
        let mut t = AvlTree::new();
        assert!(t.insert(k(0.5, 1)));
        assert!(t.insert(k(0.5, 2)));
        assert_eq!(t.len(), 2);
        assert!(t.remove(&k(0.5, 1)));
        assert_eq!(t.in_order(), vec![k(0.5, 2)]);
    }

    #[test]
    fn sequential_inserts_stay_balanced() {
        let mut t = AvlTree::new();
        for i in 0..1000u64 {
            t.insert(k(i as f64 / 1000.0, i));
        }
        t.check_invariants().unwrap();
        assert_eq!(t.len(), 1000);
        assert_eq!(t.min().unwrap().id, 0);
    }

    #[test]
    fn empty_tree_behaviour() {
        let mut t = AvlTree::new();
        assert!(t.is_empty());
        assert_eq!(t.min(), None);
        assert!(!t.remove(&k(0.1, 1)));
        assert!(t.below(1.0).is_empty());
    }

    proptest! {
        /// Random insert/remove sequences agree with a sorted-vector oracle
        /// and keep the AVL invariants.
        #[test]
        fn agrees_with_oracle(ops in proptest::collection::vec((0u8..2, 0u64..40, 0u32..100), 1..200)) {
            let mut t = AvlTree::new();
            let mut oracle: Vec<EntropyKey> = Vec::new();
            for (op, id, e100) in ops {
                let key = k(e100 as f64 / 100.0, id);
                if op == 0 {
                    let added = t.insert(key);
                    let oracle_has = oracle.iter().any(|x| x.cmp_key(&key) == Ordering::Equal);
                    prop_assert_eq!(added, !oracle_has);
                    if added { oracle.push(key); }
                } else {
                    let removed = t.remove(&key);
                    let pos = oracle.iter().position(|x| x.cmp_key(&key) == Ordering::Equal);
                    prop_assert_eq!(removed, pos.is_some());
                    if let Some(p) = pos { oracle.remove(p); }
                }
                t.check_invariants().map_err(TestCaseError::fail)?;
                prop_assert_eq!(t.len(), oracle.len());
                oracle.sort_by(|a, b| a.cmp_key(b));
                let got: Vec<u64> = t.in_order().iter().map(|x| x.id).collect();
                let want: Vec<u64> = oracle.iter().map(|x| x.id).collect();
                prop_assert_eq!(got, want);
            }
        }
    }
}
