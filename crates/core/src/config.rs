//! Tuning knobs of the UniClean pipeline.

/// Thresholds and limits for the three cleaning phases.
///
/// Paper defaults (§8, "Experimental Setting" / "Experimental Results"): the
/// confidence threshold was 1.0 and the entropy threshold 0.8 in the
/// evaluation; `l ≤ 20` sufficed for blocking.
#[derive(Clone, Debug)]
pub struct CleanConfig {
    /// Confidence threshold `η`: a cell is *asserted* (assumed correct) when
    /// `cf ≥ η`; deterministic fixes only fire from fully asserted premises
    /// (§5.1).
    pub eta: f64,
    /// Update threshold `δ1`: `eRepair` stops touching a cell once it has
    /// been changed this many times ("not often changed by rules that may
    /// not converge on its value", §6.2).
    pub delta_update: usize,
    /// Entropy threshold `δ2`: a variable-CFD conflict set is resolved only
    /// when `H(ϕ|Y=ȳ) < δ2` (§6.2).
    pub delta_entropy: f64,
    /// Blocking constant `l` for top-`l` LCS retrieval from master data
    /// (§5.2).
    pub blocking_l: usize,
    /// Safety cap on `eRepair` outer rounds (the δ1 counters already bound
    /// the work; this guards against pathological rule sets).
    pub max_erepair_rounds: usize,
    /// Safety cap on `hRepair` resolution rounds (termination is guaranteed
    /// by the ␣→const→null upgrade order, §7; this is a backstop).
    pub max_hrepair_rounds: usize,
    /// Master-free mode (§1/§9): the master relation is a positional
    /// snapshot of the data itself, so MD evaluation must skip the tuple's
    /// own master row — a stale self copy would otherwise witness against
    /// every fresh fix. Set by [`crate::pipeline::clean_without_master`].
    pub self_match: bool,
}

impl Default for CleanConfig {
    fn default() -> Self {
        CleanConfig {
            eta: 1.0,
            delta_update: 2,
            delta_entropy: 0.8,
            blocking_l: 20,
            max_erepair_rounds: 10,
            max_hrepair_rounds: 50,
            self_match: false,
        }
    }
}

impl CleanConfig {
    /// Validate threshold ranges; call before a run.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.eta) {
            return Err(format!("eta must be in [0,1], got {}", self.eta));
        }
        if !(0.0..=1.0).contains(&self.delta_entropy) {
            return Err(format!("delta_entropy must be in [0,1], got {}", self.delta_entropy));
        }
        if self.blocking_l == 0 {
            return Err("blocking_l must be at least 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = CleanConfig::default();
        assert_eq!(c.eta, 1.0);
        assert_eq!(c.delta_entropy, 0.8);
        assert!(c.blocking_l <= 20);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn out_of_range_thresholds_rejected() {
        let c = CleanConfig { eta: 1.5, ..CleanConfig::default() };
        assert!(c.validate().is_err());
        let c = CleanConfig { delta_entropy: -0.1, ..CleanConfig::default() };
        assert!(c.validate().is_err());
        let c = CleanConfig { blocking_l: 0, ..CleanConfig::default() };
        assert!(c.validate().is_err());
    }
}
