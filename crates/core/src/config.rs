//! Tuning knobs of the UniClean pipeline.

use std::num::NonZeroUsize;

use crate::error::ConfigError;

/// Thresholds and limits for the three cleaning phases.
///
/// Paper defaults (§8, "Experimental Setting" / "Experimental Results"): the
/// confidence threshold was 1.0 and the entropy threshold 0.8 in the
/// evaluation. (The paper's blocking constant `l` is gone: edit-distance
/// premises are now served by a complete q-gram count filter with no
/// truncation knob.)
#[derive(Clone, Debug)]
pub struct CleanConfig {
    /// Confidence threshold `η`: a cell is *asserted* (assumed correct) when
    /// `cf ≥ η`; deterministic fixes only fire from fully asserted premises
    /// (§5.1).
    pub eta: f64,
    /// Update threshold `δ1`: `eRepair` stops touching a cell once it has
    /// been changed this many times ("not often changed by rules that may
    /// not converge on its value", §6.2).
    pub delta_update: usize,
    /// Entropy threshold `δ2`: a variable-CFD conflict set is resolved only
    /// when `H(ϕ|Y=ȳ) < δ2` (§6.2).
    pub delta_entropy: f64,
    /// Safety cap on `eRepair` outer rounds (the δ1 counters already bound
    /// the work; this guards against pathological rule sets).
    pub max_erepair_rounds: usize,
    /// Safety cap on `hRepair` resolution rounds (termination is guaranteed
    /// by the ␣→const→null upgrade order, §7; this is a backstop).
    pub max_hrepair_rounds: usize,
    /// Master-free mode (§1/§9): the master relation is a positional
    /// snapshot of the data itself, so MD evaluation must skip the tuple's
    /// own master row — a stale self copy would otherwise witness against
    /// every fresh fix. Set by [`crate::pipeline::clean_without_master`].
    pub self_match: bool,
    /// Worker threads for the parallel phase internals (MD premise
    /// verification, 2-in-1 structure construction). `None` uses every
    /// available core; `1` runs the phases exactly as the single-threaded
    /// path does. Output is bit-identical for every setting — see the
    /// chunk–merge–apply design in [`crate::parallel`].
    pub parallelism: Option<NonZeroUsize>,
    /// Intern cell values into dense `u32` symbols
    /// ([`uniclean_model::ValueInterner`]) so the hottest hash keys —
    /// 2-in-1 group projections and master-index exact lookups — hash and
    /// compare in O(1). Purely an optimization: results are identical
    /// either way. Off exists for benchmarking the win.
    pub interning: bool,
}

impl Default for CleanConfig {
    fn default() -> Self {
        CleanConfig {
            eta: 1.0,
            delta_update: 2,
            delta_entropy: 0.8,
            max_erepair_rounds: 10,
            max_hrepair_rounds: 50,
            self_match: false,
            parallelism: None,
            interning: true,
        }
    }
}

impl CleanConfig {
    /// The worker count the phases will actually use: the
    /// [`parallelism`](Self::parallelism) knob, or all available cores.
    pub fn effective_parallelism(&self) -> usize {
        crate::parallel::effective_parallelism(self.parallelism)
    }

    /// Validate thresholds and limits; [`crate::CleanerBuilder::build`]
    /// runs this before any cleaning can start.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (field, value) in [("eta", self.eta), ("delta_entropy", self.delta_entropy)] {
            if !value.is_finite() {
                return Err(ConfigError::NonFinite { field, value });
            }
            if !(0.0..=1.0).contains(&value) {
                return Err(ConfigError::OutOfRange { field, value });
            }
        }
        for (field, value) in [
            ("max_erepair_rounds", self.max_erepair_rounds),
            ("max_hrepair_rounds", self.max_hrepair_rounds),
        ] {
            if value == 0 {
                return Err(ConfigError::ZeroLimit { field });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = CleanConfig::default();
        assert_eq!(c.eta, 1.0);
        assert_eq!(c.delta_entropy, 0.8);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn out_of_range_thresholds_rejected() {
        let c = CleanConfig {
            eta: 1.5,
            ..CleanConfig::default()
        };
        assert_eq!(
            c.validate(),
            Err(ConfigError::OutOfRange {
                field: "eta",
                value: 1.5
            })
        );
        let c = CleanConfig {
            delta_entropy: -0.1,
            ..CleanConfig::default()
        };
        assert_eq!(
            c.validate(),
            Err(ConfigError::OutOfRange {
                field: "delta_entropy",
                value: -0.1
            })
        );
    }

    #[test]
    fn non_finite_thresholds_rejected() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let c = CleanConfig {
                eta: bad,
                ..CleanConfig::default()
            };
            assert!(
                matches!(
                    c.validate(),
                    Err(ConfigError::NonFinite { field: "eta", .. })
                ),
                "{bad}"
            );
            let c = CleanConfig {
                delta_entropy: bad,
                ..CleanConfig::default()
            };
            assert!(
                matches!(
                    c.validate(),
                    Err(ConfigError::NonFinite {
                        field: "delta_entropy",
                        ..
                    })
                ),
                "{bad}"
            );
        }
    }

    #[test]
    fn zero_round_caps_rejected() {
        let c = CleanConfig {
            max_erepair_rounds: 0,
            ..CleanConfig::default()
        };
        assert_eq!(
            c.validate(),
            Err(ConfigError::ZeroLimit {
                field: "max_erepair_rounds"
            })
        );
        let c = CleanConfig {
            max_hrepair_rounds: 0,
            ..CleanConfig::default()
        };
        assert_eq!(
            c.validate(),
            Err(ConfigError::ZeroLimit {
                field: "max_hrepair_rounds"
            })
        );
    }
}
