//! Incremental cleaning: a persistent [`RepairState`] plus
//! [`Cleaner::clean_delta`].
//!
//! A long-lived service does not receive whole relations — it receives a
//! relation once and then *batches of appended tuples*. Re-running the
//! unified fixpoint from scratch on every batch throws away everything the
//! previous run learned. This module keeps that knowledge alive:
//!
//! * the **`cRepair` fixpoint** ([`CFixpoint`]) persists between calls.
//!   `cRepair` is a monotone, write-once inference whose outcome is
//!   independent of rule-application order (§5.2), so appending a batch
//!   and *continuing* the old fixpoint — seeding only the new tuples — is
//!   a legal application order of the from-scratch run over the
//!   concatenated relation. Cost: O(batch + cascade), not O(|D|).
//! * the **2-in-1 structure** persists pinned to the post-`cRepair`
//!   state: batch tuples enter by insert-time group/entropy deltas
//!   ([`TwoInOne::insert_tuples`]), never by rebuild, and each `eRepair`
//!   run works on a clone.
//! * the **MD witness cache** persists across calls
//!   ([`MdMatchCache::begin_run`]): premises untouched by any repair are
//!   never re-verified — re-verification is targeted at exactly the
//!   tuples whose cells the batch or its cascade rewrote.
//! * the **acceptance check** (`Dr ⊨ Σ`, `(Dr, Dm) ⊨ Γ`) — the single
//!   most expensive part of a full `clean` call on MD-heavy workloads, an
//!   O(|D|·|Dm|) scan — is maintained by [`ConsistencyIndex`]: per-tuple
//!   MD verdicts and per-group CFD counters updated from the diff of the
//!   final relations, so a delta call re-verifies only changed tuples.
//!
//! **Escalation.** The continuation is only kept when it provably equals
//! the from-scratch run. A batch cascade that *repairs previously settled
//! tuples* is still legal (any application order yields the same fixes) —
//! the state keeps those writes and refreshes the structures pinned to
//! the old post-`cRepair` relation. What cannot be reproduced by a
//! continuation is *conflicting asserted evidence racing for one cell*
//! (the one order-dependent situation in `cRepair`): the [`CGuard`]
//! detects it and the state falls back to a full reclean of the
//! concatenated relation. The [`MasterSource::SelfSnapshot`] mode always
//! escalates — its master view is the evolving data itself, so nothing
//! prepared can be reused.
//!
//! **Contract.** `clean` + repeated `clean_delta` leaves the state's
//! repaired relation bit-identical — cell values, confidences and marks —
//! to a from-scratch [`Cleaner::clean`] over the concatenated input, along
//! with the same cost and acceptance verdict (`tests/incremental.rs` pins
//! this with a property test across parallelism and interning settings).
//! The `eRepair`/`hRepair` phases re-derive their fixes from the persisted
//! post-`cRepair` state on every call (their decisions are global); the
//! warm caches cover `cRepair`'s and `eRepair`'s MD premise verification
//! and the acceptance scan. `hRepair` still recomputes its own witness
//! lists per round (uncached today), so on `Phase::Full` states a delta
//! call's floor is one `hRepair` pass over the relation.

use std::sync::Arc;
use std::time::Instant;

use uniclean_model::{repair_cost, FxHashMap, Relation, Row, Tuple, TupleId, Value};
use uniclean_rules::{Md, RuleSet};

use crate::crepair::{c_run, CFixpoint, CGuard};
use crate::erepair::e_run;
use crate::error::CleanError;
use crate::fix::FixReport;
use crate::hrepair::h_repair;
use crate::md_cache::MdMatchCache;
use crate::phase::Phase;
use crate::pipeline::CleanResult;
use crate::session::{
    run_phases, Cleaner, MasterSource, NoOpObserver, PhaseObserver, PhaseStats, PreparedCleaner,
};
use crate::two_in_one::TwoInOne;

/// Per-relation structures stashed while [`run_phases`] passes through
/// them (capturing only clones — the run itself is unchanged).
#[derive(Default)]
pub(crate) struct StateCapture {
    /// The relation right after `cRepair`.
    pub(crate) post_c: Option<Relation>,
    /// The live `cRepair` fixpoint machine.
    pub(crate) cfix: Option<CFixpoint>,
    /// The 2-in-1 structure pinned to the post-`cRepair` state.
    pub(crate) two: Option<TwoInOne>,
    /// The `eRepair` witness cache (volatile entries tracked).
    pub(crate) e_cache: Option<MdMatchCache>,
}

/// The persistent, per-relation state of an incremental cleaning session.
///
/// Created by [`Cleaner::begin`], advanced by [`Cleaner::clean_delta`].
/// Owns the concatenated original input, the current repair, the live
/// `cRepair` fixpoint, the post-`cRepair` 2-in-1 structure, warm witness
/// caches and the incremental acceptance index.
pub struct RepairState {
    pub(crate) prepared: Arc<PreparedCleaner>,
    phase: Phase,
    /// Concatenated original (dirty) input — the §3.1 cost baseline and
    /// the escalation input.
    base: Relation,
    /// The `cRepair` fixpoint of `base`, evolved in place by
    /// continuations.
    post_c: Relation,
    /// The current repair (last call's output).
    repaired: Relation,
    cfix: Option<CFixpoint>,
    two: Option<TwoInOne>,
    e_cache: Option<MdMatchCache>,
    cons: ConsistencyIndex,
    consistent: bool,
    cost: f64,
    /// Every fix applied across the session, in application order
    /// (re-derived `eRepair`/`hRepair` fixes appear once per call).
    log: FixReport,
    escalations: usize,
    deltas: usize,
}

impl RepairState {
    /// The current repaired relation.
    pub fn repaired(&self) -> &Relation {
        &self.repaired
    }

    /// The concatenated original input the state has absorbed.
    pub fn base(&self) -> &Relation {
        &self.base
    }

    /// Tuples currently covered.
    pub fn len(&self) -> usize {
        self.base.len()
    }

    /// Is the state empty?
    pub fn is_empty(&self) -> bool {
        self.base.is_empty()
    }

    /// Does the current repair satisfy `Σ` and `Γ`?
    pub fn consistent(&self) -> bool {
        self.consistent
    }

    /// `cost(Dr, D)` over the concatenated input (§3.1 model).
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// The phase prefix this state runs (fixed at [`Cleaner::begin`]).
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Cumulative fix log across the initial clean and every delta call.
    pub fn log(&self) -> &FixReport {
        &self.log
    }

    /// How many `clean_delta` calls fell back to a full reclean.
    pub fn escalations(&self) -> usize {
        self.escalations
    }

    /// How many `clean_delta` calls this state has absorbed.
    pub fn deltas(&self) -> usize {
        self.deltas
    }

    /// Is tuple `tid` of the current repair accepted — does it violate no
    /// CFD and no MD? The per-tuple slice of [`RepairState::consistent`]:
    /// the relation-level verdict holds exactly when every tuple is
    /// accepted. Served from the maintained acceptance index, **without
    /// running a phase**: the CFD half reads the live group counters, the
    /// MD half reads the materialized per-tuple verdicts when present and
    /// falls back to one targeted master scan for this tuple otherwise.
    ///
    /// A tuple in a variable-CFD group holding two distinct non-null RHS
    /// values is rejected along with the whole group — group violations
    /// are attributed to every member, since repairing any of them could
    /// resolve the clash.
    ///
    /// Panics if `tid` is out of range (callers serving untrusted ids
    /// should bound-check against [`RepairState::len`] first).
    ///
    /// ```
    /// use uniclean_core::{Cleaner, Phase};
    /// use uniclean_model::{Relation, Schema, Tuple, TupleId};
    /// use uniclean_rules::{parse_rules, RuleSet};
    ///
    /// let s = Schema::of_strings("tran", &["AC", "city"]);
    /// let parsed = parse_rules("cfd phi1: tran([AC=131] -> [city=Edi])", &s, None).unwrap();
    /// let rules = RuleSet::cfds_only(s.clone(), parsed.cfds);
    /// let cleaner = Cleaner::builder().rules(rules).build().unwrap();
    ///
    /// // cRepair alone cannot touch this low-confidence cell, so the
    /// // violation survives into the repair — and the index reports it.
    /// let d = Relation::new(s, vec![Tuple::of_strs(&["131", "Ldn"], 0.0)]);
    /// let (state, result) = cleaner.begin(&d, Phase::CRepair);
    /// assert!(!result.consistent);
    /// assert!(!state.is_accepted(TupleId(0)));
    /// assert_eq!(state.violations(TupleId(0))[0].rule, "phi1");
    /// ```
    pub fn is_accepted(&self, tid: TupleId) -> bool {
        let rules = self.prepared.rules();
        let t = self.repaired.tuple(tid);
        if !self.cons.tuple_cfd_ok(rules, t) {
            return false;
        }
        if rules.mds().is_empty() {
            return true;
        }
        if let Some(ok) = self.cons.tuple_md_ok_cached(tid) {
            return ok;
        }
        let mut storage = None;
        let dm = self
            .prepared
            .acceptance_master(&self.repaired, &mut storage);
        md_tuple_ok(rules, self.cons.premise_orders(), t, dm)
    }

    /// The rules rejecting tuple `tid` of the current repair — empty
    /// exactly when [`RepairState::is_accepted`] holds. Like
    /// `is_accepted`, answered online from the acceptance index plus (for
    /// MDs) one targeted scan of the master view for this tuple; no phase
    /// runs. Rules appear in declaration order, CFDs before MDs.
    ///
    /// ```
    /// use uniclean_core::{Cleaner, Phase, ViolationKind};
    /// use uniclean_model::{Relation, Schema, Tuple, TupleId};
    /// use uniclean_rules::{parse_rules, RuleSet};
    ///
    /// let s = Schema::of_strings("tran", &["AC", "city"]);
    /// let parsed = parse_rules("cfd phi1: tran([AC] -> [city])", &s, None).unwrap();
    /// let rules = RuleSet::cfds_only(s.clone(), parsed.cfds);
    /// let cleaner = Cleaner::builder().rules(rules).build().unwrap();
    ///
    /// // Two equally-confident witnesses for one area code: cRepair
    /// // cannot decide, so both group members stay in violation.
    /// let d = Relation::new(
    ///     s,
    ///     vec![
    ///         Tuple::of_strs(&["131", "Edi"], 0.0),
    ///         Tuple::of_strs(&["131", "Ldn"], 0.0),
    ///     ],
    /// );
    /// let (state, _) = cleaner.begin(&d, Phase::CRepair);
    /// let v = state.violations(TupleId(1));
    /// assert_eq!(v.len(), 1);
    /// assert_eq!(v[0].rule, "phi1");
    /// assert_eq!(v[0].kind, ViolationKind::VariableCfd);
    /// ```
    pub fn violations(&self, tid: TupleId) -> Vec<TupleViolation> {
        let rules = self.prepared.rules();
        let t = self.repaired.tuple(tid);
        let mut out = self.cons.tuple_cfd_violations(rules, t);
        if !rules.mds().is_empty() {
            let mut storage = None;
            let dm = self
                .prepared
                .acceptance_master(&self.repaired, &mut storage);
            for (md, order) in rules.mds().iter().zip(self.cons.premise_orders()) {
                if !md_single_ok(md, order, t, dm) {
                    out.push(TupleViolation {
                        rule: md.name().to_string(),
                        kind: ViolationKind::Md,
                    });
                }
            }
        }
        out
    }
}

/// Which rule family rejected a tuple (see [`RepairState::violations`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// A constant CFD: the tuple matches the LHS pattern but not the RHS
    /// constant.
    ConstantCfd,
    /// A variable CFD: the tuple's LHS group holds two or more distinct
    /// non-null RHS values (the violation is attributed to every group
    /// member).
    VariableCfd,
    /// An MD: some master tuple matches every premise but disagrees on
    /// the RHS attribute.
    Md,
}

/// One rule rejecting one tuple, as reported by
/// [`RepairState::violations`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TupleViolation {
    /// Name of the violated rule (as written in the rule text).
    pub rule: String,
    /// Which rule family it belongs to.
    pub kind: ViolationKind,
}

impl std::fmt::Debug for RepairState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RepairState")
            .field("tuples", &self.base.len())
            .field("phase", &self.phase)
            .field("consistent", &self.consistent)
            .field("deltas", &self.deltas)
            .field("escalations", &self.escalations)
            .finish_non_exhaustive()
    }
}

impl Cleaner {
    /// Clean `d` and keep the session state alive for incremental
    /// [`Cleaner::clean_delta`] calls. The returned state's repair equals
    /// [`Cleaner::clean`] on `d` exactly.
    ///
    /// ```
    /// use uniclean_core::{Cleaner, CleanConfig, Phase};
    /// use uniclean_model::{Relation, Schema, Tuple};
    /// use uniclean_rules::{parse_rules, RuleSet};
    ///
    /// let s = Schema::of_strings("tran", &["AC", "city"]);
    /// let parsed = parse_rules("cfd phi1: tran([AC=131] -> [city=Edi])", &s, None).unwrap();
    /// let rules = RuleSet::cfds_only(s.clone(), parsed.cfds);
    /// let cleaner = Cleaner::builder().rules(rules).build().unwrap();
    ///
    /// let d = Relation::new(s, vec![Tuple::of_strs(&["131", "Ldn"], 0.5)]);
    /// let (mut state, first) = cleaner.begin(&d, Phase::Full);
    /// assert!(first.consistent);
    ///
    /// // A batch arrives: only the new tuples are cleaned.
    /// let batch = vec![Tuple::of_strs(&["131", "Lds"], 0.5)];
    /// let next = cleaner.clean_delta(&mut state, &batch).unwrap();
    /// assert_eq!(next.repaired.len(), 2);
    /// assert!(next.consistent);
    /// ```
    pub fn begin(&self, d: &Relation, phase: Phase) -> (RepairState, CleanResult) {
        self.begin_observed(d, phase, &mut NoOpObserver)
    }

    /// [`Cleaner::begin`] with a [`PhaseObserver`] receiving per-phase
    /// timing and fix counts as the initial clean progresses.
    pub fn begin_observed(
        &self,
        d: &Relation,
        phase: Phase,
        observer: &mut dyn PhaseObserver,
    ) -> (RepairState, CleanResult) {
        full_clean(self.prepared().clone(), d.clone(), phase, 0, 0, observer)
    }

    /// A [`RepairState`] over **zero tuples** — the serving shape, where a
    /// relation is registered first and fed purely by
    /// [`Cleaner::clean_delta`] batches. Equivalent to
    /// [`Cleaner::begin`] on an empty relation of the session's data
    /// schema; the pinned contract (`tests/incremental.rs`) is that
    /// `begin_empty` + `clean_delta(batch)` leaves the state bit-identical
    /// to `begin(batch)`.
    ///
    /// ```
    /// use uniclean_core::{Cleaner, Phase};
    /// use uniclean_model::{Relation, Schema, Tuple};
    /// use uniclean_rules::{parse_rules, RuleSet};
    ///
    /// let s = Schema::of_strings("tran", &["AC", "city"]);
    /// let parsed = parse_rules("cfd phi1: tran([AC=131] -> [city=Edi])", &s, None).unwrap();
    /// let rules = RuleSet::cfds_only(s.clone(), parsed.cfds);
    /// let cleaner = Cleaner::builder().rules(rules).build().unwrap();
    ///
    /// let mut state = cleaner.begin_empty(Phase::Full);
    /// assert!(state.is_empty());
    /// assert!(state.consistent());
    ///
    /// let batch = vec![Tuple::of_strs(&["131", "Ldn"], 0.5)];
    /// let result = cleaner.clean_delta(&mut state, &batch).unwrap();
    /// assert!(result.consistent);
    /// assert_eq!(state.len(), 1);
    /// ```
    pub fn begin_empty(&self, phase: Phase) -> RepairState {
        let base = Relation::empty(self.prepared().rules().schema().clone());
        full_clean(
            self.prepared().clone(),
            base,
            phase,
            0,
            0,
            &mut NoOpObserver,
        )
        .0
    }

    /// Absorb a batch of appended tuples into `state` incrementally.
    ///
    /// The appended tuples are cleaned *against* the existing state: the
    /// persisted `cRepair` fixpoint continues over them, the 2-in-1
    /// structures extend by insert-time deltas, and MD/CFD premises are
    /// re-verified only where the batch (or its cascade) touched them.
    /// When a batch repair invalidates previously settled tuples the call
    /// transparently escalates to a full reclean of the concatenated
    /// relation (see [`RepairState::escalations`]).
    ///
    /// After the call, `state.repaired()` is **bit-identical** to
    /// `self.clean(&concatenated, state.phase()).repaired` — same values,
    /// confidences and marks, same cost and acceptance verdict. The
    /// returned [`CleanResult`] reports the fixes this call applied (on
    /// the fast path: the batch's deterministic cascade plus the
    /// re-derived reliable/possible fixes).
    ///
    /// Errors: [`CleanError::ForeignState`] when `state` was produced by a
    /// different [`Cleaner`]; [`CleanError::BatchArityMismatch`] when a
    /// batch tuple does not fit the data schema;
    /// [`CleanError::Model`] when a batch cell carries a confidence
    /// outside `[0, 1]` (validated in release builds too).
    ///
    /// ```
    /// use uniclean_core::{Cleaner, Phase};
    /// use uniclean_model::{Relation, Schema, Tuple};
    /// use uniclean_rules::{parse_rules, RuleSet};
    ///
    /// let s = Schema::of_strings("tran", &["AC", "city"]);
    /// let parsed = parse_rules("cfd phi1: tran([AC=131] -> [city=Edi])", &s, None).unwrap();
    /// let rules = RuleSet::cfds_only(s.clone(), parsed.cfds);
    /// let cleaner = Cleaner::builder().rules(rules).build().unwrap();
    ///
    /// let base = Relation::new(s.clone(), vec![Tuple::of_strs(&["131", "Ldn"], 0.5)]);
    /// let (mut state, _) = cleaner.begin(&base, Phase::Full);
    ///
    /// // Batches arrive over time; each call absorbs one incrementally.
    /// for city in ["Lds", "Gla"] {
    ///     let batch = vec![Tuple::of_strs(&["131", city], 0.5)];
    ///     let result = cleaner.clean_delta(&mut state, &batch).unwrap();
    ///     assert!(result.consistent);
    /// }
    /// // The state equals a from-scratch clean of all three tuples:
    /// assert_eq!(state.len(), 3);
    /// assert!(state
    ///     .repaired()
    ///     .rows()
    ///     .all(|t| t.value(s.attr_id_or_panic("city")) == &uniclean_model::Value::str("Edi")));
    /// ```
    pub fn clean_delta(
        &self,
        state: &mut RepairState,
        batch: &[Tuple],
    ) -> Result<CleanResult, CleanError> {
        self.clean_delta_observed(state, batch, &mut NoOpObserver)
    }

    /// [`Cleaner::clean_delta`] with a [`PhaseObserver`] receiving
    /// per-phase timing and fix counts as the delta call progresses — the
    /// same hook [`Cleaner::clean_observed`] offers for one-shot cleans,
    /// so a long-lived service can meter its incremental path through the
    /// one instrumentation surface. A call that escalates reports the
    /// reclean's phases; the aborted `cRepair` continuation attempt then
    /// appears as an `on_phase_start` without a matching end.
    pub fn clean_delta_observed(
        &self,
        state: &mut RepairState,
        batch: &[Tuple],
        observer: &mut dyn PhaseObserver,
    ) -> Result<CleanResult, CleanError> {
        if !Arc::ptr_eq(&state.prepared, self.prepared()) {
            return Err(CleanError::ForeignState);
        }
        let prepared = state.prepared.clone();
        let arity = prepared.rules().schema().arity();
        if let Some(t) = batch.iter().find(|t| t.arity() != arity) {
            return Err(CleanError::BatchArityMismatch {
                expected: arity,
                found: t.arity(),
            });
        }
        // Ingest validation in release builds too: a confidence outside
        // [0, 1] would skew the η-threshold seeding and the cost model
        // silently (`Cell::new` only debug-asserts the range).
        for t in batch {
            t.validate_cf()?;
        }

        let settled = state.base.len();
        for t in batch {
            state.base.push(t.clone());
        }

        // No reusable structures (self-snapshot master): full reclean.
        if state.cfix.is_none() {
            return Ok(escalate(state, observer));
        }

        let rules = prepared.rules().clone();
        let cfg = prepared.config().clone();
        let mut phases = Vec::new();

        // cRepair: continue the persisted fixpoint over the batch only.
        for t in batch {
            state.post_c.push(t.clone());
        }
        let fx = state.cfix.as_mut().expect("checked above");
        fx.grow(batch.len());
        let mut guard = CGuard::new(settled);
        let (dm, index) = prepared.external_view();
        observer.on_phase_start(Phase::CRepair);
        let started = Instant::now();
        let c_report = c_run(
            &mut state.post_c,
            dm,
            &rules,
            index,
            &cfg,
            fx,
            settled,
            Some(&mut guard),
        );
        if guard.hazard {
            return Ok(escalate(state, observer));
        }
        let stats = PhaseStats {
            phase: Phase::CRepair,
            seconds: started.elapsed().as_secs_f64(),
            fixes: c_report.len(),
        };
        observer.on_phase_end(&stats);
        phases.push(stats);

        let mut report = c_report;
        let mut work;
        if state.phase >= Phase::ERepair {
            // eRepair re-derives its (globally decided) fixes from the
            // persisted post-cRepair state: extend the persistent 2-in-1 by
            // insert-time deltas, run on a clone, serve premise
            // verification from the warm cross-call cache.
            let cache = state.e_cache.as_mut().expect("captured with cfix");
            let two = state.two.as_mut().expect("captured with cfix");
            cache.grow(batch.len());
            cache.begin_run();
            if guard.settled_writes > 0 {
                // The batch's deterministic cascade legitimately rewrote
                // settled tuples (kept — a continuation is a legal §5.2
                // application order). The 2-in-1 structure pinned to the
                // old post-cRepair state is stale in a way insert-time
                // deltas cannot express without perturbing group-id order,
                // so rebuild it; witness-cache entries are dropped only for
                // the cells the cascade actually touched.
                *two = TwoInOne::build_with(
                    &rules,
                    &state.post_c,
                    cfg.interning,
                    cfg.effective_parallelism(),
                );
                for rec in report.records() {
                    cache.invalidate(rec.tuple, rec.attr);
                }
            } else {
                two.insert_tuples(&rules, &state.post_c, settled);
            }
            let mut structure = two.clone();
            work = state.post_c.clone();
            observer.on_phase_start(Phase::ERepair);
            let started = Instant::now();
            let e_report = e_run(&mut work, dm, &rules, index, &cfg, &mut structure, cache);
            let stats = PhaseStats {
                phase: Phase::ERepair,
                seconds: started.elapsed().as_secs_f64(),
                fixes: e_report.len(),
            };
            observer.on_phase_end(&stats);
            phases.push(stats);
            report.extend(e_report);

            if state.phase >= Phase::HRepair {
                observer.on_phase_start(Phase::HRepair);
                let started = Instant::now();
                let h_report = h_repair(&mut work, dm, &rules, index, &cfg);
                let stats = PhaseStats {
                    phase: Phase::HRepair,
                    seconds: started.elapsed().as_secs_f64(),
                    fixes: h_report.len(),
                };
                observer.on_phase_end(&stats);
                phases.push(stats);
                report.extend(h_report);
            }
        } else {
            work = state.post_c.clone();
        }

        // Targeted acceptance re-verification: only tuples whose final
        // cells changed (plus the batch) are re-checked against Σ and Γ.
        let mut storage = None;
        let dm_final = prepared.acceptance_master(&work, &mut storage);
        state.cons.update(&rules, dm_final, &state.repaired, &work);
        let consistent = state.cons.consistent();
        let cost = repair_cost(&state.base, &work);

        state.repaired = work;
        state.consistent = consistent;
        state.cost = cost;
        state.log.extend(report.clone());
        state.deltas += 1;
        Ok(CleanResult {
            repaired: state.repaired.clone(),
            report,
            cost,
            consistent,
            phases,
        })
    }
}

/// Full (re)clean of `base`, capturing every persistent structure.
fn full_clean(
    prepared: Arc<PreparedCleaner>,
    base: Relation,
    phase: Phase,
    escalations: usize,
    deltas: usize,
    observer: &mut dyn PhaseObserver,
) -> (RepairState, CleanResult) {
    let mut work = base.clone();
    // Self-snapshot masters re-render per phase; nothing per-relation can
    // be pinned, so deltas always escalate (capture stays empty).
    let capturable = !matches!(prepared.master(), MasterSource::SelfSnapshot);
    let mut capture = StateCapture::default();
    let (report, phases) = run_phases(
        &prepared,
        &mut work,
        phase,
        observer,
        capturable.then_some(&mut capture),
    );

    let rules = prepared.rules().clone();
    let mut storage = None;
    let dm_final = prepared.acceptance_master(&work, &mut storage);
    let cons = ConsistencyIndex::build(&rules, &work, dm_final);
    let consistent = cons.consistent();
    let cost = repair_cost(&base, &work);

    let result = CleanResult {
        repaired: work.clone(),
        report: report.clone(),
        cost,
        consistent,
        phases,
    };
    let post_c = capture.post_c.take().unwrap_or_else(|| work.clone());
    let state = RepairState {
        prepared,
        phase,
        base,
        post_c,
        repaired: work,
        cfix: capture.cfix,
        two: capture.two,
        e_cache: capture.e_cache,
        cons,
        consistent,
        cost,
        log: report,
        escalations,
        deltas,
    };
    (state, result)
}

/// Fall back to a from-scratch clean of the concatenated relation,
/// replacing every persistent structure.
fn escalate(state: &mut RepairState, observer: &mut dyn PhaseObserver) -> CleanResult {
    let prepared = state.prepared.clone();
    let base = std::mem::replace(
        &mut state.base,
        Relation::empty(prepared.rules().schema().clone()),
    );
    let (mut fresh, result) = full_clean(
        prepared,
        base,
        state.phase,
        state.escalations + 1,
        state.deltas + 1,
        observer,
    );
    // The session-wide log keeps its history; append this reclean's fixes.
    let mut log = std::mem::take(&mut state.log);
    log.extend(result.report.clone());
    fresh.log = log;
    *state = fresh;
    result
}

// ---------------------------------------------------------------------------
// Incremental acceptance checking.
// ---------------------------------------------------------------------------

/// Per-group state of one variable CFD in the acceptance index.
#[derive(Default)]
struct VGroupCount {
    /// Members (tuples matching the LHS pattern with this key).
    members: usize,
    /// Distinct non-null RHS value counts.
    counts: FxHashMap<Value, usize>,
}

impl VGroupCount {
    /// Violating under SQL null semantics: two or more distinct non-null
    /// RHS values.
    fn bad(&self) -> bool {
        self.counts.len() >= 2
    }
}

/// Incrementally maintained §3.2 acceptance state: the same verdict as
/// `satisfies_all(Σ, Γ, Dr, Dm)` (SQL null semantics), but updatable from
/// a per-tuple diff instead of a from-scratch O(|D|·|Dm|) scan.
///
/// The MD half mirrors `satisfies_all`'s short-circuit: per-tuple MD
/// verdicts are only materialized once the CFD half holds (before that,
/// the reference check never reaches `Γ` either). Once materialized they
/// are maintained from the diff, so a delta call re-verifies MDs for
/// changed tuples only — on MD-heavy workloads this turns the dominant
/// O(|D|·|Dm|) acceptance scan into O(|changed|·|Dm|).
pub(crate) struct ConsistencyIndex {
    /// Per constant CFD: violating tuple count.
    ccfd_bad: Vec<usize>,
    /// Per variable CFD: group table and violating-group count.
    vgroups: Vec<FxHashMap<Vec<Value>, VGroupCount>>,
    vcfd_bad: Vec<usize>,
    /// Per tuple: does it satisfy every MD against the master view?
    /// Lazily materialized (see struct docs), then kept in sync.
    md_ok: Option<Vec<bool>>,
    md_bad: usize,
    /// Per MD: premise indices ordered cheapest-first (equality before
    /// similarity) — precomputed once, used by every `md_tuple_ok` call.
    premise_orders: Vec<Vec<usize>>,
    consistent: bool,
}

impl ConsistencyIndex {
    /// Build from scratch over a final relation and its acceptance master.
    pub(crate) fn build(rules: &RuleSet, d: &Relation, dm: &Relation) -> Self {
        use uniclean_similarity::SimilarityPredicate;
        let n_c = rules.cfds().iter().filter(|c| c.is_constant()).count();
        let n_v = rules.cfds().len() - n_c;
        let premise_orders = rules
            .mds()
            .iter()
            .map(|md| {
                let mut order: Vec<usize> = (0..md.premises().len()).collect();
                order.sort_by_key(|&i| match md.premises()[i].pred {
                    SimilarityPredicate::Equal => 0,
                    _ => 1,
                });
                order
            })
            .collect();
        let mut me = ConsistencyIndex {
            ccfd_bad: vec![0; n_c],
            vgroups: (0..n_v).map(|_| FxHashMap::default()).collect(),
            vcfd_bad: vec![0; n_v],
            md_ok: None,
            md_bad: 0,
            premise_orders,
            consistent: false,
        };
        for (_, t) in d.iter() {
            me.apply_cfds(rules, t, 1);
        }
        me.refresh_verdict(rules, d, dm);
        me
    }

    /// The verdict as of the last build/update: `Dr ⊨ Σ` and
    /// `(Dr, Dm) ⊨ Γ`.
    pub(crate) fn consistent(&self) -> bool {
        self.consistent
    }

    /// Per-MD premise evaluation orders (cheapest-first), for callers
    /// running targeted [`md_tuple_ok`]/[`md_single_ok`] probes.
    pub(crate) fn premise_orders(&self) -> &[Vec<usize>] {
        &self.premise_orders
    }

    /// The per-tuple MD verdict, if the lazily-built table has been
    /// materialized (`None` means the CFD half never held, so MD verdicts
    /// were never needed — compute a targeted probe instead).
    pub(crate) fn tuple_md_ok_cached(&self, tid: TupleId) -> Option<bool> {
        self.md_ok.as_ref().map(|ok| ok[tid.index()])
    }

    /// Does `t` violate no CFD? Constant CFDs are checked directly against
    /// the tuple; variable CFDs read the maintained group table (a tuple in
    /// a violating group is rejected with the whole group).
    pub(crate) fn tuple_cfd_ok<'t>(&self, rules: &RuleSet, t: impl Row<'t>) -> bool {
        self.tuple_cfd_violations(rules, t).is_empty()
    }

    /// The CFDs rejecting `t`, in declaration order.
    pub(crate) fn tuple_cfd_violations<'t>(
        &self,
        rules: &RuleSet,
        t: impl Row<'t>,
    ) -> Vec<TupleViolation> {
        let mut out = Vec::new();
        let mut vi = 0usize;
        for cfd in rules.cfds() {
            if cfd.is_constant() {
                if cfd.lhs_matches(t) {
                    let want = cfd.rhs_pattern()[0].as_const().expect("constant CFD");
                    if !t.value(cfd.rhs()[0]).eq_nullable(want) {
                        out.push(TupleViolation {
                            rule: cfd.name().to_string(),
                            kind: ViolationKind::ConstantCfd,
                        });
                    }
                }
            } else {
                let slot = vi;
                vi += 1;
                if cfd.lhs_matches(t) {
                    let key = t.project(cfd.lhs());
                    if self.vgroups[slot].get(&key).is_some_and(|g| g.bad()) {
                        out.push(TupleViolation {
                            rule: cfd.name().to_string(),
                            kind: ViolationKind::VariableCfd,
                        });
                    }
                }
            }
        }
        out
    }

    fn cfds_ok(&self) -> bool {
        self.ccfd_bad.iter().all(|&n| n == 0) && self.vcfd_bad.iter().all(|&n| n == 0)
    }

    /// Re-verify against the new final relation: `prev` is the previous
    /// final (a prefix of `new` tuple-wise); only tuples whose cell values
    /// changed, plus appended tuples, are re-checked.
    pub(crate) fn update(
        &mut self,
        rules: &RuleSet,
        dm: &Relation,
        prev: &Relation,
        new: &Relation,
    ) {
        for i in 0..prev.len() {
            let (a, b) = (prev.tuple(TupleId::from(i)), new.tuple(TupleId::from(i)));
            let changed = a
                .cells()
                .zip(b.cells())
                .any(|(ca, cb)| ca.value != cb.value);
            if changed {
                self.apply_cfds(rules, a, -1);
                self.apply_cfds(rules, b, 1);
                if let Some(md_ok) = &mut self.md_ok {
                    let ok = md_tuple_ok(rules, &self.premise_orders, b, dm);
                    if md_ok[i] != ok {
                        md_ok[i] = ok;
                        if ok {
                            self.md_bad -= 1;
                        } else {
                            self.md_bad += 1;
                        }
                    }
                }
            }
        }
        for i in prev.len()..new.len() {
            let t = new.tuple(TupleId::from(i));
            self.apply_cfds(rules, t, 1);
            if let Some(md_ok) = &mut self.md_ok {
                let ok = md_tuple_ok(rules, &self.premise_orders, t, dm);
                md_ok.push(ok);
                if !ok {
                    self.md_bad += 1;
                }
            }
        }
        self.refresh_verdict(rules, new, dm);
    }

    /// Combine the halves, materializing the MD verdicts on first need —
    /// exactly when the reference `satisfies_all`'s `&&` would first
    /// evaluate its `Γ` side.
    fn refresh_verdict(&mut self, rules: &RuleSet, d: &Relation, dm: &Relation) {
        if !self.cfds_ok() {
            self.consistent = false;
            return;
        }
        if self.md_ok.is_none() {
            let mut md_ok = Vec::with_capacity(d.len());
            let mut bad = 0usize;
            for (_, t) in d.iter() {
                let ok = md_tuple_ok(rules, &self.premise_orders, t, dm);
                md_ok.push(ok);
                if !ok {
                    bad += 1;
                }
            }
            self.md_ok = Some(md_ok);
            self.md_bad = bad;
        }
        self.consistent = self.md_bad == 0;
    }

    /// Add (`delta = 1`) or remove (`-1`) one tuple's CFD contributions.
    fn apply_cfds<'t>(&mut self, rules: &RuleSet, t: impl Row<'t>, delta: isize) {
        let (mut ci, mut vi) = (0usize, 0usize);
        for cfd in rules.cfds() {
            if cfd.is_constant() {
                let slot = ci;
                ci += 1;
                if !cfd.lhs_matches(t) {
                    continue;
                }
                let want = cfd.rhs_pattern()[0].as_const().expect("constant CFD");
                if !t.value(cfd.rhs()[0]).eq_nullable(want) {
                    self.ccfd_bad[slot] = self.ccfd_bad[slot]
                        .checked_add_signed(delta)
                        .expect("violation count underflow");
                }
            } else {
                let slot = vi;
                vi += 1;
                if !cfd.lhs_matches(t) {
                    continue;
                }
                let key = t.project(cfd.lhs());
                let rhs = t.value(cfd.rhs()[0]);
                let group = self.vgroups[slot].entry(key.clone()).or_default();
                let was_bad = group.bad();
                match delta {
                    1 => {
                        group.members += 1;
                        if !rhs.is_null() {
                            *group.counts.entry(rhs.clone()).or_insert(0) += 1;
                        }
                    }
                    -1 => {
                        group.members -= 1;
                        if !rhs.is_null() {
                            let c = group
                                .counts
                                .get_mut(rhs)
                                .expect("removing an uncounted value");
                            *c -= 1;
                            if *c == 0 {
                                group.counts.remove(rhs);
                            }
                        }
                    }
                    _ => unreachable!("delta is ±1"),
                }
                let now_bad = group.bad();
                let empty = group.members == 0;
                if was_bad != now_bad {
                    if now_bad {
                        self.vcfd_bad[slot] += 1;
                    } else {
                        self.vcfd_bad[slot] -= 1;
                    }
                }
                if empty {
                    self.vgroups[slot].remove(&key);
                }
            }
        }
    }
}

/// Does `t` satisfy every MD against `dm` (SQL null semantics, §7)? The
/// per-tuple slice of the reference `md_violations` scan, with one
/// verdict-preserving twist: premises are evaluated cheapest-first
/// (equality before similarity), so a master tuple that fails an equality
/// premise never pays for an edit-distance computation. The conjunction's
/// value is unchanged.
fn md_tuple_ok<'t>(
    rules: &RuleSet,
    premise_orders: &[Vec<usize>],
    t: impl Row<'t>,
    dm: &Relation,
) -> bool {
    rules
        .mds()
        .iter()
        .zip(premise_orders)
        .all(|(md, order)| md_single_ok(md, order, t, dm))
}

/// The single-MD slice of [`md_tuple_ok`], for per-rule violation
/// reporting ([`RepairState::violations`]).
fn md_single_ok<'t>(md: &Md, order: &[usize], t: impl Row<'t>, dm: &Relation) -> bool {
    let (e, f) = md.rhs()[0];
    dm.rows().all(|s| {
        let matched = order.iter().all(|&i| {
            let p = &md.premises()[i];
            let tv = t.value(p.attr);
            let sv = s.value(p.master_attr);
            !tv.is_null() && !sv.is_null() && p.pred.matches(&tv.render(), &sv.render())
        });
        !matched || t.value(e).eq_nullable(s.value(f))
    })
}
