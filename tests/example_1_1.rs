//! Integration test: the paper's running example (Example 1.1 / Fig. 1)
//! executed through the public façade crate, including rule parsing, the
//! negative-MD embedding and CSV round-tripping of the repair.

use uniclean::core::{CleanConfig, Phase, UniClean};
use uniclean::model::csv::{from_csv, to_csv};
use uniclean::model::{AttrId, FixMark, Relation, Schema, Tuple, TupleId, Value, ValueType};
use uniclean::rules::{parse_rules, RuleSet};

fn setup() -> (std::sync::Arc<Schema>, RuleSet, Relation, Relation) {
    let tran = Schema::of_strings("tran", &["FN", "LN", "St", "city", "AC", "post", "phn", "gd"]);
    let card = Schema::of_strings("card", &["FN", "LN", "St", "city", "AC", "zip", "tel", "gd"]);
    let text = "\
        cfd phi1: tran([AC=131] -> [city=Edi])\n\
        cfd phi2: tran([AC=020] -> [city=Ldn])\n\
        cfd phi3: tran([city, phn] -> [St, AC, post])\n\
        cfd phi4: tran([FN=Bob] -> [FN=Robert])\n\
        md  psi:  tran[LN] = card[LN] AND tran[city] = card[city] AND tran[St] = card[St] AND tran[post] = card[zip] AND tran[FN] ~lev(4) card[FN] -> tran[FN] <=> card[FN], tran[phn] <=> card[tel]\n\
        neg psi1: tran[gd] != card[gd] -> tran[FN] <!> card[FN]";
    let parsed = parse_rules(text, &tran, Some(&card)).expect("rules parse");
    let rules = RuleSet::new(tran.clone(), Some(card.clone()), parsed.cfds, parsed.positive_mds, parsed.negative_mds);

    let master = Relation::new(
        card,
        vec![
            Tuple::of_strs(&["Mark", "Smith", "10 Oak St", "Edi", "131", "EH8 9LE", "3256778", "Male"], 1.0),
            Tuple::of_strs(&["Robert", "Brady", "5 Wren St", "Ldn", "020", "WC1H 9SE", "3887644", "Male"], 1.0),
        ],
    );

    let mk = |vals: &[&str], cfs: &[f64]| {
        let mut t = Tuple::of_strs(vals, 0.0);
        for (i, &c) in cfs.iter().enumerate() {
            let a = AttrId::from(i);
            let v = t.value(a).clone();
            t.set(a, v, c, FixMark::Untouched);
        }
        t
    };
    let t1 = mk(
        &["M.", "Smith", "10 Oak St", "Ldn", "131", "EH8 9LE", "9999999", "Male"],
        &[0.9, 1.0, 0.9, 0.5, 0.9, 0.9, 0.0, 0.8],
    );
    let t2 = mk(
        &["Max", "Smith", "Po Box 25", "Edi", "131", "EH8 9AB", "3256778", "Male"],
        &[0.7, 1.0, 0.5, 0.9, 0.7, 0.6, 0.8, 0.8],
    );
    let t3 = mk(
        &["Bob", "Brady", "5 Wren St", "Edi", "020", "WC1H 9SE", "3887834", "Male"],
        &[0.6, 1.0, 0.9, 0.2, 0.9, 0.8, 0.9, 0.8],
    );
    let mut t4 = mk(
        &["Robert", "Brady", "", "Ldn", "020", "WC1E 7HX", "3887644", "Male"],
        &[0.7, 1.0, 0.0, 0.5, 0.7, 0.3, 0.7, 0.8],
    );
    t4.set(tran.attr_id_or_panic("St"), Value::Null, 0.0, FixMark::Untouched);
    let dirty = Relation::new(tran.clone(), vec![t1, t2, t3, t4]);
    (tran, rules, dirty, master)
}

#[test]
fn fraud_is_detected_end_to_end() {
    let (tran, rules, dirty, master) = setup();
    let uni = UniClean::new(&rules, Some(&master), CleanConfig { eta: 0.8, ..CleanConfig::default() });
    let result = uni.clean(&dirty, Phase::Full);
    assert!(result.consistent);

    let ident: Vec<AttrId> = ["FN", "LN", "St", "city", "AC", "post", "phn"]
        .iter()
        .map(|a| tran.attr_id_or_panic(a))
        .collect();
    assert!(
        result.repaired.tuple(TupleId(2)).agrees_with(result.repaired.tuple(TupleId(3)), &ident),
        "t3 and t4 must be revealed as the same person"
    );
    // All three fix classes appear in this example.
    let (det, rel, pos) = result.fix_counts();
    assert!(det > 0, "deterministic fixes expected");
    assert!(det + rel + pos >= 6, "the walk-through involves at least six fixes");
}

#[test]
fn repair_cost_is_positive_and_bounded() {
    let (_, rules, dirty, master) = setup();
    let uni = UniClean::new(&rules, Some(&master), CleanConfig { eta: 0.8, ..CleanConfig::default() });
    let result = uni.clean(&dirty, Phase::Full);
    assert!(result.cost > 0.0, "changes were made, cost must be positive");
    // Cost is bounded by the number of cells (each normalized term ≤ 1·cf ≤ 1).
    assert!(result.cost < dirty.cell_count() as f64);
}

#[test]
fn csv_roundtrip_preserves_the_repair() {
    let (tran, rules, dirty, master) = setup();
    let uni = UniClean::new(&rules, Some(&master), CleanConfig { eta: 0.8, ..CleanConfig::default() });
    let repaired = uni.clean(&dirty, Phase::Full).repaired;
    let csv = to_csv(&repaired);
    let types = vec![ValueType::Str; tran.arity()];
    let back = from_csv("tran", &types, &csv, 0.0).expect("csv parses");
    assert_eq!(back.len(), repaired.len());
    for (id, t) in repaired.iter() {
        for a in tran.attr_ids() {
            assert_eq!(back.tuple(id).value(a), t.value(a), "cell {id}/{a} roundtrips");
        }
    }
}

#[test]
fn negative_md_blocks_cross_gender_identification() {
    // Rebuild the scenario with a female master clone of s2: the embedded
    // negative MD must prevent ψ from identifying t3 with her.
    let (tran, rules, dirty, mut master) = setup();
    let gd = master.schema().attr_id("gd").unwrap();
    master.tuple_mut(TupleId(1)).set(gd, Value::str("Female"), 1.0, FixMark::Untouched);
    let uni = UniClean::new(&rules, Some(&master), CleanConfig { eta: 0.8, ..CleanConfig::default() });
    let result = uni.clean(&dirty, Phase::Full);
    let phn = tran.attr_id_or_panic("phn");
    // t3's phone is no longer corrected from the (female) master tuple.
    assert_ne!(result.repaired.tuple(TupleId(2)).value(phn), &Value::str("3887644"));
}
