//! Integration test: the paper's running example (Example 1.1 / Fig. 1)
//! executed through the public façade crate, including rule parsing, the
//! negative-MD embedding and CSV round-tripping of the repair.

use uniclean::model::csv::{from_csv, to_csv};
use uniclean::model::Relation;
use uniclean::model::{AttrId, FixMark, TupleId, Value, ValueType};
use uniclean::rules::RuleSet;
use uniclean::{CleanConfig, Cleaner, MasterSource, Phase};

mod common;
use common::example_1_1 as setup;

/// The Example 1.1 session: η = 0.8 over the Fig. 1(a) master data.
fn example_session(rules: &RuleSet, master: &Relation) -> Cleaner {
    Cleaner::builder()
        .rules(rules.clone())
        .master(MasterSource::external(master.clone()))
        .config(CleanConfig {
            eta: 0.8,
            ..CleanConfig::default()
        })
        .build()
        .expect("Example 1.1 session is well-formed")
}

#[test]
fn fraud_is_detected_end_to_end() {
    let (tran, rules, dirty, master) = setup();
    let uni = example_session(&rules, &master);
    let result = uni.clean(&dirty, Phase::Full);
    assert!(result.consistent);

    let ident: Vec<AttrId> = ["FN", "LN", "St", "city", "AC", "post", "phn"]
        .iter()
        .map(|a| tran.attr_id_or_panic(a))
        .collect();
    assert!(
        result
            .repaired
            .tuple(TupleId(2))
            .agrees_with(result.repaired.tuple(TupleId(3)), &ident),
        "t3 and t4 must be revealed as the same person"
    );
    // All three fix classes appear in this example.
    let (det, rel, pos) = result.fix_counts();
    assert!(det > 0, "deterministic fixes expected");
    assert!(
        det + rel + pos >= 6,
        "the walk-through involves at least six fixes"
    );
}

#[test]
fn repair_cost_is_positive_and_bounded() {
    let (_, rules, dirty, master) = setup();
    let uni = example_session(&rules, &master);
    let result = uni.clean(&dirty, Phase::Full);
    assert!(
        result.cost > 0.0,
        "changes were made, cost must be positive"
    );
    // Cost is bounded by the number of cells (each normalized term ≤ 1·cf ≤ 1).
    assert!(result.cost < dirty.cell_count() as f64);
}

#[test]
fn csv_roundtrip_preserves_the_repair() {
    let (tran, rules, dirty, master) = setup();
    let uni = example_session(&rules, &master);
    let repaired = uni.clean(&dirty, Phase::Full).repaired;
    let csv = to_csv(&repaired);
    let types = vec![ValueType::Str; tran.arity()];
    let back = from_csv("tran", &types, &csv, 0.0).expect("csv parses");
    assert_eq!(back.len(), repaired.len());
    for (id, t) in repaired.iter() {
        for a in tran.attr_ids() {
            assert_eq!(
                back.tuple(id).value(a),
                t.value(a),
                "cell {id}/{a} roundtrips"
            );
        }
    }
}

#[test]
fn negative_md_blocks_cross_gender_identification() {
    // Rebuild the scenario with a female master clone of s2: the embedded
    // negative MD must prevent ψ from identifying t3 with her.
    let (tran, rules, dirty, mut master) = setup();
    let gd = master.schema().attr_id("gd").unwrap();
    master
        .tuple_mut(TupleId(1))
        .set(gd, Value::str("Female"), 1.0, FixMark::Untouched);
    let uni = example_session(&rules, &master);
    let result = uni.clean(&dirty, Phase::Full);
    let phn = tran.attr_id_or_panic("phn");
    // t3's phone is no longer corrected from the (female) master tuple.
    assert_ne!(
        result.repaired.tuple(TupleId(2)).value(phn),
        &Value::str("3887644")
    );
}
