//! Crash-safety suite for the durable daemon: WAL + snapshot recovery
//! must reproduce the acknowledged state **bit-identically** (values,
//! confidences, marks, acceptance, cost) after clean restarts, after
//! WAL corruption at arbitrary byte offsets (longest-valid-prefix
//! recovery), and after a real SIGKILL mid-ingest of the spawned
//! `uniclean serve` binary.
//!
//! The correctness basis is the §5.2 order-independence pin already
//! established for `clean_delta`: replaying the logged batches serially
//! lands on the same state as the original interleaved serving run, so
//! every test compares a recovered dump against an in-process serial
//! reference clean of the acknowledged prefix.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::num::NonZeroUsize;
use std::path::{Path, PathBuf};

use proptest::prelude::*;

use uniclean::model::json::{relation_to_json, Json};
use uniclean::model::{Relation, Schema, Tuple};
use uniclean::rules::{parse_rules, RuleSet};
use uniclean::server::wal::read_wal;
use uniclean::server::{tenant_dir_name, Daemon, DaemonConfig};
use uniclean::{CleanConfig, Cleaner, MasterSource, Phase};

const RULES: &str = "cfd fd: data([K] -> [A])\n\
                     cfd cc: data([A=a1] -> [B=b1])\n\
                     md m: data[K] = m[K] -> data[B] <=> m[B]";

/// The four batches every test serves: FD groups (shared keys), constant
/// CFD hits (a1), MD hits against the master (k0, k1).
const BATCHES: [&[[&str; 3]]; 4] = [
    &[["k0", "a1", "b9"], ["k1", "a2", "b2"]],
    &[["k2", "a3", "b3"], ["k0", "a1", "b8"]],
    &[["k1", "a2", "b2"], ["k4", "a1", "b7"]],
    &[["k5", "a1", "b5"], ["k0", "a9", "b6"]],
];

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to daemon");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client {
            writer: stream,
            reader,
        }
    }

    fn send_only(&mut self, req: &Json) {
        self.writer
            .write_all(format!("{req}\n").as_bytes())
            .expect("write request");
        self.writer.flush().expect("flush request");
    }

    fn read_response(&mut self) -> Json {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        Json::parse(&line).expect("response parses")
    }

    fn rpc(&mut self, req: &Json) -> Json {
        self.send_only(req);
        self.read_response()
    }
}

fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn open_request(relation: &str) -> Json {
    obj(vec![
        ("op", Json::str("open")),
        ("relation", Json::str(relation)),
        ("table", Json::str("data")),
        (
            "attrs",
            Json::Arr(vec![Json::str("K"), Json::str("A"), Json::str("B")]),
        ),
        ("rules", Json::str(RULES)),
        (
            "master",
            obj(vec![
                ("table", Json::str("m")),
                ("attrs", Json::Arr(vec![Json::str("K"), Json::str("B")])),
                (
                    "rows",
                    Json::Arr(vec![
                        Json::Arr(vec![Json::str("k0"), Json::str("b1")]),
                        Json::Arr(vec![Json::str("k1"), Json::str("b2")]),
                    ]),
                ),
            ]),
        ),
        ("phase", Json::str("full")),
        ("default_cf", Json::Num(0.5)),
        ("eta", Json::Num(0.8)),
        ("threads", Json::Num(1.0)),
    ])
}

fn ingest_request(relation: &str, rows: &[[&str; 3]]) -> Json {
    obj(vec![
        ("op", Json::str("ingest")),
        ("relation", Json::str(relation)),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| Json::Arr(r.iter().map(|v| Json::str(*v)).collect()))
                    .collect(),
            ),
        ),
    ])
}

fn reference_cleaner() -> Cleaner {
    let data = Schema::of_strings("data", &["K", "A", "B"]);
    let m = Schema::of_strings("m", &["K", "B"]);
    let parsed = parse_rules(RULES, &data, Some(&m)).unwrap();
    let rules = RuleSet::new(
        data,
        Some(m.clone()),
        parsed.cfds,
        parsed.positive_mds,
        parsed.negative_mds,
    );
    let master = Relation::new(
        m,
        vec![
            Tuple::of_strs(&["k0", "b1"], 1.0),
            Tuple::of_strs(&["k1", "b2"], 1.0),
        ],
    );
    Cleaner::builder()
        .rules(rules)
        .master(MasterSource::external(master))
        .config(CleanConfig {
            eta: 0.8,
            parallelism: Some(NonZeroUsize::new(1).unwrap()),
            ..CleanConfig::default()
        })
        .build()
        .unwrap()
}

/// The serial reference dump (`rows` JSON + cost) after the first
/// `prefix` batches of [`BATCHES`].
fn reference_prefix(prefix: usize) -> (Json, f64) {
    let cleaner = reference_cleaner();
    let mut state = cleaner.begin_empty(Phase::Full);
    for batch in &BATCHES[..prefix] {
        let tuples: Vec<Tuple> = batch.iter().map(|r| Tuple::of_strs(r, 0.5)).collect();
        cleaner.clean_delta(&mut state, &tuples).unwrap();
    }
    (relation_to_json(state.repaired()), state.cost())
}

/// A fresh scratch directory under the system temp dir (no tempfile
/// crate in this workspace): unique per test label, wiped on entry.
fn scratch_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("uniclean-durtest-{}-{label}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn durable_config(data_dir: &Path, snapshot_every: u64) -> DaemonConfig {
    DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        shards: 2,
        queue_bound: 16,
        data_dir: Some(data_dir.to_path_buf()),
        snapshot_every,
        fsync: true,
        ..DaemonConfig::default()
    }
}

/// Boot a daemon, run `body` against it, shut it down cleanly.
fn with_daemon<T>(
    config: DaemonConfig,
    body: impl FnOnce(&mut Client, std::net::SocketAddr) -> T,
) -> T {
    let daemon = Daemon::bind(config).expect("bind ephemeral port");
    let addr = daemon.local_addr();
    let handle = std::thread::spawn(move || daemon.run());
    let mut c = Client::connect(addr);
    let out = body(&mut c, addr);
    let shutdown = c.rpc(&obj(vec![("op", Json::str("shutdown"))]));
    assert_eq!(
        shutdown.get("ok").and_then(Json::as_bool),
        Some(true),
        "{shutdown}"
    );
    drop(c);
    handle.join().unwrap().unwrap();
    out
}

fn assert_ok(resp: &Json) -> &Json {
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
    resp
}

fn dump(c: &mut Client, relation: &str) -> Json {
    let d = c.rpc(&obj(vec![
        ("op", Json::str("dump")),
        ("relation", Json::str(relation)),
    ]));
    assert_ok(&d);
    d
}

/// Serve `prefix` batches into a fresh durable daemon, then shut down.
fn serve_prefix(dir: &Path, snapshot_every: u64, prefix: usize) {
    with_daemon(durable_config(dir, snapshot_every), |c, _| {
        assert_ok(&c.rpc(&open_request("tran")));
        for batch in &BATCHES[..prefix] {
            assert_ok(&c.rpc(&ingest_request("tran", batch)));
        }
    });
}

/// Restart on the same data dir and pin the recovered state bit-identical
/// to the serial reference of the acknowledged prefix.
fn assert_recovers(dir: &Path, snapshot_every: u64, prefix: usize, label: &str) {
    let (expect_rows, expect_cost) = reference_prefix(prefix);
    with_daemon(durable_config(dir, snapshot_every), |c, _| {
        let ping = c.rpc(&obj(vec![("op", Json::str("ping"))]));
        assert_ok(&ping);
        assert_eq!(ping.get("durable").and_then(Json::as_bool), Some(true));
        let recovery = ping.get("recovery").expect("recovery report");
        assert_eq!(
            recovery.get("relations").and_then(Json::as_usize),
            Some(1),
            "{label}: {recovery}"
        );
        let d = dump(c, "tran");
        assert_eq!(
            d.get("rows").unwrap().render(),
            expect_rows.render(),
            "{label}: recovered rows diverged from serial reference"
        );
        assert_eq!(
            d.get("cost").and_then(Json::as_f64),
            Some(expect_cost),
            "{label}: recovered cost diverged"
        );
    });
}

// ---------------------------------------------------------------------------

/// Clean restart, WAL-only (no snapshots): every acknowledged batch is
/// recovered, state bit-identical, and the recovered tenant keeps
/// serving (the WAL keeps extending across generations).
#[test]
fn wal_only_restart_is_bit_identical() {
    let dir = scratch_dir("wal-only");
    serve_prefix(&dir, 0, 3);
    assert_recovers(&dir, 0, 3, "gen1");

    // Recovery above ran read-only asserts; now extend the relation in a
    // new generation and recover again — seq numbering and the WAL tail
    // survive repeated restarts.
    with_daemon(durable_config(&dir, 0), |c, _| {
        assert_ok(&c.rpc(&ingest_request("tran", BATCHES[3])));
    });
    assert_recovers(&dir, 0, 4, "gen3");
}

/// Snapshot-every-batch: recovery loads the snapshot (not a full replay)
/// and still lands bit-identical; the report says a snapshot was used.
#[test]
fn snapshot_compaction_restart_is_bit_identical() {
    let dir = scratch_dir("snap");
    serve_prefix(&dir, 1, 4);
    let tenant_dir = dir.join(tenant_dir_name("tran"));
    assert!(
        tenant_dir.join("snapshot.json").exists(),
        "compaction wrote a snapshot"
    );
    // Compaction rewrote the WAL: only the open record remains, so the
    // log stays bounded no matter how many batches were served.
    let wal = read_wal(&tenant_dir.join("wal.log")).unwrap();
    assert!(wal.open.is_some());
    assert_eq!(wal.batches.len(), 0, "WAL compacted after snapshot");

    let (expect_rows, expect_cost) = reference_prefix(4);
    with_daemon(durable_config(&dir, 1), |c, _| {
        let ping = c.rpc(&obj(vec![("op", Json::str("ping"))]));
        let recovery = ping.get("recovery").expect("recovery report");
        assert_eq!(
            recovery.get("snapshots_used").and_then(Json::as_usize),
            Some(1)
        );
        assert_eq!(
            recovery.get("batches_replayed").and_then(Json::as_usize),
            Some(0)
        );
        let d = dump(c, "tran");
        assert_eq!(d.get("rows").unwrap().render(), expect_rows.render());
        assert_eq!(d.get("cost").and_then(Json::as_f64), Some(expect_cost));
    });
}

/// Mixed generations: snapshots every 2 batches, restarts between
/// batches, always bit-identical to the serial reference.
#[test]
fn interleaved_restarts_and_snapshots() {
    let dir = scratch_dir("interleave");
    with_daemon(durable_config(&dir, 2), |c, _| {
        assert_ok(&c.rpc(&open_request("tran")));
        assert_ok(&c.rpc(&ingest_request("tran", BATCHES[0])));
    });
    for prefix in 2..=4 {
        // Each generation recovers, serves one more batch, dies.
        let (expect_rows, _) = reference_prefix(prefix);
        with_daemon(durable_config(&dir, 2), |c, _| {
            assert_ok(&c.rpc(&ingest_request("tran", BATCHES[prefix - 1])));
            let d = dump(c, "tran");
            assert_eq!(
                d.get("rows").unwrap().render(),
                expect_rows.render(),
                "prefix {prefix}"
            );
        });
    }
    assert_recovers(&dir, 2, 4, "final");
}

/// Build the WAL-only template once: 4 acknowledged batches, clean
/// shutdown. Returns the tenant dir's WAL bytes.
fn wal_template() -> &'static (PathBuf, Vec<u8>) {
    static TEMPLATE: std::sync::OnceLock<(PathBuf, Vec<u8>)> = std::sync::OnceLock::new();
    TEMPLATE.get_or_init(|| {
        let dir = scratch_dir("wal-template");
        serve_prefix(&dir, 0, 4);
        let wal_path = dir.join(tenant_dir_name("tran")).join("wal.log");
        let bytes = std::fs::read(&wal_path).expect("read template WAL");
        (dir, bytes)
    })
}

/// Corrupt-or-truncate the template WAL at an arbitrary offset, boot a
/// daemon on it, and require the recovered state to equal the serial
/// reference of exactly the longest valid batch prefix (or a quarantined
/// tenant when the open record itself is destroyed). Reboot once more to
/// check the physical truncation left a self-consistent log.
fn check_corruption(case: &str, offset: usize, truncate: bool) {
    let (_, template) = wal_template();
    let mut bytes = template.clone();
    if truncate {
        bytes.truncate(offset);
    } else {
        bytes[offset] ^= 0x40;
    }

    let dir = scratch_dir(&format!("corrupt-{case}"));
    let tenant_dir = dir.join(tenant_dir_name("tran"));
    std::fs::create_dir_all(&tenant_dir).unwrap();
    let wal_path = tenant_dir.join("wal.log");
    std::fs::write(&wal_path, &bytes).unwrap();

    // Ground truth for what recovery *should* keep, computed before any
    // daemon touches the file.
    let contents = read_wal(&wal_path).unwrap();
    let expect_prefix = contents.batches.len();
    assert!(
        contents.valid_len <= bytes.len() as u64,
        "{case}: valid prefix cannot exceed the file"
    );

    for generation in ["boot", "reboot"] {
        let label = format!("{case}/{generation}");
        with_daemon(durable_config(&dir, 0), |c, _| {
            let ping = c.rpc(&obj(vec![("op", Json::str("ping"))]));
            let recovery = ping.get("recovery").expect("recovery report");
            if contents.open.is_none() {
                // The open record itself was destroyed: the tenant is
                // unrecoverable and must be quarantined, not wedged.
                assert_eq!(
                    recovery
                        .get("quarantined")
                        .and_then(Json::as_arr)
                        .map(<[Json]>::len),
                    Some(if generation == "boot" { 1 } else { 0 }),
                    "{label}: {recovery}"
                );
                let r = c.rpc(&obj(vec![
                    ("op", Json::str("check")),
                    ("relation", Json::str("tran")),
                ]));
                assert_eq!(
                    r.get("code").and_then(Json::as_str),
                    Some("unknown_relation"),
                    "{label}: {r}"
                );
                return;
            }
            let (expect_rows, expect_cost) = reference_prefix(expect_prefix);
            let d = dump(c, "tran");
            assert_eq!(
                d.get("rows").unwrap().render(),
                expect_rows.render(),
                "{label}: recovered prefix diverged (expected {expect_prefix} batches)"
            );
            assert_eq!(
                d.get("cost").and_then(Json::as_f64),
                Some(expect_cost),
                "{label}: cost diverged"
            );
        });
        if contents.open.is_none() {
            break;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary single-byte corruption anywhere in the WAL.
    #[test]
    fn corrupted_wal_recovers_longest_valid_prefix(frac in 0usize..1000) {
        let len = wal_template().1.len();
        let offset = frac * len / 1000;
        check_corruption(&format!("flip-{offset}"), offset.min(len - 1), false);
    }

    /// Arbitrary truncation (a torn tail from a crash mid-append).
    #[test]
    fn truncated_wal_recovers_longest_valid_prefix(frac in 0usize..1000) {
        let len = wal_template().1.len();
        let offset = frac * len / 1000;
        check_corruption(&format!("trunc-{offset}"), offset.min(len), true);
    }
}

/// Frame boundaries are where torn tails actually land: exercise the
/// exact edges (header start, checksum bytes, payload start/end) of every
/// frame deterministically, on top of the proptest sweep.
#[test]
fn corruption_at_every_frame_boundary() {
    let (_, template) = wal_template();
    // Reconstruct the frame layout from the valid template.
    let mut offsets = vec![0usize];
    {
        let mut pos = 0usize;
        while pos + 12 <= template.len() {
            let len = u32::from_le_bytes(template[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 12 + len;
            offsets.push(pos.min(template.len()));
        }
    }
    for (i, &edge) in offsets.iter().enumerate() {
        for delta in [0usize, 4, 12, 13] {
            let offset = edge + delta;
            if offset < template.len() {
                check_corruption(&format!("edge{i}-flip{delta}"), offset, false);
            }
            if offset <= template.len() {
                check_corruption(&format!("edge{i}-trunc{delta}"), offset, true);
            }
        }
    }
}

// ---------------------------------------------------------------------------

/// The real thing: SIGKILL the spawned `uniclean serve` binary mid-ingest
/// and require the restarted daemon to recover exactly the acknowledged
/// prefix — or the acknowledged prefix plus the in-flight batch when the
/// kill landed after its fsync. Nothing else is acceptable.
#[test]
fn sigkill_mid_ingest_recovers_acked_state() {
    let dir = scratch_dir("sigkill");
    for (round, kill_delay_ms) in [0u64, 15, 40].iter().enumerate() {
        let round_dir = dir.join(format!("round{round}"));
        std::fs::create_dir_all(&round_dir).unwrap();
        let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_uniclean"))
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--shards",
                "2",
                "--data-dir",
            ])
            .arg(&round_dir)
            .args(["--snapshot-every", "2"])
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawn uniclean serve");
        let stdout = child.stdout.take().unwrap();
        let mut lines = BufReader::new(stdout);
        let mut banner = String::new();
        lines.read_line(&mut banner).unwrap();
        let addr: std::net::SocketAddr = banner
            .split("listening on ")
            .nth(1)
            .and_then(|r| r.split_whitespace().next())
            .expect("banner carries address")
            .parse()
            .unwrap();

        let mut c = Client::connect(addr);
        assert_ok(&c.rpc(&open_request("tran")));
        assert_ok(&c.rpc(&ingest_request("tran", BATCHES[0])));
        assert_ok(&c.rpc(&ingest_request("tran", BATCHES[1])));
        // Fire the third batch and kill without waiting for the ack: the
        // kill lands before decode, mid-apply, around the fsync, or after
        // the ack — all must recover to an acknowledged-consistent state.
        c.send_only(&ingest_request("tran", BATCHES[2]));
        std::thread::sleep(std::time::Duration::from_millis(*kill_delay_ms));
        child.kill().expect("SIGKILL the daemon");
        child.wait().expect("reap the daemon");
        drop(c);

        let (acked_rows, acked_cost) = reference_prefix(2);
        let (inflight_rows, inflight_cost) = reference_prefix(3);
        with_daemon(durable_config(&round_dir, 2), |c, _| {
            let d = dump(c, "tran");
            let rows = d.get("rows").unwrap().render();
            let cost = d.get("cost").and_then(Json::as_f64).unwrap();
            let acked = rows == acked_rows.render() && cost == acked_cost;
            let inflight = rows == inflight_rows.render() && cost == inflight_cost;
            assert!(
                acked || inflight,
                "round {round}: recovered state is neither the acked prefix \
                 nor acked+in-flight\n{rows}"
            );
            // The recovered daemon keeps serving: one more batch lands on
            // the reference for whichever prefix survived.
            let survived = if inflight { 3 } else { 2 };
            assert_ok(&c.rpc(&ingest_request("tran", BATCHES[survived])));
        });
    }
}
