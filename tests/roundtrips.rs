//! Round-trip properties across serialization boundaries: CSV ↔ relation
//! and rule text ↔ parsed rules. A credible release must not corrupt data
//! at its edges.

use proptest::prelude::*;
use uniclean::model::csv::{from_csv, to_csv};
use uniclean::model::{Relation, Schema, Tuple, Value, ValueType};
use uniclean::rules::parse_rules;

proptest! {
    /// Arbitrary string content (including separators, quotes, newlines-free
    /// text and empties) survives a CSV round trip cell for cell.
    #[test]
    fn csv_roundtrip_preserves_arbitrary_content(
        rows in proptest::collection::vec(
            (".{0,12}", ".{0,12}"),
            1..20
        )
    ) {
        let schema = Schema::of_strings("r", &["A", "B"]);
        let rel = Relation::new(
            schema,
            rows.iter()
                .map(|(a, b)| Tuple::from_values([Value::str(a), Value::str(b)], 0.0))
                .collect(),
        );
        let csv = to_csv(&rel);
        let back = from_csv("r", &[ValueType::Str, ValueType::Str], &csv, 0.0).unwrap();
        prop_assert_eq!(back.len(), rel.len());
        for (id, t) in rel.iter() {
            for a in rel.schema().attr_ids() {
                prop_assert_eq!(back.tuple(id).value(a), t.value(a));
            }
        }
    }

    /// Null cells survive alongside empty strings (distinct on the wire).
    #[test]
    fn csv_distinguishes_null_from_empty(n in 1usize..10) {
        let schema = Schema::of_strings("r", &["A"]);
        let mut rel = Relation::empty(schema);
        for i in 0..n {
            let v = if i % 2 == 0 { Value::Null } else { Value::str("") };
            rel.push(Tuple::from_values([v], 0.0));
        }
        let csv = to_csv(&rel);
        let back = from_csv("r", &[ValueType::Str], &csv, 0.0).unwrap();
        for (id, t) in rel.iter() {
            prop_assert_eq!(
                back.tuple(id).value(uniclean::model::AttrId(0)).is_null(),
                t.value(uniclean::model::AttrId(0)).is_null()
            );
        }
    }
}

#[test]
fn cfd_display_parses_back() {
    // The Display form of every parsed CFD is itself valid rule text.
    let s = Schema::of_strings("tran", &["FN", "AC", "city", "post"]);
    let text = "cfd a: tran([AC=131] -> [city=Edi])\n\
                cfd b: tran([city, post] -> [FN])\n\
                cfd c: tran([FN=Bob] -> [FN=Robert])";
    let first = parse_rules(text, &s, None).unwrap();
    let rendered: String = first.cfds.iter().map(|c| format!("cfd {c}\n")).collect();
    let second = parse_rules(&rendered, &s, None).unwrap();
    assert_eq!(first.cfds.len(), second.cfds.len());
    for (a, b) in first.cfds.iter().zip(second.cfds.iter()) {
        assert_eq!(a.lhs(), b.lhs());
        assert_eq!(a.rhs(), b.rhs());
        assert_eq!(a.lhs_pattern(), b.lhs_pattern());
        assert_eq!(a.rhs_pattern(), b.rhs_pattern());
    }
}

#[test]
fn md_display_parses_back() {
    let tran = Schema::of_strings("tran", &["LN", "FN", "phn"]);
    let card = Schema::of_strings("card", &["LN", "FN", "tel"]);
    let text =
        "md psi: tran[LN] = card[LN] AND tran[FN] ~lev(2) card[FN] -> tran[phn] <=> card[tel]";
    let first = parse_rules(text, &tran, Some(&card)).unwrap();
    let rendered = format!("md {}", first.positive_mds[0]);
    let second = parse_rules(&rendered, &tran, Some(&card)).unwrap();
    assert_eq!(
        first.positive_mds[0].premises(),
        second.positive_mds[0].premises()
    );
    assert_eq!(first.positive_mds[0].rhs(), second.positive_mds[0].rhs());
}
