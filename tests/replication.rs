//! Replication and failover suite: a standby tails the primary's WAL
//! stream (bootstrap from snapshot or from the open frame, then
//! checksummed frame fetches), `promote` flips it to serving, and the
//! promoted state must be **bit-identical** to an uninterrupted
//! single-node run of the same acknowledged batches.
//!
//! Exactly-once is carried by client sequence numbers: re-sending an
//! in-flight batch after a failover either applies it (the standby never
//! saw the frame) or dedups it (it did) — the state lands on the same
//! reference either way. The proxy proptest drops the client connection
//! at arbitrary byte offsets mid-ingest to pin that down.
//!
//! The `#[cfg(feature = "failpoints")]` section grows the durability
//! kill matrix into a failover matrix: the primary is killed at every
//! durability failpoint, the standby is promoted, the client re-sends,
//! and the result is compared to the serial reference. Network
//! failpoints (dropped / delayed / truncated / corrupted / duplicated
//! fetch replies, mid-stream disconnects) must never corrupt a standby
//! — only delay it.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::num::NonZeroUsize;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use proptest::prelude::*;

use uniclean::client::{Client as LibClient, ClientConfig};
use uniclean::model::json::{relation_to_json, Json};
use uniclean::model::{Relation, Schema, Tuple};
use uniclean::rules::{parse_rules, RuleSet};
use uniclean::server::{Daemon, DaemonConfig};
use uniclean::{CleanConfig, Cleaner, MasterSource, Phase};

const RULES: &str = "cfd fd: data([K] -> [A])\n\
                     cfd cc: data([A=a1] -> [B=b1])\n\
                     md m: data[K] = m[K] -> data[B] <=> m[B]";

const BATCHES: [&[[&str; 3]]; 4] = [
    &[["k0", "a1", "b9"], ["k1", "a2", "b2"]],
    &[["k2", "a3", "b3"], ["k0", "a1", "b8"]],
    &[["k1", "a2", "b2"], ["k4", "a1", "b7"]],
    &[["k5", "a1", "b5"], ["k0", "a9", "b6"]],
];

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to daemon");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client {
            writer: stream,
            reader,
        }
    }

    fn send_only(&mut self, req: &Json) {
        self.writer
            .write_all(format!("{req}\n").as_bytes())
            .expect("write request");
        self.writer.flush().expect("flush request");
    }

    fn read_response(&mut self) -> Json {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        Json::parse(&line).expect("response parses")
    }

    fn rpc(&mut self, req: &Json) -> Json {
        self.send_only(req);
        self.read_response()
    }
}

fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn open_request(relation: &str) -> Json {
    obj(vec![
        ("op", Json::str("open")),
        ("relation", Json::str(relation)),
        ("table", Json::str("data")),
        (
            "attrs",
            Json::Arr(vec![Json::str("K"), Json::str("A"), Json::str("B")]),
        ),
        ("rules", Json::str(RULES)),
        (
            "master",
            obj(vec![
                ("table", Json::str("m")),
                ("attrs", Json::Arr(vec![Json::str("K"), Json::str("B")])),
                (
                    "rows",
                    Json::Arr(vec![
                        Json::Arr(vec![Json::str("k0"), Json::str("b1")]),
                        Json::Arr(vec![Json::str("k1"), Json::str("b2")]),
                    ]),
                ),
            ]),
        ),
        ("phase", Json::str("full")),
        ("default_cf", Json::Num(0.5)),
        ("eta", Json::Num(0.8)),
        ("threads", Json::Num(1.0)),
    ])
}

fn rows_json(rows: &[[&str; 3]]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| Json::Arr(r.iter().map(|v| Json::str(*v)).collect()))
            .collect(),
    )
}

fn ingest_request(relation: &str, rows: &[[&str; 3]], seq: Option<u64>) -> Json {
    let mut pairs = vec![
        ("op", Json::str("ingest")),
        ("relation", Json::str(relation)),
        ("rows", rows_json(rows)),
    ];
    if let Some(s) = seq {
        pairs.push(("seq", Json::Num(s as f64)));
    }
    obj(pairs)
}

fn assert_ok(resp: &Json) -> &Json {
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
    resp
}

fn assert_code(resp: &Json, code: &str) {
    assert_eq!(
        resp.get("ok").and_then(Json::as_bool),
        Some(false),
        "{resp}"
    );
    assert_eq!(
        resp.get("code").and_then(Json::as_str),
        Some(code),
        "{resp}"
    );
}

/// Serial reference dump (`rows` JSON render + cost) of the given batch
/// indices, in order — what any replica/promoted node must reproduce.
fn reference_for(batch_indices: &[usize]) -> (String, f64) {
    let data = Schema::of_strings("data", &["K", "A", "B"]);
    let m = Schema::of_strings("m", &["K", "B"]);
    let parsed = parse_rules(RULES, &data, Some(&m)).unwrap();
    let rules = RuleSet::new(
        data,
        Some(m.clone()),
        parsed.cfds,
        parsed.positive_mds,
        parsed.negative_mds,
    );
    let master = Relation::new(
        m,
        vec![
            Tuple::of_strs(&["k0", "b1"], 1.0),
            Tuple::of_strs(&["k1", "b2"], 1.0),
        ],
    );
    let cleaner = Cleaner::builder()
        .rules(rules)
        .master(MasterSource::external(master))
        .config(CleanConfig {
            eta: 0.8,
            parallelism: Some(NonZeroUsize::new(1).unwrap()),
            ..CleanConfig::default()
        })
        .build()
        .unwrap();
    let mut state = cleaner.begin_empty(Phase::Full);
    for &i in batch_indices {
        let tuples: Vec<Tuple> = BATCHES[i].iter().map(|r| Tuple::of_strs(r, 0.5)).collect();
        cleaner.clean_delta(&mut state, &tuples).unwrap();
    }
    (relation_to_json(state.repaired()).render(), state.cost())
}

fn scratch_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("uniclean-repl-{}-{label}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// An in-process daemon (primary or standby) plus its join handle.
struct Node {
    addr: std::net::SocketAddr,
    handle: std::thread::JoinHandle<std::io::Result<()>>,
}

fn start_node(data_dir: &Path, snapshot_every: u64, replicate_from: Option<String>) -> Node {
    let daemon = Daemon::bind(DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        shards: 2,
        queue_bound: 16,
        data_dir: Some(data_dir.to_path_buf()),
        snapshot_every,
        fsync: true,
        replicate_from,
        ..DaemonConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = daemon.local_addr();
    let handle = std::thread::spawn(move || daemon.run());
    Node { addr, handle }
}

fn shutdown_node(node: Node) {
    let mut c = Client::connect(node.addr);
    let resp = c.rpc(&obj(vec![("op", Json::str("shutdown"))]));
    assert_ok(&resp);
    drop(c);
    node.handle.join().unwrap().unwrap();
}

fn dump_rows_cost(c: &mut Client, relation: &str) -> (String, f64) {
    let d = c.rpc(&obj(vec![
        ("op", Json::str("dump")),
        ("relation", Json::str(relation)),
    ]));
    assert_ok(&d);
    (
        d.get("rows").unwrap().render(),
        d.get("cost").and_then(Json::as_f64).unwrap(),
    )
}

/// Poll the standby until its replicated seq for `relation` reaches
/// `want` (the primary's batch count), with a hard deadline.
fn wait_replicated(standby: std::net::SocketAddr, relation: &str, want: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut c = Client::connect(standby);
    loop {
        let resp = c.rpc(&obj(vec![
            ("op", Json::str("stats")),
            ("relation", Json::str(relation)),
        ]));
        let seq = resp
            .get("relations")
            .and_then(Json::as_arr)
            .and_then(|rs| rs.first())
            .and_then(|r| r.get("repl_seq"))
            .and_then(Json::as_usize)
            .unwrap_or(0) as u64;
        if resp.get("ok").and_then(Json::as_bool) == Some(true) && seq >= want {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "standby never replicated {relation} to seq {want}; last: {resp}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Standby stats may answer `unknown_relation` before the bootstrap
/// lands — wait for the relation to exist first.
fn wait_relation_exists(addr: std::net::SocketAddr, relation: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut c = Client::connect(addr);
    loop {
        let resp = c.rpc(&obj(vec![
            ("op", Json::str("check")),
            ("relation", Json::str(relation)),
        ]));
        if resp.get("ok").and_then(Json::as_bool) == Some(true) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "standby never opened {relation}; last: {resp}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

// ---------------------------------------------------------------------
// Streaming + promotion (no failpoints needed)
// ---------------------------------------------------------------------

/// A standby started against a fresh primary bootstraps from the WAL
/// open frame, tails every batch, and serves bit-identical reads.
#[test]
fn standby_tails_the_primary_and_reads_identically() {
    let pdir = scratch_dir("tail-primary");
    let sdir = scratch_dir("tail-standby");
    let primary = start_node(&pdir, 0, None);
    let mut pc = Client::connect(primary.addr);
    assert_ok(&pc.rpc(&open_request("tran")));
    assert_ok(&pc.rpc(&ingest_request("tran", BATCHES[0], None)));
    assert_ok(&pc.rpc(&ingest_request("tran", BATCHES[1], None)));

    let standby = start_node(&sdir, 0, Some(primary.addr.to_string()));
    wait_relation_exists(standby.addr, "tran");
    wait_replicated(standby.addr, "tran", 2);

    // Batches ingested while the standby is already tailing stream over.
    assert_ok(&pc.rpc(&ingest_request("tran", BATCHES[2], None)));
    assert_ok(&pc.rpc(&ingest_request("tran", BATCHES[3], None)));
    wait_replicated(standby.addr, "tran", 4);

    let mut sc = Client::connect(standby.addr);
    let (p_rows, p_cost) = dump_rows_cost(&mut pc, "tran");
    let (s_rows, s_cost) = dump_rows_cost(&mut sc, "tran");
    assert_eq!(s_rows, p_rows, "standby dump diverged from primary");
    assert_eq!(s_cost, p_cost);
    let (expect_rows, _) = reference_for(&[0, 1, 2, 3]);
    assert_eq!(s_rows, expect_rows, "standby dump diverged from reference");

    // The primary's stats carry per-tenant replica health; the standby
    // acks after applying, so poll until the ack round-trips.
    let deadline = Instant::now() + Duration::from_secs(30);
    let repl = loop {
        let stats = pc.rpc(&obj(vec![
            ("op", Json::str("stats")),
            ("relation", Json::str("tran")),
        ]));
        assert_ok(&stats);
        let rel = stats.get("relations").and_then(Json::as_arr).unwrap()[0].clone();
        let acked = rel
            .get("replication")
            .and_then(|r| r.get("acked_seq"))
            .and_then(Json::as_usize);
        if acked == Some(4) {
            break rel.get("replication").unwrap().clone();
        }
        assert!(
            Instant::now() < deadline,
            "primary never saw the standby ack seq 4; last: {rel}"
        );
        std::thread::sleep(Duration::from_millis(25));
    };
    assert_eq!(repl.get("lag_frames").and_then(Json::as_usize), Some(0));
    assert_eq!(repl.get("lag_bytes").and_then(Json::as_usize), Some(0));
    assert!(
        repl.get("heartbeat_age_seconds")
            .and_then(Json::as_f64)
            .is_some(),
        "{repl}"
    );

    // Standby-side health rides on ping.
    let ping = sc.rpc(&obj(vec![("op", Json::str("ping"))]));
    assert_ok(&ping);
    assert_eq!(ping.get("role").and_then(Json::as_str), Some("standby"));
    let repl = ping.get("replication").expect("replication in ping");
    assert_eq!(repl.get("role").and_then(Json::as_str), Some("standby"));
    assert_eq!(
        repl.get("primary").and_then(Json::as_str),
        Some(primary.addr.to_string().as_str())
    );
    assert_eq!(repl.get("connected").and_then(Json::as_bool), Some(true));

    shutdown_node(standby);
    shutdown_node(primary);
}

/// Mutating verbs on a standby answer `standby` and name the primary.
#[test]
fn standby_rejects_mutations_with_primary_pointer() {
    let pdir = scratch_dir("reject-primary");
    let sdir = scratch_dir("reject-standby");
    let primary = start_node(&pdir, 0, None);
    let standby = start_node(&sdir, 0, Some(primary.addr.to_string()));
    let mut sc = Client::connect(standby.addr);
    for req in [
        open_request("tran"),
        ingest_request("tran", BATCHES[0], None),
        obj(vec![
            ("op", Json::str("close")),
            ("relation", Json::str("tran")),
        ]),
    ] {
        let resp = sc.rpc(&req);
        assert_code(&resp, "standby");
        assert_eq!(
            resp.get("primary").and_then(Json::as_str),
            Some(primary.addr.to_string().as_str()),
            "{resp}"
        );
    }
    // `promote` on a primary is refused symmetrically.
    let mut pc = Client::connect(primary.addr);
    assert_code(
        &pc.rpc(&obj(vec![("op", Json::str("promote"))])),
        "not_standby",
    );
    shutdown_node(standby);
    shutdown_node(primary);
}

/// A standby joining after the primary compacted its WAL bootstraps
/// from the snapshot (the open-frame prefix is gone) and still lands on
/// the bit-identical state.
#[test]
fn standby_bootstraps_from_snapshot_after_compaction() {
    let pdir = scratch_dir("snapboot-primary");
    let sdir = scratch_dir("snapboot-standby");
    // snapshot_every=1: every batch compacts, so the WAL never holds
    // history and fetches from seq 0 must answer snapshot mode.
    let primary = start_node(&pdir, 1, None);
    let mut pc = Client::connect(primary.addr);
    assert_ok(&pc.rpc(&open_request("tran")));
    assert_ok(&pc.rpc(&ingest_request("tran", BATCHES[0], None)));
    assert_ok(&pc.rpc(&ingest_request("tran", BATCHES[1], None)));

    let standby = start_node(&sdir, 1, Some(primary.addr.to_string()));
    wait_relation_exists(standby.addr, "tran");
    wait_replicated(standby.addr, "tran", 2);
    // Keep streaming after the snapshot bootstrap.
    assert_ok(&pc.rpc(&ingest_request("tran", BATCHES[2], None)));
    wait_replicated(standby.addr, "tran", 3);

    let mut sc = Client::connect(standby.addr);
    let (s_rows, s_cost) = dump_rows_cost(&mut sc, "tran");
    let (expect_rows, expect_cost) = reference_for(&[0, 1, 2]);
    assert_eq!(
        s_rows, expect_rows,
        "snapshot-bootstrapped standby diverged"
    );
    assert_eq!(s_cost, expect_cost);
    shutdown_node(standby);
    shutdown_node(primary);
}

/// Promote: the standby drains, flips to serving, accepts writes, and
/// its state — before and after new writes — matches the single-node
/// reference. The promotion also survives a restart (durable standby).
#[test]
fn promotion_serves_identically_and_survives_restart() {
    let pdir = scratch_dir("promote-primary");
    let sdir = scratch_dir("promote-standby");
    let primary = start_node(&pdir, 0, None);
    let mut pc = Client::connect(primary.addr);
    assert_ok(&pc.rpc(&open_request("tran")));
    for (i, batch) in BATCHES.iter().enumerate().take(3) {
        assert_ok(&pc.rpc(&ingest_request("tran", batch, Some(i as u64 + 1))));
    }
    let standby = start_node(&sdir, 0, Some(primary.addr.to_string()));
    wait_relation_exists(standby.addr, "tran");
    wait_replicated(standby.addr, "tran", 3);
    shutdown_node(primary);

    let mut sc = Client::connect(standby.addr);
    let promoted = sc.rpc(&obj(vec![("op", Json::str("promote"))]));
    assert_ok(&promoted);
    assert_eq!(promoted.get("role").and_then(Json::as_str), Some("primary"));
    let ping = sc.rpc(&obj(vec![("op", Json::str("ping"))]));
    assert_eq!(ping.get("role").and_then(Json::as_str), Some("primary"));

    let (rows, cost) = dump_rows_cost(&mut sc, "tran");
    let (expect_rows, expect_cost) = reference_for(&[0, 1, 2]);
    assert_eq!(rows, expect_rows, "promoted state diverged from reference");
    assert_eq!(cost, expect_cost);

    // The promoted node is a real primary: it accepts writes, dedups
    // replayed client sequences, and keeps matching the reference.
    assert_ok(&sc.rpc(&ingest_request("tran", BATCHES[3], Some(4))));
    let replay = sc.rpc(&ingest_request("tran", BATCHES[3], Some(4)));
    assert_ok(&replay);
    assert_eq!(replay.get("deduped").and_then(Json::as_bool), Some(true));
    let (rows, _) = dump_rows_cost(&mut sc, "tran");
    let (expect_rows, _) = reference_for(&[0, 1, 2, 3]);
    assert_eq!(rows, expect_rows, "post-promotion ingest diverged");
    shutdown_node(standby);

    // Restart the promoted node on its own data dir: the replicated +
    // locally written state recovers bit-identically.
    let revived = start_node(&sdir, 0, None);
    let mut rc = Client::connect(revived.addr);
    let (rows, _) = dump_rows_cost(&mut rc, "tran");
    assert_eq!(rows, expect_rows, "promoted state lost across restart");
    shutdown_node(revived);
}

/// Closed tenants disappear from the stream: the standby drops local
/// state for relations the primary no longer lists.
#[test]
fn standby_prunes_closed_tenants() {
    let pdir = scratch_dir("prune-primary");
    let sdir = scratch_dir("prune-standby");
    let primary = start_node(&pdir, 0, None);
    let mut pc = Client::connect(primary.addr);
    assert_ok(&pc.rpc(&open_request("tran")));
    assert_ok(&pc.rpc(&ingest_request("tran", BATCHES[0], None)));
    let standby = start_node(&sdir, 0, Some(primary.addr.to_string()));
    wait_relation_exists(standby.addr, "tran");
    wait_replicated(standby.addr, "tran", 1);

    assert_ok(&pc.rpc(&obj(vec![
        ("op", Json::str("close")),
        ("relation", Json::str("tran")),
    ])));
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut sc = Client::connect(standby.addr);
    loop {
        let resp = sc.rpc(&obj(vec![
            ("op", Json::str("check")),
            ("relation", Json::str("tran")),
        ]));
        // The prune goes through the shard `close` path, which leaves a
        // tombstone — either code means the tenant is gone.
        if matches!(
            resp.get("code").and_then(Json::as_str),
            Some("unknown_relation") | Some("already_closed")
        ) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "standby never pruned the closed tenant; last: {resp}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    shutdown_node(standby);
    shutdown_node(primary);
}

// ---------------------------------------------------------------------
// Handshake + forward compatibility
// ---------------------------------------------------------------------

/// `hello` negotiates: current version accepted, absent version treated
/// as the v1 dialect, future versions answered with ours (the client
/// downgrades), and ancient versions refused with a structured error.
#[test]
fn hello_negotiates_versions() {
    let dir = scratch_dir("hello");
    let node = start_node(&dir, 0, None);
    let mut c = Client::connect(node.addr);
    let r = c.rpc(&obj(vec![("op", Json::str("hello"))]));
    assert_ok(&r);
    assert!(r.get("proto_version").and_then(Json::as_usize).unwrap() >= 2);
    assert_eq!(r.get("role").and_then(Json::as_str), Some("primary"));
    let r = c.rpc(&obj(vec![
        ("op", Json::str("hello")),
        ("proto_version", Json::Num(1.0)),
    ]));
    assert_ok(&r);
    let r = c.rpc(&obj(vec![
        ("op", Json::str("hello")),
        ("proto_version", Json::Num(999.0)),
    ]));
    assert_ok(&r);
    let r = c.rpc(&obj(vec![
        ("op", Json::str("hello")),
        ("proto_version", Json::Num(0.0)),
    ]));
    assert_code(&r, "proto_too_old");
    shutdown_node(node);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Forward compatibility: any request decorated with unknown fields
    /// (what a future client would send) and any future `proto_version`
    /// must be answered normally — never a panic, never a parse error.
    #[test]
    fn unknown_fields_and_future_versions_never_break_the_daemon(
        extra_key in "[a-z_]{1,12}",
        val_kind in 0usize..4,
        extra_num in 0u32..1000,
        extra_str in "[a-z0-9]{0,16}",
        future_version in 2u64..1_000_000,
        verb_idx in 0usize..4,
    ) {
        let verb = ["ping", "hello", "stats", "repl_list"][verb_idx];
        let extra_val = match val_kind {
            0 => Json::Null,
            1 => Json::Bool(extra_num % 2 == 0),
            2 => Json::Num(f64::from(extra_num)),
            _ => Json::str(&extra_str),
        };
        let dir = scratch_dir(&format!("fwd-{verb}-{future_version}"));
        let node = start_node(&dir, 0, None);
        let mut c = Client::connect(node.addr);
        let mut pairs = vec![("op", Json::str(verb))];
        if verb == "hello" {
            pairs.push(("proto_version", Json::Num(future_version as f64)));
        }
        let decorated_key = format!("x_{extra_key}");
        pairs.push((decorated_key.as_str(), extra_val.clone()));
        let resp = c.rpc(&obj(pairs));
        prop_assert_eq!(
            resp.get("ok").and_then(Json::as_bool), Some(true),
            "{}", resp
        );
        // A pre-versioning client never says hello at all and still
        // gets served.
        let resp = c.rpc(&obj(vec![("op", Json::str("ping"))]));
        prop_assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        shutdown_node(node);
    }
}

// ---------------------------------------------------------------------
// Client library: retries, failover, exactly-once
// ---------------------------------------------------------------------

/// The fault-tolerant client fails over to the standby: writes hit the
/// primary until it dies, `promote_standby` flips the roles, and the
/// same client keeps writing — with its in-flight re-send deduped, the
/// final state is the uninterrupted reference.
#[test]
fn client_library_fails_over_to_the_standby() {
    let pdir = scratch_dir("libfail-primary");
    let sdir = scratch_dir("libfail-standby");
    let primary = start_node(&pdir, 0, None);
    let standby = start_node(&sdir, 0, Some(primary.addr.to_string()));
    let mut cfg =
        ClientConfig::new(primary.addr.to_string()).with_standby(standby.addr.to_string());
    // Enough retry budget to ride out the window between the primary
    // dying and the promotion landing.
    cfg.max_retries = 30;
    let mut client = LibClient::new(cfg);
    let mut spec = open_request("tran");
    if let Json::Obj(pairs) = &mut spec {
        pairs.retain(|(k, _)| k != "op");
    }
    client.open(spec).expect("open through the client");
    for batch in BATCHES.iter().take(2) {
        client
            .ingest("tran", rows_json(batch))
            .expect("ingest through the client");
    }
    wait_relation_exists(standby.addr, "tran");
    wait_replicated(standby.addr, "tran", 2);

    // Primary gone. The client's next write bounces between the dead
    // primary (connect refused) and the unpromoted standby (`standby`
    // refusal) until the promotion — landing mid-retry from another
    // thread, as a real operator would — flips the standby to serving.
    shutdown_node(primary);
    let standby_addr = standby.addr;
    let promoter = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(300));
        let mut sc = Client::connect(standby_addr);
        assert_ok(&sc.rpc(&obj(vec![("op", Json::str("promote"))])));
    });
    for (i, batch) in BATCHES.iter().enumerate().skip(2) {
        // Re-send with explicit sequence numbers continuing the old
        // stream — exactly what a writer re-driving its in-flight
        // window after failover does.
        client
            .ingest_with_seq("tran", rows_json(batch), i as u64 + 1)
            .expect("ingest after failover");
    }
    promoter.join().unwrap();
    assert!(client.stats.failovers > 0, "client never failed over");

    let mut sc = Client::connect(standby.addr);
    let (rows, cost) = dump_rows_cost(&mut sc, "tran");
    let (expect_rows, expect_cost) = reference_for(&[0, 1, 2, 3]);
    assert_eq!(rows, expect_rows, "failed-over state diverged");
    assert_eq!(cost, expect_cost);
    shutdown_node(standby);
}

/// A fresh client seeds its sequence numbers from the server's
/// `last_client_seq`, so a writer restart can't collide or get deduped.
#[test]
fn fresh_client_seeds_sequences_from_the_server() {
    let dir = scratch_dir("seed");
    let node = start_node(&dir, 0, None);
    let mut a = LibClient::new(ClientConfig::new(node.addr.to_string()));
    let mut spec = open_request("tran");
    if let Json::Obj(pairs) = &mut spec {
        pairs.retain(|(k, _)| k != "op");
    }
    a.open(spec).unwrap();
    a.ingest("tran", rows_json(BATCHES[0])).unwrap();
    a.ingest("tran", rows_json(BATCHES[1])).unwrap();
    drop(a);
    // A second client (a restarted writer) continues the stream: its
    // first ingest must apply, not dedup.
    let mut b = LibClient::new(ClientConfig::new(node.addr.to_string()));
    let resp = b.ingest("tran", rows_json(BATCHES[2])).unwrap();
    assert!(
        resp.get("deduped").is_none(),
        "seeded ingest deduped: {resp}"
    );
    let mut c = Client::connect(node.addr);
    let (rows, _) = dump_rows_cost(&mut c, "tran");
    let (expect_rows, _) = reference_for(&[0, 1, 2]);
    assert_eq!(rows, expect_rows);
    shutdown_node(node);
}

// ---------------------------------------------------------------------
// Exactly-once through connection drops (in-test TCP proxy)
// ---------------------------------------------------------------------

/// A byte-budgeted TCP proxy: the first connection through it forwards
/// at most `budget` bytes client→server, then severs both directions —
/// a connection drop at an arbitrary point mid-request (or before the
/// reply relays). Later connections pass through untouched.
fn drop_proxy(upstream: std::net::SocketAddr, budget: usize) -> std::net::SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind proxy");
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let mut first = true;
        for inbound in listener.incoming() {
            let Ok(inbound) = inbound else { return };
            let Ok(out) = TcpStream::connect(upstream) else {
                return;
            };
            let limit = if first { Some(budget) } else { None };
            first = false;
            let mut inbound_r = match inbound.try_clone() {
                Ok(s) => s,
                Err(_) => return,
            };
            let mut out_w = match out.try_clone() {
                Ok(s) => s,
                Err(_) => return,
            };
            // server→client relay; dies when the sockets shut down.
            let inbound_w = inbound.try_clone().ok();
            let out_r = out.try_clone().ok();
            let relay = std::thread::spawn(move || {
                if let (Some(mut r), Some(mut w)) = (out_r, inbound_w) {
                    let _ = std::io::copy(&mut r, &mut w);
                }
            });
            // client→server with the byte budget.
            let mut forwarded = 0usize;
            let mut buf = [0u8; 256];
            loop {
                let allowed = match limit {
                    Some(l) if forwarded >= l => 0,
                    Some(l) => (l - forwarded).min(buf.len()),
                    None => buf.len(),
                };
                if allowed == 0 {
                    break;
                }
                match inbound_r.read(&mut buf[..allowed]) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        if out_w.write_all(&buf[..n]).is_err() {
                            break;
                        }
                        let _ = out_w.flush();
                        forwarded += n;
                    }
                }
            }
            // Sever both directions so the client sees a dead
            // connection whatever it was waiting on.
            if limit.is_some() {
                let _ = inbound.shutdown(std::net::Shutdown::Both);
                let _ = out.shutdown(std::net::Shutdown::Both);
            }
            let _ = relay.join();
        }
    });
    addr
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Drop the connection after an arbitrary number of request bytes
    /// mid-ingest; the client retries with the same sequence number and
    /// the batch lands **exactly once** — whether the drop happened
    /// before the server saw the line (retry applies it) or after
    /// (retry dedups).
    #[test]
    fn connection_drop_mid_ingest_is_exactly_once(cut in 1usize..400) {
        let dir = scratch_dir(&format!("proxy-{cut}"));
        let node = start_node(&dir, 0, None);
        // Open directly (not through the proxy) so the budget is spent
        // entirely on the ingest.
        let mut direct = Client::connect(node.addr);
        assert_ok(&direct.rpc(&open_request("tran")));

        let proxy = drop_proxy(node.addr, cut);
        let mut client = LibClient::new(
            ClientConfig::new(proxy.to_string())
        );
        client
            .ingest_with_seq("tran", rows_json(BATCHES[0]), 1)
            .expect("ingest through the dropping proxy");

        let stats = direct.rpc(&obj(vec![
            ("op", Json::str("stats")),
            ("relation", Json::str("tran")),
        ]));
        assert_ok(&stats);
        let rel = &stats.get("relations").and_then(Json::as_arr).unwrap()[0];
        prop_assert_eq!(
            rel.get("batches").and_then(Json::as_usize), Some(1),
            "batch applied more or less than once: {}", rel
        );
        let (rows, _) = dump_rows_cost(&mut direct, "tran");
        let (expect_rows, _) = reference_for(&[0]);
        prop_assert_eq!(rows, expect_rows);
        shutdown_node(node);
    }
}

// ---------------------------------------------------------------------
// Failover matrix (failpoints build only)
// ---------------------------------------------------------------------

#[cfg(feature = "failpoints")]
mod failover_matrix {
    use super::*;

    /// Spawn the real binary as a durable primary with one armed
    /// failpoint (env only reaches the child, never the in-process
    /// standby).
    fn spawn_armed_primary(
        data_dir: &Path,
        snapshot_every: u64,
        failpoints: &str,
    ) -> (
        std::process::Child,
        std::net::SocketAddr,
        BufReader<std::process::ChildStdout>,
    ) {
        let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_uniclean"))
            .args(["serve", "--addr", "127.0.0.1:0", "--shards", "2"])
            .arg("--data-dir")
            .arg(data_dir)
            .args(["--snapshot-every", &snapshot_every.to_string()])
            .env("UNICLEAN_FAILPOINTS", failpoints)
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawn uniclean serve");
        let stdout = child.stdout.take().unwrap();
        let mut lines = BufReader::new(stdout);
        let mut banner = String::new();
        lines.read_line(&mut banner).unwrap();
        let addr: std::net::SocketAddr = banner
            .split("listening on ")
            .nth(1)
            .and_then(|r| r.split_whitespace().next())
            .unwrap_or_else(|| panic!("no address in banner {banner:?}"))
            .parse()
            .unwrap();
        (child, addr, lines)
    }

    struct FailoverCase {
        /// `UNICLEAN_FAILPOINTS` spec arming the fatal window on the
        /// primary.
        arm: &'static str,
        snapshot_every: u64,
        /// Batches acknowledged (and replicated) before the fatal one.
        acked: usize,
    }

    /// Every durability kill window from the single-node matrix, now
    /// with a standby attached. Whatever the window, promote + re-send
    /// must land on the reference of `acked + 1` batches: the re-sent
    /// in-flight batch either applies (the frame never replicated) or
    /// dedups (it did).
    const FAILOVER_MATRIX: [FailoverCase; 9] = [
        FailoverCase {
            arm: "wal.pre_frame=kill@3",
            snapshot_every: 0,
            acked: 1,
        },
        FailoverCase {
            arm: "wal.mid_frame=kill@3",
            snapshot_every: 0,
            acked: 1,
        },
        FailoverCase {
            arm: "wal.pre_fsync=kill@3",
            snapshot_every: 0,
            acked: 1,
        },
        FailoverCase {
            arm: "wal.post_fsync=kill@3",
            snapshot_every: 0,
            acked: 1,
        },
        FailoverCase {
            arm: "ingest.apply=kill@2",
            snapshot_every: 0,
            acked: 1,
        },
        FailoverCase {
            arm: "ingest.post_ack=kill@2",
            snapshot_every: 0,
            acked: 1,
        },
        FailoverCase {
            arm: "snapshot.mid_write=kill@1",
            snapshot_every: 1,
            acked: 0,
        },
        FailoverCase {
            arm: "snapshot.pre_rename=kill@1",
            snapshot_every: 1,
            acked: 0,
        },
        FailoverCase {
            arm: "snapshot.pre_wal_rewrite=kill@1",
            snapshot_every: 1,
            acked: 0,
        },
    ];

    #[test]
    fn kill_primary_promote_standby_resend_lands_on_reference() {
        for case in &FAILOVER_MATRIX {
            let label = case.arm;
            let slug = label.replace(['.', '=', '@'], "-");
            let pdir = scratch_dir(&format!("fm-{slug}-p"));
            let sdir = scratch_dir(&format!("fm-{slug}-s"));
            let (mut child, paddr, _stdout) =
                spawn_armed_primary(&pdir, case.snapshot_every, case.arm);
            let mut pc = Client::connect(paddr);
            assert_ok(&pc.rpc(&open_request("tran")));
            for (i, batch) in BATCHES.iter().enumerate().take(case.acked) {
                assert_ok(&pc.rpc(&ingest_request("tran", batch, Some(i as u64 + 1))));
            }
            // Attach the standby and let it replicate the acked prefix
            // before the fatal batch — the failover guarantee is about
            // acknowledged data.
            let standby = start_node(&sdir, 0, Some(paddr.to_string()));
            wait_relation_exists(standby.addr, "tran");
            wait_replicated(standby.addr, "tran", case.acked as u64);

            // The fatal batch: the primary aborts inside the armed
            // window; some windows may still have acked.
            pc.send_only(&ingest_request(
                "tran",
                BATCHES[case.acked],
                Some(case.acked as u64 + 1),
            ));
            let mut fatal_line = String::new();
            let _ = pc.reader.read_line(&mut fatal_line);
            let status = child.wait().expect("reap the primary");
            assert!(!status.success(), "{label}: primary should have aborted");
            drop(pc);

            // Promote and re-drive the in-flight batch with the same
            // sequence number.
            let mut sc = Client::connect(standby.addr);
            assert_ok(&sc.rpc(&obj(vec![("op", Json::str("promote"))])));
            assert_ok(&sc.rpc(&ingest_request(
                "tran",
                BATCHES[case.acked],
                Some(case.acked as u64 + 1),
            )));

            let want: Vec<usize> = (0..=case.acked).collect();
            let (expect_rows, expect_cost) = reference_for(&want);
            let (rows, cost) = dump_rows_cost(&mut sc, "tran");
            assert_eq!(
                rows, expect_rows,
                "{label}: promoted state diverged from the uninterrupted reference"
            );
            assert_eq!(cost, expect_cost, "{label}: promoted cost diverged");
            shutdown_node(standby);
        }
    }

    /// Network failpoints on the replication stream: every mangling of
    /// a fetch reply (drop, truncate, corrupt, duplicate, delay,
    /// transient errors on fetch and ack) must only delay the standby —
    /// it re-fetches and converges to the bit-identical state.
    #[test]
    fn mangled_replication_streams_only_delay_the_standby() {
        const NET_ARMS: [&str; 7] = [
            "repl.fetch.net=disconnect@2",
            "repl.fetch.net=truncate@2",
            "repl.fetch.net=corrupt@2",
            "repl.fetch.net=dup@2",
            "repl.fetch.net=delay@2",
            "repl.fetch=error@2",
            "repl.ack=error@1",
        ];
        for arm in NET_ARMS {
            let slug = arm.replace(['.', '=', '@'], "-");
            let pdir = scratch_dir(&format!("net-{slug}-p"));
            let sdir = scratch_dir(&format!("net-{slug}-s"));
            let (mut child, paddr, _stdout) = spawn_armed_primary(&pdir, 0, arm);
            let mut pc = Client::connect(paddr);
            assert_ok(&pc.rpc(&open_request("tran")));
            for (i, batch) in BATCHES.iter().enumerate() {
                assert_ok(&pc.rpc(&ingest_request("tran", batch, Some(i as u64 + 1))));
            }
            let standby = start_node(&sdir, 0, Some(paddr.to_string()));
            wait_relation_exists(standby.addr, "tran");
            wait_replicated(standby.addr, "tran", BATCHES.len() as u64);

            let (p_rows, p_cost) = dump_rows_cost(&mut pc, "tran");
            let mut sc = Client::connect(standby.addr);
            assert_ok(&sc.rpc(&obj(vec![("op", Json::str("promote"))])));
            let (s_rows, s_cost) = dump_rows_cost(&mut sc, "tran");
            assert_eq!(
                s_rows, p_rows,
                "{arm}: standby diverged after a mangled stream"
            );
            assert_eq!(s_cost, p_cost, "{arm}: cost diverged");
            let (expect_rows, _) = reference_for(&[0, 1, 2, 3]);
            assert_eq!(s_rows, expect_rows, "{arm}: reference diverged");

            assert_ok(&pc.rpc(&obj(vec![("op", Json::str("shutdown"))])));
            drop(pc);
            assert!(child.wait().unwrap().success());
            shutdown_node(standby);
        }
    }
}
