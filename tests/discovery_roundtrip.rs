//! Integration test: discovery re-finds the generators' rules.
//!
//! The workload generators build data whose attributes are functionally
//! correlated exactly as their rule sets demand; running discovery on the
//! clean data must therefore recover those dependencies (modulo
//! minimality: an FD may surface through a smaller LHS that also holds).

use uniclean::datagen::{dblp_workload, hosp_workload, GenParams};
use uniclean::discovery::{discover_fds, suggest_mds, FdConfig};
use uniclean::model::AttrId;
use uniclean::rules::{satisfies_cfd, Cfd};

fn params() -> GenParams {
    GenParams {
        tuples: 400,
        master_tuples: 150,
        ..GenParams::default()
    }
}

/// Does the discovered set contain `lhs → rhs` or a sub-LHS version of it?
fn covered(fds: &[Cfd], schema: &uniclean::model::Schema, lhs: &[&str], rhs: &str) -> bool {
    let lhs_ids: Vec<AttrId> = lhs.iter().map(|a| schema.attr_id(a).unwrap()).collect();
    let rhs_id = schema.attr_id(rhs).unwrap();
    fds.iter()
        .any(|f| f.rhs()[0] == rhs_id && f.lhs().iter().all(|a| lhs_ids.contains(a)))
}

#[test]
fn hosp_generator_fds_are_rediscovered() {
    let w = hosp_workload(&params());
    let fds = discover_fds(
        &w.truth,
        &FdConfig {
            max_lhs: 2,
            min_support_pairs: 2,
        },
    );
    let s = w.truth.schema();
    // The geography and measure clusters of the HOSP rule set.
    for (lhs, rhs) in [
        (vec!["ZIP"], "City"),
        (vec!["ZIP"], "State"),
        (vec!["ZIP"], "AreaCode"),
        (vec!["City"], "County"),
        (vec!["MeasureCode"], "MeasureName"),
        (vec!["MeasureCode"], "Condition"),
        (vec!["ProviderID"], "HospitalName"),
        (vec!["ProviderID"], "Phone"),
        (vec!["State", "MeasureCode"], "StateAvg"),
    ] {
        assert!(
            covered(&fds, s, &lhs, rhs),
            "expected {lhs:?} -> {rhs} (or a sub-LHS) among {} discovered FDs",
            fds.len()
        );
    }
}

#[test]
fn dblp_generator_fds_are_rediscovered() {
    let w = dblp_workload(&params());
    let fds = discover_fds(
        &w.truth,
        &FdConfig {
            max_lhs: 2,
            min_support_pairs: 2,
        },
    );
    let s = w.truth.schema();
    for (lhs, rhs) in [
        (vec!["Journal"], "Publisher"),
        (vec!["Journal"], "Venue"),
        (vec!["Key"], "Title"),
        (vec!["Key"], "Authors"),
        (vec!["Journal", "Volume"], "Year"),
    ] {
        assert!(covered(&fds, s, &lhs, rhs), "expected {lhs:?} -> {rhs}");
    }
}

#[test]
fn discovered_fds_hold_on_both_truth_and_master() {
    let w = hosp_workload(&params());
    let fds = discover_fds(
        &w.truth,
        &FdConfig {
            max_lhs: 2,
            min_support_pairs: 2,
        },
    );
    assert!(!fds.is_empty());
    for fd in &fds {
        assert!(satisfies_cfd(fd, &w.truth), "{fd} fails on truth");
    }
}

#[test]
fn suggested_mds_vet_down_to_sound_match_keys() {
    // Suggestion from a finite sample overfits (a column can be
    // *accidentally* unique in 150 master rows); the §4-style vetting pass
    // — validate candidates on a clean sample — must keep the real entity
    // keys and may drop the accidental ones.
    let w = hosp_workload(&params());
    let sample_fds = discover_fds(
        &w.truth,
        &FdConfig {
            max_lhs: 1,
            min_support_pairs: 2,
        },
    );
    let suggested = suggest_mds(&w.master, w.rules.schema(), 1, &sample_fds);
    assert!(
        !suggested.is_empty(),
        "master keys (ProviderID, Phone…) must lift to MDs"
    );
    let vetted: Vec<_> = suggested
        .into_iter()
        .filter(|md| uniclean::rules::satisfies_md(md, &w.truth, &w.master))
        .collect();
    assert!(!vetted.is_empty(), "vetting must keep sound keys");
    let key_names: Vec<&str> = vetted
        .iter()
        .map(|md| w.master.schema().attr_name(md.premises()[0].master_attr))
        .collect();
    assert!(key_names.contains(&"ProviderID"), "{key_names:?}");
    assert!(key_names.contains(&"Phone"), "{key_names:?}");
}

#[test]
fn discovery_on_dirty_data_loses_rules() {
    // Profiling dirty data misses dependencies the noise broke — the
    // reason the paper routes discovery through clean samples and the
    // consistency analysis.
    let clean = hosp_workload(&GenParams {
        noise_rate: 0.0,
        ..params()
    });
    let dirty = hosp_workload(&GenParams {
        noise_rate: 0.10,
        ..params()
    });
    let cfg = FdConfig {
        max_lhs: 1,
        min_support_pairs: 2,
    };
    let n_clean = discover_fds(&clean.truth, &cfg).len();
    let n_dirty = discover_fds(&dirty.dirty, &cfg).len();
    assert!(
        n_dirty < n_clean,
        "noise must break dependencies: clean {n_clean} vs dirty {n_dirty}"
    );
}
