//! Integration tests over the generated workloads: end-to-end cleaning on
//! all three datasets, quality orderings from the paper's evaluation, and
//! the consistency guarantee of the full pipeline.

use uniclean::baselines::{quaid_repair, sortn_match, uniclean_matches, SortNConfig};
use uniclean::datagen::{
    dblp_workload, hosp_workload, tpch_workload, GenParams, TpchScale, Workload,
};
use uniclean::metrics::{matching_quality, repair_quality};
use uniclean::model::FixMark;
use uniclean::rules::{satisfies_all, RuleSet};
use uniclean::{CleanConfig, Cleaner, MasterSource, Phase};

fn params() -> GenParams {
    GenParams {
        tuples: 600,
        master_tuples: 200,
        noise_rate: 0.06,
        ..GenParams::default()
    }
}

fn config() -> CleanConfig {
    CleanConfig {
        eta: 1.0,
        delta_entropy: 0.8,
        ..CleanConfig::default()
    }
}

/// A session over a workload's rules and master data.
fn session(w: &Workload) -> Cleaner {
    Cleaner::builder()
        .rules(w.rules.clone())
        .master(MasterSource::external(w.master.clone()))
        .config(config())
        .build()
        .expect("workload sessions are well-formed")
}

/// A CFD-only session (no master data).
fn cfd_session(rules: RuleSet) -> Cleaner {
    Cleaner::builder()
        .rules(rules)
        .config(config())
        .build()
        .expect("CFD-only session")
}

fn all_workloads() -> Vec<Workload> {
    vec![
        hosp_workload(&params()),
        dblp_workload(&params()),
        tpch_workload(&params(), TpchScale::default()),
    ]
}

#[test]
fn full_pipeline_reaches_a_consistent_repair_on_every_dataset() {
    for w in all_workloads() {
        let uni = session(&w);
        let r = uni.clean(&w.dirty, Phase::Full);
        assert!(r.consistent, "{}: repair must satisfy Σ and Γ", w.name);
        assert!(
            satisfies_all(w.rules.cfds(), w.rules.mds(), &r.repaired, &w.master),
            "{}: double-check through the rules crate",
            w.name
        );
    }
}

#[test]
fn deterministic_fixes_are_always_correct() {
    // The generators assert only correct cells (per §5's correctness
    // assumptions), so cRepair's output must agree with the ground truth
    // everywhere — the experimental Fig. 12 "precision ≈ 1" claim, exact.
    for w in all_workloads() {
        let uni = session(&w);
        let r = uni.clean(&w.dirty, Phase::CRepair);
        for fix in r.report.records() {
            assert_eq!(fix.mark, FixMark::Deterministic);
            assert_eq!(
                &fix.new,
                w.truth.tuple(fix.tuple).value(fix.attr),
                "{}: deterministic fix on {}/{:?} must match the truth",
                w.name,
                fix.tuple,
                fix.attr
            );
        }
        assert!(
            !r.report.is_empty(),
            "{}: some deterministic fixes expected",
            w.name
        );
    }
}

#[test]
fn phase_quality_ordering_matches_figure_12() {
    let w = hosp_workload(&params());
    let uni = session(&w);
    let c = uni.clean(&w.dirty, Phase::CRepair);
    let ce = uni.clean(&w.dirty, Phase::CERepair);
    let full = uni.clean(&w.dirty, Phase::Full);
    let qc = repair_quality(&w.dirty, &c.repaired, &w.truth);
    let qce = repair_quality(&w.dirty, &ce.repaired, &w.truth);
    let qf = repair_quality(&w.dirty, &full.repaired, &w.truth);
    // Precision decreases along the phases, recall increases.
    assert!(
        qc.precision >= qce.precision - 1e-9,
        "{} vs {}",
        qc.precision,
        qce.precision
    );
    assert!(
        qce.precision >= qf.precision - 1e-9,
        "{} vs {}",
        qce.precision,
        qf.precision
    );
    assert!(qc.recall <= qce.recall + 1e-9);
    assert!(qce.recall <= qf.recall + 1e-9);
}

#[test]
fn uni_beats_quaid_and_unicfd_on_repairing() {
    // Exp-1's headline orderings.
    for w in [hosp_workload(&params()), dblp_workload(&params())] {
        let uni = session(&w);
        let full = uni.clean(&w.dirty, Phase::Full);
        let q_uni = repair_quality(&w.dirty, &full.repaired, &w.truth).f1();

        let uni_cfd = cfd_session(w.rules.without_mds());
        let r = uni_cfd.clean(&w.dirty, Phase::Full);
        let q_unicfd = repair_quality(&w.dirty, &r.repaired, &w.truth).f1();

        let (rep, _) = quaid_repair(&w.dirty, &w.rules, &config());
        let q_quaid = repair_quality(&w.dirty, &rep, &w.truth).f1();

        assert!(q_uni > q_quaid, "{}: uni {q_uni} ≤ quaid {q_quaid}", w.name);
        assert!(
            q_uni >= q_unicfd - 1e-9,
            "{}: uni {q_uni} < uni(cfd) {q_unicfd}",
            w.name
        );
    }
}

#[test]
fn uni_beats_sortn_on_matching() {
    // Exp-2's headline ordering.
    let w = hosp_workload(&GenParams {
        noise_rate: 0.08,
        ..params()
    });
    let found = sortn_match(&w.dirty, &w.master, w.rules.mds(), SortNConfig::default());
    let q_sortn = matching_quality(&found, &w.true_matches).f1();

    let uni = session(&w);
    let r = uni.clean(&w.dirty, Phase::Full);
    let found = uniclean_matches(&r.repaired, &w.master, w.rules.mds());
    let q_uni = matching_quality(&found, &w.true_matches).f1();
    assert!(q_uni >= q_sortn, "uni {q_uni} < sortn {q_sortn}");
}

#[test]
fn cleaning_is_deterministic_across_runs() {
    let w = hosp_workload(&params());
    let uni = session(&w);
    let a = uni.clean(&w.dirty, Phase::Full);
    let b = uni.clean(&w.dirty, Phase::Full);
    assert_eq!(a.repaired.diff_cells(&b.repaired), 0);
    assert_eq!(a.report.len(), b.report.len());
}

#[test]
fn zero_noise_needs_no_fixes() {
    let w = hosp_workload(&GenParams {
        noise_rate: 0.0,
        ..params()
    });
    let uni = session(&w);
    let r = uni.clean(&w.dirty, Phase::Full);
    assert!(r.report.is_empty(), "clean data must stay untouched");
    assert!(r.consistent);
    assert_eq!(r.cost, 0.0);
}

#[test]
fn tpch_rule_sweeps_still_clean_consistently() {
    let w = tpch_workload(
        &GenParams {
            tuples: 300,
            master_tuples: 100,
            ..params()
        },
        TpchScale {
            sigma_multiplier: 3,
            gamma_multiplier: 2,
        },
    );
    let uni = session(&w);
    let r = uni.clean(&w.dirty, Phase::Full);
    assert!(r.consistent);
}

#[test]
fn master_free_self_matching_stays_competitive() {
    // §1/§9: "While master data is desirable in the process, it is not a
    // must … reliable and heuristic fixes would not degrade substantially."
    let w = hosp_workload(&params());
    let with_master = {
        let uni = session(&w);
        let r = uni.clean(&w.dirty, Phase::Full);
        repair_quality(&w.dirty, &r.repaired, &w.truth).f1()
    };
    let self_matching = {
        let uni = Cleaner::builder()
            .rules(w.rules.clone())
            .master(MasterSource::SelfSnapshot)
            .config(config())
            .build()
            .expect("HOSP rules mirror their master schema");
        let r = uni.clean(&w.dirty, Phase::Full);
        repair_quality(&w.dirty, &r.repaired, &w.truth).f1()
    };
    let cfd_only = {
        let r = cfd_session(w.rules.without_mds()).clean(&w.dirty, Phase::Full);
        repair_quality(&w.dirty, &r.repaired, &w.truth).f1()
    };
    assert!(
        self_matching > cfd_only,
        "self-matching {self_matching} must beat CFDs-only {cfd_only}"
    );
    assert!(
        self_matching > with_master - 0.15,
        "self-matching {self_matching} must not degrade substantially vs {with_master}"
    );
}
