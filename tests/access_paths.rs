//! Access-path completeness harness: for arbitrary relations × every
//! predicate family × every plan shape (exact, composite, lev-count,
//! q-gram count filter, Jaro prefilter, intersection), the candidate set
//! is a **superset** of the reference full-scan match set and
//! `matches_into` output is **identical** to it — blocking may shrink
//! candidates, never verified matches.
//!
//! Every path is complete by construction (there is no top-`l`
//! truncation knob anymore): `~lev` runs through the padded q-gram count
//! bound, `~qgram`/`~jaro`/`~jw` through their count/1-gram filters, and
//! equality through hash lookups.

use std::sync::Arc;

use proptest::prelude::*;
use uniclean::core::{IndexPolicy, MasterIndex, ProbeScratch};
use uniclean::model::{Relation, Schema, Tuple, TupleId};
use uniclean::rules::{parse_rules, Md};

fn schemas() -> (Arc<Schema>, Arc<Schema>) {
    (
        Schema::of_strings("tran", &["A", "B", "X"]),
        Schema::of_strings("card", &["A", "B", "X"]),
    )
}

/// One MD per plan shape / predicate family the planner can produce.
fn family_mds(tran: &Arc<Schema>, card: &Arc<Schema>) -> Vec<Md> {
    let text = "\
        md exact: tran[A] = card[A] -> tran[X] <=> card[X]\n\
        md composite: tran[A] = card[A] AND tran[B] = card[B] -> tran[X] <=> card[X]\n\
        md lev: tran[A] ~lev(1) card[A] -> tran[X] <=> card[X]\n\
        md lev2: tran[B] ~lev(2) card[B] -> tran[X] <=> card[X]\n\
        md qgram: tran[A] ~qgram(2,0.5) card[A] -> tran[X] <=> card[X]\n\
        md jaro: tran[A] ~jaro(0.8) card[A] -> tran[X] <=> card[X]\n\
        md jw: tran[A] ~jw(0.85) card[A] -> tran[X] <=> card[X]\n\
        md eq_and_qgram: tran[A] = card[A] AND tran[B] ~qgram(2,0.4) card[B] -> tran[X] <=> card[X]\n\
        md lev_and_jaro: tran[A] ~lev(1) card[A] AND tran[B] ~jaro(0.75) card[B] -> tran[X] <=> card[X]\n\
        md degenerate_qgram: tran[A] ~qgram(2,0) card[A] -> tran[X] <=> card[X]\n\
        md degenerate_jaro: tran[A] ~jaro(0.2) card[A] -> tran[X] <=> card[X]\n";
    parse_rules(text, tran, Some(card)).unwrap().positive_mds
}

fn relation(schema: &Arc<Schema>, rows: &[(String, String)], cf: f64) -> Relation {
    Relation::new(
        schema.clone(),
        rows.iter()
            .enumerate()
            .map(|(i, (a, b))| Tuple::of_strs(&[a, b, &format!("x{i}")], cf))
            .collect(),
    )
}

fn reference(md: &Md, t: &Tuple, dm: &Relation) -> Vec<TupleId> {
    dm.iter()
        .filter(|(_, s)| md.premise_matches(t, s))
        .map(|(sid, _)| sid)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Candidates ⊇ reference matches and verified matches ≡ reference,
    /// for every family and under both the default policy and a policy
    /// that forces intersection plans whenever a second conjunct exists.
    #[test]
    fn every_access_path_is_match_preserving(
        master_rows in proptest::collection::vec(("[ab]{0,4}", "[ab]{0,3}"), 1..8),
        probes in proptest::collection::vec(("[ab]{0,4}", "[ab]{0,3}"), 1..6),
    ) {
        let (tran, card) = schemas();
        let mds = family_mds(&tran, &card);
        let dm = relation(&card, &master_rows, 1.0);
        let policies = [
            ("default", IndexPolicy::default()),
            ("intersect-always", IndexPolicy { intersect_above: 0.0 }),
        ];
        for interning in [true, false] {
            for (policy_name, policy) in policies {
                let idx = MasterIndex::build_with_policy(&mds, &dm, interning, 1, policy);
                let mut scratch = ProbeScratch::new();
                let mut verified = Vec::new();
                for (i, md) in mds.iter().enumerate() {
                    prop_assert!(idx.is_indexed(i), "md {} not indexed", md.name());
                    for (pa, pb) in &probes {
                        let t = Tuple::of_strs(&[pa, pb, "probe"], 0.5);
                        let want = reference(md, &t, &dm);
                        let mut cands = Vec::new();
                        idx.for_each_candidate(i, md, &t, &mut scratch, |sid| cands.push(sid));
                        for sid in &want {
                            prop_assert!(
                                cands.contains(sid),
                                "[{policy_name} interning={interning}] md {} probe ({pa:?},{pb:?}): \
                                 true match {sid:?} pruned (plan {})",
                                md.name(),
                                idx.describe_plan(i, md)
                            );
                        }
                        idx.matches_into(i, md, &t, &dm, None, &mut scratch, &mut verified);
                        prop_assert_eq!(
                            &verified,
                            &want,
                            "[{} interning={}] md {} probe ({:?},{:?}) plan {}",
                            policy_name,
                            interning,
                            md.name(),
                            pa,
                            pb,
                            idx.describe_plan(i, md)
                        );
                    }
                }
            }
        }
    }

    /// Exclusion and buffer reuse behave identically on every path.
    #[test]
    fn exclusion_is_honored_on_every_path(
        master_rows in proptest::collection::vec(("[ab]{0,3}", "[ab]{0,2}"), 1..6),
    ) {
        let (tran, card) = schemas();
        let mds = family_mds(&tran, &card);
        let dm = relation(&card, &master_rows, 1.0);
        let idx = MasterIndex::build(&mds, &dm);
        let mut scratch = ProbeScratch::new();
        let mut buf = Vec::new();
        for (i, md) in mds.iter().enumerate() {
            let (pa, pb) = &master_rows[0];
            let t = Tuple::of_strs(&[pa, pb, "probe"], 0.5);
            let want: Vec<TupleId> = reference(md, &t, &dm)
                .into_iter()
                .filter(|&sid| sid != TupleId(0))
                .collect();
            idx.matches_into(i, md, &t, &dm, Some(TupleId(0)), &mut scratch, &mut buf);
            prop_assert_eq!(&buf, &want, "md {}", md.name());
        }
        let _ = tran;
    }
}

/// The planner's decision table, pinned: each family lands on its intended
/// plan shape.
#[test]
fn planner_decision_table() {
    let (tran, card) = schemas();
    let mds = family_mds(&tran, &card);
    let rows: Vec<(String, String)> = (0..30)
        .map(|i| (format!("v{i}"), format!("w{}", i % 5)))
        .collect();
    let dm = relation(&card, &rows, 1.0);
    let idx = MasterIndex::build(&mds, &dm);
    let plan = |name: &str| {
        let (i, md) = mds
            .iter()
            .enumerate()
            .find(|(_, m)| m.name() == name)
            .expect("md exists");
        idx.describe_plan(i, md)
    };
    assert!(plan("exact").starts_with("exact-eq"), "{}", plan("exact"));
    assert!(
        plan("composite").starts_with("composite-eq"),
        "{}",
        plan("composite")
    );
    assert!(plan("lev").starts_with("lev-count"), "{}", plan("lev"));
    assert!(plan("lev2").starts_with("lev-count"), "{}", plan("lev2"));
    assert!(
        plan("qgram").starts_with("qgram-count"),
        "{}",
        plan("qgram")
    );
    assert!(plan("jaro").starts_with("jaro-1gram"), "{}", plan("jaro"));
    assert!(plan("jw").starts_with("jaro-1gram"), "{}", plan("jw"));
    // Selective equality ⇒ no second probe needed at the default policy.
    assert!(
        plan("eq_and_qgram").starts_with("exact-eq"),
        "{}",
        plan("eq_and_qgram")
    );
    // Degenerate thresholds stay indexed (the filter keeps every row but
    // the plan is not a scan, and verification still prunes).
    for name in ["degenerate_qgram", "degenerate_jaro"] {
        let (i, _) = mds
            .iter()
            .enumerate()
            .find(|(_, m)| m.name() == name)
            .unwrap();
        assert!(idx.is_indexed(i), "{name} must not scan");
    }
}

/// Forcing intersection everywhere must not change verified matches on a
/// workload with correlated columns (the adversarial case for a planner
/// bug: a filter that *would* prune a true match).
#[test]
fn forced_intersection_equals_default_on_correlated_data() {
    let (tran, card) = schemas();
    let mds = family_mds(&tran, &card);
    let rows: Vec<(String, String)> = (0..40)
        .map(|i| (format!("a{}", i % 7), format!("b{}", i % 3)))
        .collect();
    let dm = relation(&card, &rows, 1.0);
    let default = MasterIndex::build(&mds, &dm);
    let forced = MasterIndex::build_with_policy(
        &mds,
        &dm,
        true,
        2,
        IndexPolicy {
            intersect_above: 0.0,
        },
    );
    let (mut sa, mut sb) = (ProbeScratch::new(), ProbeScratch::new());
    let (mut a, mut b) = (Vec::new(), Vec::new());
    for (i, md) in mds.iter().enumerate() {
        for (j, (ra, rb)) in rows.iter().enumerate() {
            let t = Tuple::of_strs(&[ra, rb, "x"], 0.5);
            default.matches_into(i, md, &t, &dm, None, &mut sa, &mut a);
            forced.matches_into(i, md, &t, &dm, None, &mut sb, &mut b);
            assert_eq!(a, b, "md {} row {j}", md.name());
        }
    }
    let _ = tran;
}
