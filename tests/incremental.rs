//! Incremental-cleaning equivalence suite: `Cleaner::begin` + repeated
//! `Cleaner::clean_delta` must leave the state bit-identical — cell
//! values, confidences, marks, plus cost and acceptance — to a
//! from-scratch `Cleaner::clean` over the concatenated relation, across
//! parallelism {1, 4} × interning {on, off}, on both the fast
//! (continuation) path and the escalation path.

use std::num::NonZeroUsize;
use std::sync::Arc;

use proptest::prelude::*;
use uniclean::core::{
    CleanConfig, CleanError, CleanResult, Cleaner, MasterSource, Phase, RepairState,
};
use uniclean::model::{FixMark, Relation, Schema, Tuple, Value};
use uniclean::rules::{parse_rules, RuleSet};

/// Three interacting rules over a 3-attribute schema: a variable FD, a
/// constant CFD and an MD — enough to exercise every phase, witness
/// waiting, and cross-rule cascades between settled and batch tuples.
fn scenario_rules() -> (Arc<Schema>, RuleSet, Relation) {
    let r = Schema::of_strings("r", &["K", "A", "B"]);
    let rm = Schema::of_strings("rm", &["K", "B"]);
    let text = "cfd fd: r([K] -> [A])\n\
                cfd cc: r([A=a1] -> [B=b1])\n\
                md m: r[K] = rm[K] -> r[B] <=> rm[B]";
    let parsed = parse_rules(text, &r, Some(&rm)).unwrap();
    let rules = RuleSet::new(
        r.clone(),
        Some(rm.clone()),
        parsed.cfds,
        parsed.positive_mds,
        parsed.negative_mds,
    );
    let master = Relation::new(
        rm,
        vec![
            Tuple::of_strs(&["k0", "b1"], 1.0),
            Tuple::of_strs(&["k1", "b2"], 1.0),
        ],
    );
    (r, rules, master)
}

/// Decode one generated row `(k, a, b, cf_bits)` into a tuple with mixed
/// per-cell confidences (0, 0.5 or 1 per cell — below/at/above η = 0.8).
fn decode(row: &(u8, u8, u8, u8), schema: &Arc<Schema>) -> Tuple {
    let (k, a, b, bits) = *row;
    let cf = |sel: u8| [0.0, 0.5, 1.0][(sel % 3) as usize];
    let mut t = Tuple::of_strs(
        &[
            &format!("k{}", k % 3),
            &format!("a{}", a % 3),
            &format!("b{}", b % 4),
        ],
        0.0,
    );
    for (i, c) in [cf(bits), cf(bits / 3), cf(bits / 9)]
        .into_iter()
        .enumerate()
    {
        let attr = schema.attr_ids().nth(i).unwrap();
        let v = t.value(attr).clone();
        t.set(attr, v, c, FixMark::Untouched);
    }
    t
}

fn cleaner(rules: &RuleSet, master: &Relation, threads: usize, interning: bool) -> Cleaner {
    Cleaner::builder()
        .rules(rules.clone())
        .master(MasterSource::external(master.clone()))
        .config(CleanConfig {
            eta: 0.8,
            delta_entropy: 0.9,
            parallelism: Some(NonZeroUsize::new(threads).unwrap()),
            interning,
            ..CleanConfig::default()
        })
        .build()
        .unwrap()
}

/// Bitwise equality of the incremental state against a from-scratch run.
fn assert_matches(reference: &CleanResult, state: &RepairState, label: &str) {
    assert_eq!(
        reference.repaired.len(),
        state.repaired().len(),
        "{label}: tuple count"
    );
    for (i, (ra, rb)) in reference
        .repaired
        .rows()
        .zip(state.repaired().rows())
        .enumerate()
    {
        for (ca, cb) in ra.cells().zip(rb.cells()) {
            assert_eq!(ca.value, cb.value, "{label}: tuple {i} value diverged");
            assert_eq!(
                ca.cf.to_bits(),
                cb.cf.to_bits(),
                "{label}: tuple {i} confidence diverged"
            );
            assert_eq!(ca.mark, cb.mark, "{label}: tuple {i} mark diverged");
        }
    }
    assert_eq!(
        reference.consistent,
        state.consistent(),
        "{label}: acceptance diverged"
    );
    assert_eq!(
        reference.cost.to_bits(),
        state.cost().to_bits(),
        "{label}: cost diverged"
    );
}

fn concat(schema: &Arc<Schema>, parts: &[&[Tuple]]) -> Relation {
    Relation::new(
        schema.clone(),
        parts.iter().flat_map(|p| p.iter().cloned()).collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// full-clean(D ∪ batches) ≡ clean + repeated clean_delta, across
    /// parallelism {1, 4} × interning {on, off} × phase {CE, Full}.
    #[test]
    fn delta_equals_full_reclean(
        base in proptest::collection::vec((0u8..3, 0u8..3, 0u8..4, 0u8..27), 1..7),
        batch1 in proptest::collection::vec((0u8..3, 0u8..3, 0u8..4, 0u8..27), 0..4),
        batch2 in proptest::collection::vec((0u8..3, 0u8..3, 0u8..4, 0u8..27), 0..4),
    ) {
        let (schema, rules, master) = scenario_rules();
        let d0: Vec<Tuple> = base.iter().map(|r| decode(r, &schema)).collect();
        let b1: Vec<Tuple> = batch1.iter().map(|r| decode(r, &schema)).collect();
        let b2: Vec<Tuple> = batch2.iter().map(|r| decode(r, &schema)).collect();

        for phase in [Phase::CERepair, Phase::Full] {
            for threads in [1usize, 4] {
                for interning in [true, false] {
                    let label = format!("phase={phase:?} threads={threads} interning={interning}");
                    let uni = cleaner(&rules, &master, threads, interning);

                    let (mut state, first) =
                        uni.begin(&Relation::new(schema.clone(), d0.clone()), phase);
                    // begin() must agree with a plain clean() of the base.
                    let base_ref = uni.clean(&Relation::new(schema.clone(), d0.clone()), phase);
                    assert_matches(&base_ref, &state, &format!("{label} [begin]"));
                    prop_assert_eq!(first.repaired.len(), d0.len());

                    uni.clean_delta(&mut state, &b1).unwrap();
                    let ref1 = uni.clean(&concat(&schema, &[&d0, &b1]), phase);
                    assert_matches(&ref1, &state, &format!("{label} [delta 1]"));

                    uni.clean_delta(&mut state, &b2).unwrap();
                    let ref2 = uni.clean(&concat(&schema, &[&d0, &b1, &b2]), phase);
                    assert_matches(&ref2, &state, &format!("{label} [delta 2]"));
                }
            }
        }
    }
}

/// A batch whose tuples share nothing with the settled ones rides the
/// fast (continuation) path — no escalation.
#[test]
fn disjoint_batch_stays_on_the_fast_path() {
    let (schema, rules, master) = scenario_rules();
    let uni = cleaner(&rules, &master, 1, true);
    let base = Relation::new(
        schema.clone(),
        vec![
            decode(&(0, 0, 0, 26), &schema),
            decode(&(0, 0, 1, 0), &schema),
        ],
    );
    let (mut state, _) = uni.begin(&base, Phase::Full);
    // k2 never appears in the base or master: no shared groups, no MD hit.
    let batch = vec![decode(&(2, 1, 2, 13), &schema)];
    let r = uni.clean_delta(&mut state, &batch).unwrap();
    assert_eq!(state.escalations(), 0, "disjoint batch must not escalate");
    assert_eq!(r.repaired.len(), 3);
    let reference = uni.clean(&concat(&schema, &[&base.to_tuples(), &batch]), Phase::Full);
    assert_matches(&reference, &state, "disjoint batch");
}

/// A batch tuple that brings the asserted witness a settled tuple was
/// waiting for rewrites settled data. The continuation keeps the write
/// (it is a legal application order of the §5.2-order-independent
/// fixpoint), refreshes the pinned structures, and stays off the full
/// reclean path — while still matching the from-scratch result exactly.
#[test]
fn settled_write_is_kept_without_escalation() {
    let (schema, rules, master) = scenario_rules();
    let uni = cleaner(&rules, &master, 1, true);
    // Settled tuple: K=k2 asserted, A unasserted → waits on the FD group
    // for an asserted witness (k2 misses the master, so the MD is quiet).
    let a = schema.attr_id_or_panic("A");
    let k = schema.attr_id_or_panic("K");
    let mut waiter = Tuple::of_strs(&["k2", "a0", "b3"], 0.0);
    waiter.set(k, Value::str("k2"), 1.0, FixMark::Untouched);
    let base = Relation::new(schema.clone(), vec![waiter]);
    let (mut state, _) = uni.begin(&base, Phase::Full);
    assert_eq!(state.escalations(), 0);

    // Batch: same key, fully asserted A=a2 → becomes the group witness and
    // rewrites the settled tuple's A.
    let mut witness = Tuple::of_strs(&["k2", "a2", "b3"], 0.0);
    witness.set(k, Value::str("k2"), 1.0, FixMark::Untouched);
    witness.set(a, Value::str("a2"), 1.0, FixMark::Untouched);
    let batch = vec![witness];
    uni.clean_delta(&mut state, &batch).unwrap();
    assert_eq!(
        state.escalations(),
        0,
        "a settled write alone must not escalate"
    );
    assert_eq!(
        state.repaired().tuple(uniclean::model::TupleId(0)).value(a),
        &Value::str("a2"),
        "the deterministic fix reached the settled tuple"
    );
    let reference = uni.clean(&concat(&schema, &[&base.to_tuples(), &batch]), Phase::Full);
    assert_matches(&reference, &state, "settled-write batch");
}

/// Conflicting asserted witnesses in one conflict set — the one
/// order-dependent situation in `cRepair` — must escalate to a full
/// reclean, which resolves the race with the from-scratch order.
#[test]
fn conflicting_asserted_evidence_escalates() {
    let (schema, rules, master) = scenario_rules();
    let uni = cleaner(&rules, &master, 1, true);
    let a = schema.attr_id_or_panic("A");
    let k = schema.attr_id_or_panic("K");
    let asserted = |av: &str| {
        let mut t = Tuple::of_strs(&["k2", av, "b3"], 0.0);
        t.set(k, Value::str("k2"), 1.0, FixMark::Untouched);
        t.set(a, Value::str(av), 1.0, FixMark::Untouched);
        t
    };
    // Base: an asserted witness A=a0 for group k2.
    let base = Relation::new(schema.clone(), vec![asserted("a0")]);
    let (mut state, _) = uni.begin(&base, Phase::Full);
    // Batch: a *different* asserted witness A=a2 for the same group.
    let batch = vec![asserted("a2")];
    uni.clean_delta(&mut state, &batch).unwrap();
    assert_eq!(state.escalations(), 1, "conflicting evidence must escalate");
    let reference = uni.clean(&concat(&schema, &[&base.to_tuples(), &batch]), Phase::Full);
    assert_matches(&reference, &state, "hazard batch");
}

/// Self-snapshot sessions keep working through clean_delta (every call is
/// a documented escalation — nothing prepared can be pinned when the
/// master view is the evolving data itself).
#[test]
fn self_snapshot_deltas_escalate_but_stay_correct() {
    let tran = Schema::of_strings("tran", &["LN", "city", "AC", "phn"]);
    let selfm = Schema::of_strings("tranm", &["LN", "city", "AC", "phn"]);
    let text = "cfd phi2: tran([AC=020] -> [city=Ldn])\n\
                md psi: tran[LN] = tranm[LN] AND tran[city] = tranm[city] -> tran[phn] <=> tranm[phn]";
    let parsed = parse_rules(text, &tran, Some(&selfm)).unwrap();
    let rules = RuleSet::new(
        tran.clone(),
        Some(selfm),
        parsed.cfds,
        parsed.positive_mds,
        vec![],
    );
    let uni = Cleaner::builder()
        .rules(rules)
        .master(MasterSource::SelfSnapshot)
        .config(CleanConfig {
            eta: 0.8,
            ..CleanConfig::default()
        })
        .build()
        .unwrap();
    let phn = tran.attr_id_or_panic("phn");
    let city = tran.attr_id_or_panic("city");
    let mut a = Tuple::of_strs(&["Brady", "Edi", "020", "3887644"], 1.0);
    a.set(city, Value::str("Edi"), 0.0, FixMark::Untouched);
    let base = Relation::new(tran.clone(), vec![a]);
    let (mut state, _) = uni.begin(&base, Phase::Full);

    let mut b = Tuple::of_strs(&["Brady", "Ldn", "020", "0000000"], 1.0);
    b.set(phn, Value::str("0000000"), 0.0, FixMark::Untouched);
    let batch = vec![b];
    uni.clean_delta(&mut state, &batch).unwrap();
    assert_eq!(state.escalations(), 1, "self-snapshot always recleans");
    let reference = uni.clean(&concat(&tran, &[&base.to_tuples(), &batch]), Phase::Full);
    assert_matches(&reference, &state, "self-snapshot delta");
}

/// Misuse surfaces as typed errors, not panics.
#[test]
fn delta_misuse_is_typed() {
    let (schema, rules, master) = scenario_rules();
    let uni = cleaner(&rules, &master, 1, true);
    let other = cleaner(&rules, &master, 1, true);
    let base = Relation::new(schema.clone(), vec![decode(&(0, 0, 0, 26), &schema)]);
    let (mut state, _) = uni.begin(&base, Phase::Full);

    // State handed to a different cleaner.
    let err = other.clean_delta(&mut state, &[]).unwrap_err();
    assert_eq!(err, CleanError::ForeignState);

    // Batch tuple of the wrong arity.
    let err = uni
        .clean_delta(&mut state, &[Tuple::of_strs(&["k0", "a0"], 0.0)])
        .unwrap_err();
    assert!(matches!(
        err,
        CleanError::BatchArityMismatch {
            expected: 3,
            found: 2
        }
    ));

    // Batch cell with an out-of-range confidence: a typed model error in
    // release builds too (`Cell::new` only debug-asserts the range, so the
    // bad cell is assembled field-by-field here).
    let bad = Tuple::new(
        ["k0", "a0", "b0"]
            .iter()
            .map(|v| uniclean::model::Cell {
                value: Value::str(v),
                cf: 1.5,
                mark: FixMark::Untouched,
            })
            .collect(),
    );
    let err = uni.clean_delta(&mut state, &[bad]).unwrap_err();
    assert!(matches!(
        err,
        CleanError::Model(uniclean::model::ModelError::ConfidenceOutOfRange { .. })
    ));
    assert_eq!(state.len(), 1, "rejected batch must not grow the state");

    // An empty batch is a no-op that still reports a consistent result.
    let r = uni.clean_delta(&mut state, &[]).unwrap();
    assert_eq!(r.repaired.len(), 1);
    let reference = uni.clean(&base, Phase::Full);
    assert_matches(&reference, &state, "empty batch");
}

/// The per-call log accumulates and the state counts its delta calls.
#[test]
fn state_bookkeeping_tracks_calls() {
    let (schema, rules, master) = scenario_rules();
    let uni = cleaner(&rules, &master, 1, true);
    let base = Relation::new(schema.clone(), vec![decode(&(0, 1, 2, 26), &schema)]);
    let (mut state, first) = uni.begin(&base, Phase::CERepair);
    let logged_after_begin = state.log().len();
    assert_eq!(logged_after_begin, first.report.len());

    let batch = vec![decode(&(1, 0, 0, 26), &schema)];
    let r = uni.clean_delta(&mut state, &batch).unwrap();
    assert_eq!(state.deltas() + state.escalations(), 1);
    assert_eq!(state.log().len(), logged_after_begin + r.report.len());
    assert_eq!(state.phase(), Phase::CERepair);
    assert_eq!(state.len(), 2);
}

/// `begin_empty` + one `clean_delta` of the whole relation is
/// bit-identical to `begin` of that relation directly — the contract the
/// serving daemon's cold-start path (open, then stream everything in)
/// rests on.
#[test]
fn begin_empty_then_delta_equals_begin() {
    let (schema, rules, master) = scenario_rules();
    let rows: Vec<Tuple> = [
        (0, 0, 0, 26),
        (0, 1, 2, 13),
        (1, 2, 3, 0),
        (2, 0, 1, 7),
        (0, 0, 2, 22),
    ]
    .iter()
    .map(|r| decode(r, &schema))
    .collect();
    for phase in [Phase::CERepair, Phase::Full] {
        for threads in [1usize, 4] {
            let label = format!("phase={phase:?} threads={threads}");
            let uni = cleaner(&rules, &master, threads, true);

            let mut streamed = uni.begin_empty(phase);
            assert_eq!(streamed.len(), 0, "{label}: empty start");
            assert!(streamed.consistent(), "{label}: empty is consistent");
            uni.clean_delta(&mut streamed, &rows).unwrap();

            let (direct, reference) =
                uni.begin(&Relation::new(schema.clone(), rows.clone()), phase);
            assert_matches(&reference, &streamed, &format!("{label} [vs begin]"));
            assert_eq!(
                direct.cost().to_bits(),
                streamed.cost().to_bits(),
                "{label}: state cost"
            );

            // Batch-at-a-time streaming lands on the same fixpoint too.
            let mut chunked = uni.begin_empty(phase);
            for chunk in rows.chunks(2) {
                uni.clean_delta(&mut chunked, chunk).unwrap();
            }
            assert_matches(&reference, &chunked, &format!("{label} [chunked]"));
        }
    }
}
