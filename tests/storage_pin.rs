//! Storage-refactor equivalence pins.
//!
//! The columnar store migration promises **bit-identical** `clean()` and
//! `begin`/`clean_delta` outputs. These golden fingerprints were captured
//! from the row-major implementation immediately before the migration; the
//! columnar engine must reproduce them exactly, at every parallelism ×
//! interning setting. A fingerprint covers every cell (value, confidence
//! bits, fix mark), every fix record, the §3.1 cost bits, the acceptance
//! verdict and the per-phase fix counts — nothing observable is left out.

mod common;

use std::num::NonZeroUsize;

use uniclean::core::{CleanConfig, CleanResult, Cleaner, MasterSource, Phase};
use uniclean::datagen::{hosp_workload, GenParams};
use uniclean::model::{FixMark, Relation, Value};

/// FNV-1a over a canonical byte rendering of a value.
fn hash_value(h: &mut u64, v: &Value) {
    match v {
        Value::Null => hash_bytes(h, &[0]),
        Value::Str(s) => {
            hash_bytes(h, &[1]);
            hash_bytes(h, s.as_bytes());
        }
        Value::Int(i) => {
            hash_bytes(h, &[2]);
            hash_bytes(h, &i.to_le_bytes());
        }
    }
}

fn hash_bytes(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100000001b3);
    }
}

fn mark_byte(m: FixMark) -> u8 {
    match m {
        FixMark::Untouched => 0,
        FixMark::Deterministic => 1,
        FixMark::Reliable => 2,
        FixMark::Possible => 3,
    }
}

/// Fingerprint of the observable repair state: cells, cost, verdict.
fn fingerprint_relation(h: &mut u64, r: &Relation) {
    for (_, t) in r.iter() {
        for a in r.schema().attr_ids() {
            hash_value(h, t.value(a));
            hash_bytes(h, &t.cf(a).to_bits().to_le_bytes());
            hash_bytes(h, &[mark_byte(t.mark(a))]);
        }
    }
}

fn fingerprint(result: &CleanResult) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    fingerprint_relation(&mut h, &result.repaired);
    for rec in result.report.records() {
        hash_bytes(&mut h, &(rec.tuple.index() as u64).to_le_bytes());
        hash_bytes(&mut h, &(rec.attr.index() as u64).to_le_bytes());
        hash_value(&mut h, &rec.old);
        hash_value(&mut h, &rec.new);
        hash_bytes(&mut h, &[mark_byte(rec.mark)]);
        hash_bytes(&mut h, rec.rule.as_bytes());
    }
    hash_bytes(&mut h, &result.cost.to_bits().to_le_bytes());
    hash_bytes(&mut h, &[result.consistent as u8]);
    for p in &result.phases {
        hash_bytes(&mut h, &(p.fixes as u64).to_le_bytes());
    }
    h
}

fn cleaner(
    rules: &uniclean::rules::RuleSet,
    master: MasterSource,
    eta: f64,
    threads: usize,
    interning: bool,
) -> Cleaner {
    Cleaner::builder()
        .rules(rules.clone())
        .master(master)
        .config(CleanConfig {
            eta,
            parallelism: Some(NonZeroUsize::new(threads).unwrap()),
            interning,
            ..CleanConfig::default()
        })
        .build()
        .expect("valid session")
}

/// Golden fingerprints captured from the row-major engine (pre-refactor).
const EXAMPLE_1_1_FULL: u64 = 0x3770b36c980bd956;
const HOSP_1K_CE: u64 = 0x2d559265e550714c;
const HOSP_1K_DELTA: u64 = 0x10a0077225d3f17f;

#[test]
fn example_1_1_clean_matches_row_major_engine() {
    let (_, rules, dirty, master) = common::example_1_1();
    for threads in [1usize, 4] {
        for interning in [true, false] {
            let uni = cleaner(
                &rules,
                MasterSource::external(master.clone()),
                0.8,
                threads,
                interning,
            );
            let fp = fingerprint(&uni.clean(&dirty, Phase::Full));
            assert_eq!(
                fp, EXAMPLE_1_1_FULL,
                "example 1.1: threads={threads} interning={interning} fp={fp:#018x}"
            );
        }
    }
}

#[test]
fn hosp_1k_clean_matches_row_major_engine() {
    let w = hosp_workload(&GenParams {
        tuples: 1000,
        master_tuples: 300,
        ..GenParams::default()
    });
    for threads in [1usize, 4] {
        for interning in [true, false] {
            let uni = cleaner(
                &w.rules,
                MasterSource::external(w.master.clone()),
                1.0,
                threads,
                interning,
            );
            let fp = fingerprint(&uni.clean(&w.dirty, Phase::CERepair));
            assert_eq!(
                fp, HOSP_1K_CE,
                "hosp 1k: threads={threads} interning={interning} fp={fp:#018x}"
            );
        }
    }
}

#[test]
fn hosp_1k_begin_plus_delta_matches_row_major_engine() {
    let w = hosp_workload(&GenParams {
        tuples: 1000,
        master_tuples: 300,
        ..GenParams::default()
    });
    let rows = rows_of(&w.dirty);
    let prefix = Relation::new(w.dirty.schema().clone(), rows[..800].to_vec());
    for threads in [1usize, 4] {
        for interning in [true, false] {
            let uni = cleaner(
                &w.rules,
                MasterSource::external(w.master.clone()),
                1.0,
                threads,
                interning,
            );
            let (mut state, _) = uni.begin(&prefix, Phase::CERepair);
            let result = uni
                .clean_delta(&mut state, &rows[800..])
                .expect("delta accepted");
            let mut h: u64 = 0xcbf29ce484222325;
            fingerprint_relation(&mut h, state.repaired());
            hash_bytes(&mut h, &state.cost().to_bits().to_le_bytes());
            hash_bytes(&mut h, &[state.consistent() as u8]);
            hash_bytes(&mut h, &(result.report.len() as u64).to_le_bytes());
            assert_eq!(
                h, HOSP_1K_DELTA,
                "hosp 1k delta: threads={threads} interning={interning} fp={h:#018x}"
            );
        }
    }
}

/// Materialize a relation's rows as owned tuples (portable across the
/// row-major and columnar representations).
fn rows_of(r: &Relation) -> Vec<uniclean::model::Tuple> {
    r.to_tuples()
}
