//! The `Cleaner` session API contract: builder misuse surfaces as typed
//! errors (never panics), the three master sources share one pipeline, the
//! observer hook streams per-phase stats, and the deprecated entry points
//! reproduce the session's output exactly.

use std::sync::Arc;

use uniclean::model::{FixMark, Relation, Schema, Tuple, TupleId, Value};
use uniclean::rules::{parse_rules, RuleSet};

mod common;
use common::example_1_1;
use uniclean::{
    CleanConfig, CleanError, Cleaner, ConfigError, MasterSource, Phase, PhaseObserver, PhaseStats,
    PhaseTimings,
};

/// A tiny MD-only rule set over `tran`/`card`.
fn md_rules() -> RuleSet {
    let tran = Schema::of_strings("tran", &["LN", "phn"]);
    let card = Schema::of_strings("card", &["LN", "tel"]);
    let parsed = parse_rules(
        "md m: tran[LN] = card[LN] -> tran[phn] <=> card[tel]",
        &tran,
        Some(&card),
    )
    .unwrap();
    RuleSet::new(tran, Some(card), vec![], parsed.positive_mds, vec![])
}

// ---------------------------------------------------------------------
// Builder misuse matrix
// ---------------------------------------------------------------------

#[test]
fn builder_without_rules_is_a_typed_error() {
    let err = Cleaner::builder().build().unwrap_err();
    assert_eq!(err, CleanError::MissingRules);
}

#[test]
fn mds_without_master_are_a_typed_error() {
    let err = Cleaner::builder()
        .rules(md_rules())
        .master(MasterSource::None)
        .build()
        .unwrap_err();
    assert_eq!(err, CleanError::MdsWithoutMaster);
    assert!(err.to_string().contains("no master relation"));
}

#[test]
fn invalid_config_is_a_typed_error() {
    let tran = Schema::of_strings("tran", &["AC", "city"]);
    let parsed = parse_rules("cfd c: tran([AC=131] -> [city=Edi])", &tran, None).unwrap();
    let rules = RuleSet::cfds_only(tran, parsed.cfds);

    for (cfg, expected) in [
        (
            CleanConfig {
                eta: 2.0,
                ..CleanConfig::default()
            },
            CleanError::Config(ConfigError::OutOfRange {
                field: "eta",
                value: 2.0,
            }),
        ),
        (
            CleanConfig {
                delta_entropy: f64::NAN,
                ..CleanConfig::default()
            },
            CleanError::Config(ConfigError::NonFinite {
                field: "delta_entropy",
                value: f64::NAN,
            }),
        ),
        (
            CleanConfig {
                max_erepair_rounds: 0,
                ..CleanConfig::default()
            },
            CleanError::Config(ConfigError::ZeroLimit {
                field: "max_erepair_rounds",
            }),
        ),
        (
            CleanConfig {
                max_hrepair_rounds: 0,
                ..CleanConfig::default()
            },
            CleanError::Config(ConfigError::ZeroLimit {
                field: "max_hrepair_rounds",
            }),
        ),
    ] {
        let err = Cleaner::builder()
            .rules(rules.clone())
            .config(cfg)
            .build()
            .unwrap_err();
        // NaN != NaN, so compare the rendered form.
        assert_eq!(err.to_string(), expected.to_string());
    }
}

#[test]
fn external_master_with_wrong_schema_is_a_typed_error() {
    let rules = md_rules();
    let wrong = Schema::of_strings("ledger", &["LN", "tel", "extra"]);
    let master = Relation::new(wrong, vec![Tuple::of_strs(&["Brady", "123", "x"], 1.0)]);
    let err = Cleaner::builder()
        .rules(rules)
        .master(MasterSource::external(master))
        .build()
        .unwrap_err();
    assert_eq!(
        err,
        CleanError::MasterSchemaMismatch {
            expected: "card(LN, tel)".into(),
            found: "ledger(LN, tel, extra)".into()
        }
    );
}

#[test]
fn same_name_schema_mismatch_is_still_diagnosable() {
    // Both schemas are named `card`; the error must expose the attribute
    // difference, not just the (identical) names.
    let rules = md_rules();
    let impostor = Schema::of_strings("card", &["LN", "phone"]);
    let master = Relation::new(impostor, vec![Tuple::of_strs(&["Brady", "123"], 1.0)]);
    let err = Cleaner::builder()
        .rules(rules)
        .master(MasterSource::external(master))
        .build()
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("card(LN, tel)"), "{msg}");
    assert!(msg.contains("card(LN, phone)"), "{msg}");
}

#[test]
fn self_snapshot_without_master_schema_is_a_typed_error() {
    let tran = Schema::of_strings("tran", &["AC", "city"]);
    let parsed = parse_rules("cfd c: tran([AC=131] -> [city=Edi])", &tran, None).unwrap();
    let rules = RuleSet::cfds_only(tran, parsed.cfds);
    let err = Cleaner::builder()
        .rules(rules)
        .master(MasterSource::SelfSnapshot)
        .build()
        .unwrap_err();
    assert_eq!(err, CleanError::MissingSelfSchema);
}

#[test]
fn self_snapshot_with_mismatched_arity_is_a_typed_error() {
    // The MDs' master schema has 2 attributes; the data schema has 3 — a
    // positional snapshot cannot mirror it.
    let tran = Schema::of_strings("tran", &["LN", "phn", "extra"]);
    let selfm = Schema::of_strings("tranm", &["LN", "phn"]);
    let parsed = parse_rules(
        "md m: tran[LN] = tranm[LN] -> tran[phn] <=> tranm[phn]",
        &tran,
        Some(&selfm),
    )
    .unwrap();
    let rules = RuleSet::new(tran, Some(selfm), vec![], parsed.positive_mds, vec![]);
    let err = Cleaner::builder()
        .rules(rules)
        .master(MasterSource::SelfSnapshot)
        .build()
        .unwrap_err();
    assert_eq!(
        err,
        CleanError::SelfSchemaMismatch {
            data_arity: 3,
            master_arity: 2
        }
    );
}

// ---------------------------------------------------------------------
// Equivalence with the paper's results and the deprecated entry points
// ---------------------------------------------------------------------

#[test]
fn cleaner_reproduces_example_1_1_end_to_end() {
    let (tran, rules, dirty, master) = example_1_1();
    let cleaner = Cleaner::builder()
        .rules(rules)
        .master(MasterSource::external(master))
        .config(CleanConfig {
            eta: 0.8,
            delta_entropy: 0.8,
            ..CleanConfig::default()
        })
        .build()
        .unwrap();
    let result = cleaner.clean(&dirty, Phase::Full);
    assert!(result.consistent);

    let get = |t: u32, a: &str| {
        result
            .repaired
            .tuple(TupleId(t))
            .value(tran.attr_id_or_panic(a))
            .clone()
    };
    assert_eq!(get(2, "city"), Value::str("Ldn"), "ϕ2 repairs t3[city]");
    assert_eq!(get(2, "FN"), Value::str("Robert"), "ϕ4 normalizes t3[FN]");
    assert_eq!(get(2, "phn"), Value::str("3887644"), "ψ corrects t3[phn]");
    assert_eq!(get(3, "St"), Value::str("5 Wren St"), "ϕ3 enriches t4[St]");
    assert_eq!(get(3, "post"), Value::str("WC1H 9SE"), "ϕ3 fixes t4[post]");
    for a in ["FN", "LN", "St", "city", "AC", "post", "phn"] {
        assert_eq!(get(2, a), get(3, a), "t3/t4 must agree on {a}");
    }
}

#[test]
#[allow(deprecated)]
fn deprecated_uniclean_shim_is_bit_identical_to_the_session() {
    use uniclean::core::UniClean;
    let (_, rules, dirty, master) = example_1_1();
    let cfg = CleanConfig {
        eta: 0.8,
        ..CleanConfig::default()
    };

    let old = UniClean::new(&rules, Some(&master), cfg.clone()).clean(&dirty, Phase::Full);
    let new = Cleaner::builder()
        .rules(rules)
        .master(MasterSource::external(master))
        .config(cfg)
        .build()
        .unwrap()
        .clean(&dirty, Phase::Full);

    assert_eq!(old.repaired.diff_cells(&new.repaired), 0);
    assert_eq!(old.report.len(), new.report.len());
    assert_eq!(old.cost, new.cost);
    assert_eq!(old.consistent, new.consistent);
    assert_eq!(old.fix_counts(), new.fix_counts());
}

#[test]
#[allow(deprecated)]
fn deprecated_clean_without_master_is_bit_identical_to_self_snapshot() {
    use uniclean::core::clean_without_master;
    // Duplicates of one person inside D (the paper's master-free setting).
    let tran = Schema::of_strings("tran", &["LN", "city", "AC", "phn"]);
    let selfm = Schema::of_strings("tranm", &["LN", "city", "AC", "phn"]);
    let text = "cfd phi2: tran([AC=020] -> [city=Ldn])\n\
                md psi: tran[LN] = tranm[LN] AND tran[city] = tranm[city] -> tran[phn] <=> tranm[phn]";
    let parsed = parse_rules(text, &tran, Some(&selfm)).unwrap();
    let rules = RuleSet::new(
        tran.clone(),
        Some(selfm),
        parsed.cfds,
        parsed.positive_mds,
        vec![],
    );
    let phn = tran.attr_id_or_panic("phn");
    let city = tran.attr_id_or_panic("city");
    let mut a = Tuple::of_strs(&["Brady", "Edi", "020", "3887644"], 1.0);
    a.set(city, Value::str("Edi"), 0.0, FixMark::Untouched);
    let mut b = Tuple::of_strs(&["Brady", "Ldn", "020", "0000000"], 1.0);
    b.set(phn, Value::str("0000000"), 0.0, FixMark::Untouched);
    let dirty = Relation::new(tran, vec![a, b]);
    let cfg = CleanConfig {
        eta: 0.8,
        ..CleanConfig::default()
    };

    for phase in [Phase::CRepair, Phase::CERepair, Phase::Full] {
        let old = clean_without_master(&rules, &dirty, cfg.clone(), phase);
        let new = Cleaner::builder()
            .rules(rules.clone())
            .master(MasterSource::SelfSnapshot)
            .config(cfg.clone())
            .build()
            .unwrap()
            .clean(&dirty, phase);
        assert_eq!(old.repaired.diff_cells(&new.repaired), 0, "{phase:?}");
        assert_eq!(old.report.len(), new.report.len(), "{phase:?}");
        assert_eq!(old.consistent, new.consistent, "{phase:?}");
    }
}

// ---------------------------------------------------------------------
// Session reuse and the observer surface
// ---------------------------------------------------------------------

#[test]
fn a_session_is_reusable_and_shareable_across_threads() {
    let (_, rules, dirty, master) = example_1_1();
    let cleaner = Arc::new(
        Cleaner::builder()
            .rules(rules)
            .master(MasterSource::external(master))
            .config(CleanConfig {
                eta: 0.8,
                ..CleanConfig::default()
            })
            .build()
            .unwrap(),
    );
    let baseline = cleaner.clean(&dirty, Phase::Full);

    let handles: Vec<_> = (0..4)
        .map(|_| {
            let cleaner = Arc::clone(&cleaner);
            let dirty = dirty.clone();
            std::thread::spawn(move || cleaner.clean(&dirty, Phase::Full))
        })
        .collect();
    for h in handles {
        let r = h.join().expect("no panic in worker threads");
        assert_eq!(r.repaired.diff_cells(&baseline.repaired), 0);
        assert_eq!(r.report.len(), baseline.report.len());
    }
}

#[test]
fn observer_streams_the_same_stats_the_result_records() {
    let (_, rules, dirty, master) = example_1_1();
    let cleaner = Cleaner::builder()
        .rules(rules)
        .master(MasterSource::external(master))
        .config(CleanConfig {
            eta: 0.8,
            ..CleanConfig::default()
        })
        .build()
        .unwrap();

    let mut timings = PhaseTimings::default();
    let result = cleaner.clean_observed(&dirty, Phase::Full, &mut timings);

    assert_eq!(timings.stats, result.phases);
    assert_eq!(
        timings.stats.iter().map(|s| s.phase).collect::<Vec<_>>(),
        vec![Phase::CRepair, Phase::ERepair, Phase::HRepair]
    );
    assert_eq!(
        timings.stats.iter().map(|s| s.fixes).sum::<usize>(),
        result.report.len(),
        "per-phase fix counts partition the report"
    );
    // The [f64; 3] view maps phases to fixed slots.
    let secs = result.phase_seconds();
    assert_eq!(secs, timings.seconds());
    assert!(secs.iter().all(|s| *s >= 0.0));
}

#[test]
fn custom_observers_see_start_and_end_in_order() {
    #[derive(Default)]
    struct Log(Vec<String>);
    impl PhaseObserver for Log {
        fn on_phase_start(&mut self, phase: Phase) {
            self.0.push(format!("start {}", phase.label()));
        }
        fn on_phase_end(&mut self, stats: &PhaseStats) {
            self.0.push(format!("end {}", stats.phase.label()));
        }
    }

    let (_, rules, dirty, master) = example_1_1();
    let cleaner = Cleaner::builder()
        .rules(rules)
        .master(MasterSource::external(master))
        .config(CleanConfig {
            eta: 0.8,
            ..CleanConfig::default()
        })
        .build()
        .unwrap();
    let mut log = Log::default();
    cleaner.clean_observed(&dirty, Phase::CERepair, &mut log);
    assert_eq!(
        log.0,
        vec![
            "start cRepair",
            "end cRepair",
            "start eRepair",
            "end eRepair"
        ]
    );
}

#[test]
fn caller_set_self_match_survives_an_external_master() {
    // A caller may pass its own data snapshot as an External master and
    // rely on the self-exclusion guard; the builder must not clear it.
    let (_, rules, _, master) = example_1_1();
    let cleaner = Cleaner::builder()
        .rules(rules.clone())
        .master(MasterSource::external(master.clone()))
        .config(CleanConfig {
            self_match: true,
            ..CleanConfig::default()
        })
        .build()
        .unwrap();
    assert!(cleaner.config().self_match);
    // External with the flag unset keeps it unset.
    let cleaner = Cleaner::builder()
        .rules(rules.clone())
        .master(MasterSource::external(master))
        .config(CleanConfig {
            self_match: false,
            ..CleanConfig::default()
        })
        .build()
        .unwrap();
    assert!(!cleaner.config().self_match);
    // SelfSnapshot forces the guard on regardless of the caller's flag.
    let tran = Schema::of_strings("tran", &["LN", "phn"]);
    let selfm = Schema::of_strings("tranm", &["LN", "phn"]);
    let parsed = parse_rules(
        "md psi: tran[LN] = tranm[LN] -> tran[phn] <=> tranm[phn]",
        &tran,
        Some(&selfm),
    )
    .unwrap();
    let self_rules = RuleSet::new(tran, Some(selfm), vec![], parsed.positive_mds, vec![]);
    let cleaner = Cleaner::builder()
        .rules(self_rules)
        .master(MasterSource::SelfSnapshot)
        .config(CleanConfig {
            self_match: false,
            ..CleanConfig::default()
        })
        .build()
        .unwrap();
    assert!(
        cleaner.config().self_match,
        "SelfSnapshot must force the self-exclusion guard on"
    );
}

#[test]
fn debug_output_stays_compact_for_large_masters() {
    let (_, rules, _, master) = example_1_1();
    let cleaner = Cleaner::builder()
        .rules(rules)
        .master(MasterSource::external(master))
        .config(CleanConfig {
            eta: 0.8,
            ..CleanConfig::default()
        })
        .build()
        .unwrap();
    let dbg = format!("{cleaner:?}");
    assert!(dbg.contains("External(card, 2 tuples)"), "{dbg}");
    assert!(
        !dbg.contains("Robert"),
        "master tuples must not be dumped: {dbg}"
    );
}

#[test]
fn phases_vector_tracks_the_requested_prefix() {
    let (_, rules, dirty, master) = example_1_1();
    let cleaner = Cleaner::builder()
        .rules(rules)
        .master(MasterSource::external(master))
        .config(CleanConfig {
            eta: 0.8,
            ..CleanConfig::default()
        })
        .build()
        .unwrap();
    assert_eq!(cleaner.clean(&dirty, Phase::CRepair).phases.len(), 1);
    assert_eq!(cleaner.clean(&dirty, Phase::CERepair).phases.len(), 2);
    assert_eq!(cleaner.clean(&dirty, Phase::Full).phases.len(), 3);
}
