//! Columnar-store equivalence proptests.
//!
//! The columnar [`Relation`] must behave exactly like the row-major
//! `Vec<Tuple>` representation it replaced. The property: build a
//! relation from arbitrary row literals, drive an arbitrary mutation
//! script through the [`TupleMut`] views *and* through a plain
//! `Vec<Tuple>` shadow, then extract (`to_tuples`, per-cell views,
//! columns) and assert full equivalence — values, symbols' resolutions,
//! confidences (by bits) and fix marks.

use proptest::prelude::*;
use uniclean::model::{AttrId, Cell, FixMark, Relation, Schema, Tuple, TupleId, Value};

/// Decode a generated cell: discriminant picks null/int/str payload.
fn value_of(kind: u8, n: i64, s: &str) -> Value {
    match kind % 3 {
        0 => Value::Null,
        1 => Value::int(n),
        _ => Value::str(s),
    }
}

fn mark_of(m: u8) -> FixMark {
    match m % 4 {
        0 => FixMark::Untouched,
        1 => FixMark::Deterministic,
        2 => FixMark::Reliable,
        _ => FixMark::Possible,
    }
}

type GenCell = (u8, i64, String, u8);

fn cell_of(c: &GenCell) -> Cell {
    let mut cell = Cell::new(value_of(c.0, c.1, &c.2), (c.3 % 11) as f64 / 10.0);
    cell.mark = mark_of(c.3);
    cell
}

const ARITY: usize = 3;

proptest! {
    /// build → view → mutate → extract: the columnar store and a
    /// row-major shadow stay cell-for-cell identical.
    #[test]
    fn store_round_trips_against_row_shadow(
        rows in proptest::collection::vec(
            proptest::collection::vec((0u8..3, -9i64..9, "[a-c]{0,4}", 0u8..12), ARITY..ARITY + 1),
            1..12,
        ),
        edits in proptest::collection::vec(
            (0usize..12, 0usize..ARITY, (0u8..3, -9i64..9, "[a-d]{0,4}", 0u8..12)),
            0..24,
        ),
    ) {
        let schema = Schema::of_strings("r", &["A", "B", "C"]);
        let tuples: Vec<Tuple> = rows
            .iter()
            .map(|r| Tuple::new(r.iter().map(cell_of).collect()))
            .collect();

        // Columnar store under test; Vec<Tuple> as the row-major oracle.
        let mut rel = Relation::new(schema.clone(), tuples.clone());
        let mut shadow = tuples;

        // Mutation script through the TupleMut views and the shadow alike.
        for (t, a, c) in &edits {
            let t = t % shadow.len();
            let attr = AttrId::from(*a);
            let cell = cell_of(c);
            rel.tuple_mut(TupleId::from(t))
                .set(attr, cell.value.clone(), cell.cf, cell.mark);
            shadow[t].set(attr, cell.value, cell.cf, cell.mark);
        }

        // Extraction 1: per-cell views.
        prop_assert_eq!(rel.len(), shadow.len());
        for (i, want) in shadow.iter().enumerate() {
            let got = rel.tuple(TupleId::from(i));
            prop_assert_eq!(got.arity(), want.arity());
            for a in 0..ARITY {
                let attr = AttrId::from(a);
                prop_assert_eq!(got.value(attr), want.value(attr), "cell ({i},{a}) value");
                prop_assert_eq!(
                    got.cf(attr).to_bits(),
                    want.cf(attr).to_bits(),
                    "cell ({i},{a}) confidence"
                );
                prop_assert_eq!(got.mark(attr), want.mark(attr), "cell ({i},{a}) mark");
                // The symbol column resolves to the same value, and null
                // detection by symbol agrees with the value.
                prop_assert_eq!(
                    rel.interner().resolve(got.sym(attr)),
                    want.value(attr)
                );
                prop_assert_eq!(got.is_null(attr), want.value(attr).is_null());
            }
        }

        // Extraction 2: materialized tuples equal the shadow exactly.
        let extracted = rel.to_tuples();
        prop_assert_eq!(&extracted, &shadow);

        // Extraction 3: a relation rebuilt from the extraction is
        // cell-identical (fresh interner, same content).
        let rebuilt = Relation::new(schema, extracted);
        prop_assert_eq!(rel.diff_cells(&rebuilt), 0);

        // Symbol invariant: within one store, two cells share a symbol
        // iff their values are equal.
        for a in 0..ARITY {
            let attr = AttrId::from(a);
            let col = rel.col_syms(attr);
            for i in 0..rel.len() {
                for j in 0..rel.len() {
                    prop_assert_eq!(
                        col[i] == col[j],
                        shadow[i].value(attr) == shadow[j].value(attr),
                        "symbol/value equality mismatch at column {} rows {}/{}",
                        a, i, j
                    );
                }
            }
        }
    }

    /// Projections and agreement checks on views match the row oracle.
    #[test]
    fn view_operations_match_row_operations(
        rows in proptest::collection::vec(
            proptest::collection::vec((0u8..3, -4i64..4, "[ab]{0,2}", 0u8..12), ARITY..ARITY + 1),
            2..8,
        ),
    ) {
        let schema = Schema::of_strings("r", &["A", "B", "C"]);
        let tuples: Vec<Tuple> = rows
            .iter()
            .map(|r| Tuple::new(r.iter().map(cell_of).collect()))
            .collect();
        let rel = Relation::new(schema, tuples.clone());
        let attrs = [AttrId(0), AttrId(2)];
        for i in 0..tuples.len() {
            let view = rel.tuple(TupleId::from(i));
            prop_assert_eq!(view.project(&attrs), tuples[i].project(&attrs));
            for j in 0..tuples.len() {
                let other = rel.tuple(TupleId::from(j));
                prop_assert_eq!(
                    view.agrees_with(other, &attrs),
                    tuples[i].agrees_with(&tuples[j], &attrs)
                );
                prop_assert_eq!(
                    view.agrees_with_nullable(other, &attrs),
                    tuples[i].agrees_with_nullable(&tuples[j], &attrs)
                );
            }
        }
        // Active domains agree with a row-major recomputation.
        for a in 0..ARITY {
            let attr = AttrId::from(a);
            let mut want: Vec<Value> = tuples
                .iter()
                .map(|t| t.value(attr).clone())
                .filter(|v| !v.is_null())
                .collect();
            want.sort();
            want.dedup();
            prop_assert_eq!(rel.active_domain(attr), want);
        }
    }
}
