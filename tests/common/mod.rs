//! Shared integration-test fixtures.

#![allow(dead_code)] // each tests/*.rs crate uses a subset of these helpers

use std::sync::Arc;

use uniclean::model::{AttrId, FixMark, Relation, Schema, Tuple, Value};
use uniclean::rules::{parse_rules, RuleSet};

/// The paper's running example (Example 1.1 / Fig. 1): schemas `tran` /
/// `card`, rules ϕ1–ϕ4, ψ and the negative MD ψ1, the four dirty
/// transactions with their per-cell confidence rows, and the two master
/// tuples. Returns `(tran_schema, rules, dirty, master)`.
pub fn example_1_1() -> (Arc<Schema>, RuleSet, Relation, Relation) {
    let tran = Schema::of_strings(
        "tran",
        &["FN", "LN", "St", "city", "AC", "post", "phn", "gd"],
    );
    let card = Schema::of_strings(
        "card",
        &["FN", "LN", "St", "city", "AC", "zip", "tel", "gd"],
    );
    let text = "\
        cfd phi1: tran([AC=131] -> [city=Edi])\n\
        cfd phi2: tran([AC=020] -> [city=Ldn])\n\
        cfd phi3: tran([city, phn] -> [St, AC, post])\n\
        cfd phi4: tran([FN=Bob] -> [FN=Robert])\n\
        md  psi:  tran[LN] = card[LN] AND tran[city] = card[city] AND tran[St] = card[St] AND tran[post] = card[zip] AND tran[FN] ~lev(4) card[FN] -> tran[FN] <=> card[FN], tran[phn] <=> card[tel]\n\
        neg psi1: tran[gd] != card[gd] -> tran[FN] <!> card[FN]";
    let parsed = parse_rules(text, &tran, Some(&card)).expect("rules parse");
    let rules = RuleSet::new(
        tran.clone(),
        Some(card.clone()),
        parsed.cfds,
        parsed.positive_mds,
        parsed.negative_mds,
    );

    // Fig. 1(a): master data.
    let master = Relation::new(
        card,
        vec![
            Tuple::of_strs(
                &[
                    "Mark",
                    "Smith",
                    "10 Oak St",
                    "Edi",
                    "131",
                    "EH8 9LE",
                    "3256778",
                    "Male",
                ],
                1.0,
            ),
            Tuple::of_strs(
                &[
                    "Robert",
                    "Brady",
                    "5 Wren St",
                    "Ldn",
                    "020",
                    "WC1H 9SE",
                    "3887644",
                    "Male",
                ],
                1.0,
            ),
        ],
    );

    // Fig. 1(b): the transaction log with its per-cell confidence rows.
    let mk = |vals: &[&str], cfs: &[f64]| {
        let mut t = Tuple::of_strs(vals, 0.0);
        for (i, &c) in cfs.iter().enumerate() {
            let a = AttrId::from(i);
            let v = t.value(a).clone();
            t.set(a, v, c, FixMark::Untouched);
        }
        t
    };
    let t1 = mk(
        &[
            "M.",
            "Smith",
            "10 Oak St",
            "Ldn",
            "131",
            "EH8 9LE",
            "9999999",
            "Male",
        ],
        &[0.9, 1.0, 0.9, 0.5, 0.9, 0.9, 0.0, 0.8],
    );
    let t2 = mk(
        &[
            "Max",
            "Smith",
            "Po Box 25",
            "Edi",
            "131",
            "EH8 9AB",
            "3256778",
            "Male",
        ],
        &[0.7, 1.0, 0.5, 0.9, 0.7, 0.6, 0.8, 0.8],
    );
    let t3 = mk(
        &[
            "Bob",
            "Brady",
            "5 Wren St",
            "Edi",
            "020",
            "WC1H 9SE",
            "3887834",
            "Male",
        ],
        &[0.6, 1.0, 0.9, 0.2, 0.9, 0.8, 0.9, 0.8],
    );
    let mut t4 = mk(
        &[
            "Robert", "Brady", "", "Ldn", "020", "WC1E 7HX", "3887644", "Male",
        ],
        &[0.7, 1.0, 0.0, 0.5, 0.7, 0.3, 0.7, 0.8],
    );
    t4.set(
        tran.attr_id_or_panic("St"),
        Value::Null,
        0.0,
        FixMark::Untouched,
    );
    let dirty = Relation::new(tran.clone(), vec![t1, t2, t3, t4]);
    (tran, rules, dirty, master)
}
