//! Cross-crate property tests: invariants that span crate boundaries.

use proptest::prelude::*;
use uniclean::datagen::{hosp_workload, GenParams};
use uniclean::model::{value_distance, FixMark, Value};
use uniclean::similarity::levenshtein;
use uniclean::{CleanConfig, Cleaner, MasterSource, Phase};

proptest! {
    /// The model crate's reference distance (used by the cost model) agrees
    /// with the similarity crate's optimized Levenshtein.
    #[test]
    fn cost_distance_matches_similarity_levenshtein(a in "[a-f]{0,12}", b in "[a-f]{0,12}") {
        let model_d = value_distance(&Value::str(&a), &Value::str(&b));
        let sim_d = levenshtein(&a, &b) as f64;
        prop_assert_eq!(model_d, sim_d);
    }

    /// Workload generation is a pure function of its parameters.
    #[test]
    fn workload_generation_is_pure(seed in 0u64..500) {
        let p = GenParams { tuples: 60, master_tuples: 25, seed, ..GenParams::default() };
        let a = hosp_workload(&p);
        let b = hosp_workload(&p);
        prop_assert_eq!(a.dirty.diff_cells(&b.dirty), 0);
        prop_assert_eq!(a.errors, b.errors);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// End-to-end invariants on random small workloads: the pipeline
    /// reaches a consistent repair, never touches a deterministic fix in a
    /// later phase, and deterministic fixes agree with the ground truth.
    #[test]
    fn pipeline_invariants_hold_for_random_workloads(
        seed in 0u64..1000,
        noise in 1u32..12,
        dup in 1u32..10,
    ) {
        let p = GenParams {
            tuples: 120,
            master_tuples: 40,
            noise_rate: noise as f64 / 100.0,
            dup_rate: dup as f64 / 10.0,
            seed,
            ..GenParams::default()
        };
        let w = hosp_workload(&p);
        let uni = Cleaner::builder()
            .rules(w.rules.clone())
            .master(MasterSource::external(w.master.clone()))
            .config(CleanConfig::default())
            .build()
            .expect("workload session");
        let r = uni.clean(&w.dirty, Phase::Full);
        prop_assert!(r.consistent, "pipeline must reach a consistent repair");

        // Deterministic fixes: correct and final.
        for fix in r.report.records() {
            if fix.mark == FixMark::Deterministic {
                prop_assert_eq!(&fix.new, w.truth.tuple(fix.tuple).value(fix.attr));
                prop_assert_eq!(
                    r.repaired.tuple(fix.tuple).value(fix.attr), &fix.new,
                    "later phases must not overwrite a deterministic fix"
                );
            }
        }

        // Fix records replay: applying old→new in order over dirty yields
        // the repaired relation.
        let mut replay = w.dirty.clone();
        for fix in r.report.records() {
            prop_assert_eq!(replay.tuple(fix.tuple).value(fix.attr), &fix.old, "record chain broken");
            replay
                .tuple_mut(fix.tuple)
                .set(fix.attr, fix.new.clone(), 0.0, fix.mark);
        }
        prop_assert_eq!(replay.diff_cells(&r.repaired), 0);
    }
}
