//! Fault-injection matrix over every durability kill window, against the
//! real spawned `uniclean serve` binary (compile with
//! `--features failpoints`; CI runs this as its own job).
//!
//! Each case arms one failpoint via `UNICLEAN_FAILPOINTS`, drives the
//! daemon to the window, lets it abort there, restarts on the same data
//! directory, and pins the recovered state **bit-identically** to the
//! serial reference of exactly the batch set the ack protocol promises:
//!
//! * kill before the WAL frame (or mid-frame, or before the apply): the
//!   in-flight batch was never durable → recovery yields the acked
//!   prefix only;
//! * kill after the frame is fully written (pre/post fsync, post ack):
//!   the batch is on disk → recovery yields acked + in-flight;
//! * kill anywhere inside snapshot compaction: the WAL still carries
//!   every logged batch → nothing is lost, in any of the three windows.
//!
//! The `error` action exercises the non-fatal paths: a transient
//! snapshot-write failure is retried with backoff and the ingest still
//! acks; a WAL append failure poisons the tenant (never acks) while the
//! rest of the daemon — and the tenant itself after a restart — keeps
//! serving. The `panic` action exercises blast-radius isolation: a
//! panicking apply poisons one tenant, the daemon and its other tenants
//! answer on.

#![cfg(feature = "failpoints")]

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::num::NonZeroUsize;
use std::path::{Path, PathBuf};

use uniclean::model::json::{relation_to_json, Json};
use uniclean::model::{Relation, Schema, Tuple};
use uniclean::rules::{parse_rules, RuleSet};
use uniclean::server::{tenant_dir_name, Daemon, DaemonConfig};
use uniclean::{CleanConfig, Cleaner, MasterSource, Phase};

const RULES: &str = "cfd fd: data([K] -> [A])\n\
                     cfd cc: data([A=a1] -> [B=b1])\n\
                     md m: data[K] = m[K] -> data[B] <=> m[B]";

const BATCHES: [&[[&str; 3]]; 4] = [
    &[["k0", "a1", "b9"], ["k1", "a2", "b2"]],
    &[["k2", "a3", "b3"], ["k0", "a1", "b8"]],
    &[["k1", "a2", "b2"], ["k4", "a1", "b7"]],
    &[["k5", "a1", "b5"], ["k0", "a9", "b6"]],
];

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to daemon");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client {
            writer: stream,
            reader,
        }
    }

    fn send_only(&mut self, req: &Json) {
        self.writer
            .write_all(format!("{req}\n").as_bytes())
            .expect("write request");
        self.writer.flush().expect("flush request");
    }

    fn read_response(&mut self) -> Json {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        Json::parse(&line).expect("response parses")
    }

    /// Read one line, tolerating the peer dying instead (kill windows).
    fn try_read_response(&mut self) -> Option<Json> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) | Err(_) => None,
            Ok(_) => Json::parse(&line).ok(),
        }
    }

    fn rpc(&mut self, req: &Json) -> Json {
        self.send_only(req);
        self.read_response()
    }
}

fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn open_request(relation: &str) -> Json {
    obj(vec![
        ("op", Json::str("open")),
        ("relation", Json::str(relation)),
        ("table", Json::str("data")),
        (
            "attrs",
            Json::Arr(vec![Json::str("K"), Json::str("A"), Json::str("B")]),
        ),
        ("rules", Json::str(RULES)),
        (
            "master",
            obj(vec![
                ("table", Json::str("m")),
                ("attrs", Json::Arr(vec![Json::str("K"), Json::str("B")])),
                (
                    "rows",
                    Json::Arr(vec![
                        Json::Arr(vec![Json::str("k0"), Json::str("b1")]),
                        Json::Arr(vec![Json::str("k1"), Json::str("b2")]),
                    ]),
                ),
            ]),
        ),
        ("phase", Json::str("full")),
        ("default_cf", Json::Num(0.5)),
        ("eta", Json::Num(0.8)),
        ("threads", Json::Num(1.0)),
    ])
}

fn ingest_request(relation: &str, rows: &[[&str; 3]]) -> Json {
    obj(vec![
        ("op", Json::str("ingest")),
        ("relation", Json::str(relation)),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| Json::Arr(r.iter().map(|v| Json::str(*v)).collect()))
                    .collect(),
            ),
        ),
    ])
}

fn assert_ok(resp: &Json) -> &Json {
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
    resp
}

fn assert_code(resp: &Json, code: &str) {
    assert_eq!(
        resp.get("ok").and_then(Json::as_bool),
        Some(false),
        "{resp}"
    );
    assert_eq!(
        resp.get("code").and_then(Json::as_str),
        Some(code),
        "{resp}"
    );
}

/// Serial reference dump (`rows` JSON render + cost) for an arbitrary
/// subset of [`BATCHES`], applied in the given order.
fn reference_for(batch_indices: &[usize]) -> (String, f64) {
    let data = Schema::of_strings("data", &["K", "A", "B"]);
    let m = Schema::of_strings("m", &["K", "B"]);
    let parsed = parse_rules(RULES, &data, Some(&m)).unwrap();
    let rules = RuleSet::new(
        data,
        Some(m.clone()),
        parsed.cfds,
        parsed.positive_mds,
        parsed.negative_mds,
    );
    let master = Relation::new(
        m,
        vec![
            Tuple::of_strs(&["k0", "b1"], 1.0),
            Tuple::of_strs(&["k1", "b2"], 1.0),
        ],
    );
    let cleaner = Cleaner::builder()
        .rules(rules)
        .master(MasterSource::external(master))
        .config(CleanConfig {
            eta: 0.8,
            parallelism: Some(NonZeroUsize::new(1).unwrap()),
            ..CleanConfig::default()
        })
        .build()
        .unwrap();
    let mut state = cleaner.begin_empty(Phase::Full);
    for &i in batch_indices {
        let tuples: Vec<Tuple> = BATCHES[i].iter().map(|r| Tuple::of_strs(r, 0.5)).collect();
        cleaner.clean_delta(&mut state, &tuples).unwrap();
    }
    (relation_to_json(state.repaired()).render(), state.cost())
}

fn scratch_dir(label: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("uniclean-faulttest-{}-{label}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Spawn the real binary with one armed failpoint; returns the child, a
/// connected client, and the child's stdout reader (hold it until after
/// `wait` — dropping the pipe would EPIPE the daemon's shutdown banner).
fn spawn_armed(
    data_dir: &Path,
    snapshot_every: u64,
    failpoints: &str,
) -> (
    std::process::Child,
    Client,
    BufReader<std::process::ChildStdout>,
) {
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_uniclean"))
        .args(["serve", "--addr", "127.0.0.1:0", "--shards", "2"])
        .arg("--data-dir")
        .arg(data_dir)
        .args(["--snapshot-every", &snapshot_every.to_string()])
        .env("UNICLEAN_FAILPOINTS", failpoints)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn uniclean serve");
    let stdout = child.stdout.take().unwrap();
    let mut lines = BufReader::new(stdout);
    let mut banner = String::new();
    lines.read_line(&mut banner).unwrap();
    let addr: std::net::SocketAddr = banner
        .split("listening on ")
        .nth(1)
        .and_then(|r| r.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in banner {banner:?}"))
        .parse()
        .unwrap();
    let client = Client::connect(addr);
    (child, client, lines)
}

/// Boot an in-process daemon on the directory (nothing armed: the env
/// var is only set on spawned children) and run `body`.
fn with_recovered_daemon<T>(data_dir: &Path, body: impl FnOnce(&mut Client) -> T) -> T {
    let daemon = Daemon::bind(DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        shards: 2,
        queue_bound: 16,
        data_dir: Some(data_dir.to_path_buf()),
        snapshot_every: 64,
        fsync: true,
        ..DaemonConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = daemon.local_addr();
    let handle = std::thread::spawn(move || daemon.run());
    let mut c = Client::connect(addr);
    let out = body(&mut c);
    assert_ok(&c.rpc(&obj(vec![("op", Json::str("shutdown"))])));
    drop(c);
    handle.join().unwrap().unwrap();
    out
}

fn dump_rows_cost(c: &mut Client, relation: &str) -> (String, f64) {
    let d = c.rpc(&obj(vec![
        ("op", Json::str("dump")),
        ("relation", Json::str(relation)),
    ]));
    assert_ok(&d);
    (
        d.get("rows").unwrap().render(),
        d.get("cost").and_then(Json::as_f64).unwrap(),
    )
}

/// One kill-window case: ack `acked` batches, fire the next batch into
/// the armed window, let the daemon abort, restart, and require the
/// recovered state to be exactly the reference of `expect` batches.
struct KillCase {
    /// `UNICLEAN_FAILPOINTS` spec arming the window.
    arm: &'static str,
    snapshot_every: u64,
    /// Batches acknowledged before the fatal one.
    acked: usize,
    /// Batch indices recovery must reproduce, bit-identically.
    expect: usize,
    /// The kill leaves a half-written frame recovery must truncate.
    expect_torn: bool,
}

/// The whole matrix. Hit counts: with `--snapshot-every 0` the WAL
/// points are hit once for the open record, then once per batch, so `@3`
/// fires on the second batch; the ingest points are hit once per batch;
/// the snapshot points fire during the first compaction.
const KILL_MATRIX: [KillCase; 9] = [
    // Before any WAL byte: the in-flight batch vanishes.
    KillCase {
        arm: "wal.pre_frame=kill@3",
        snapshot_every: 0,
        acked: 1,
        expect: 1,
        expect_torn: false,
    },
    // Mid-frame: a torn tail recovery must truncate away.
    KillCase {
        arm: "wal.mid_frame=kill@3",
        snapshot_every: 0,
        acked: 1,
        expect: 1,
        expect_torn: true,
    },
    // Frame fully written, fsync pending: a process kill (unlike an OS
    // crash) leaves the written bytes readable, so the unacked batch
    // legitimately survives.
    KillCase {
        arm: "wal.pre_fsync=kill@3",
        snapshot_every: 0,
        acked: 1,
        expect: 2,
        expect_torn: false,
    },
    KillCase {
        arm: "wal.post_fsync=kill@3",
        snapshot_every: 0,
        acked: 1,
        expect: 2,
        expect_torn: false,
    },
    // Before the apply: neither memory nor disk saw the batch.
    KillCase {
        arm: "ingest.apply=kill@2",
        snapshot_every: 0,
        acked: 1,
        expect: 1,
        expect_torn: false,
    },
    // After the ack: the batch must survive — the client was promised.
    KillCase {
        arm: "ingest.post_ack=kill@2",
        snapshot_every: 0,
        acked: 1,
        expect: 2,
        expect_torn: false,
    },
    // Inside compaction (snapshot-every-1 → first batch compacts): the
    // WAL still carries the logged batch whatever the window.
    KillCase {
        arm: "snapshot.mid_write=kill@1",
        snapshot_every: 1,
        acked: 0,
        expect: 1,
        expect_torn: false,
    },
    KillCase {
        arm: "snapshot.pre_rename=kill@1",
        snapshot_every: 1,
        acked: 0,
        expect: 1,
        expect_torn: false,
    },
    // Snapshot durable, WAL rewrite never happened: replay must skip the
    // batches the snapshot already holds (seq bookkeeping).
    KillCase {
        arm: "snapshot.pre_wal_rewrite=kill@1",
        snapshot_every: 1,
        acked: 0,
        expect: 1,
        expect_torn: false,
    },
];

#[test]
fn kill_matrix_recovers_bit_identically() {
    for case in &KILL_MATRIX {
        let label = case.arm;
        let dir = scratch_dir(&label.replace(['.', '=', '@'], "-"));
        let (mut child, mut c, _stdout) = spawn_armed(&dir, case.snapshot_every, case.arm);
        assert_ok(&c.rpc(&open_request("tran")));
        for batch in BATCHES.iter().take(case.acked) {
            assert_ok(&c.rpc(&ingest_request("tran", batch)));
        }
        // The fatal batch: the daemon aborts in the armed window, so no
        // ack is expected (post-fsync/post-ack windows may still answer).
        c.send_only(&ingest_request("tran", BATCHES[case.acked]));
        let _ = c.try_read_response();
        let status = child.wait().expect("reap the daemon");
        assert!(!status.success(), "{label}: daemon should have aborted");
        drop(c);

        let (expect_rows, expect_cost) = reference_for(&(0..case.expect).collect::<Vec<_>>());
        with_recovered_daemon(&dir, |c| {
            let ping = c.rpc(&obj(vec![("op", Json::str("ping"))]));
            assert_ok(&ping);
            let recovery = ping.get("recovery").expect("recovery report");
            assert_eq!(
                recovery.get("relations").and_then(Json::as_usize),
                Some(1),
                "{label}: {recovery}"
            );
            if case.expect_torn {
                assert_eq!(
                    recovery.get("torn_tails").and_then(Json::as_usize),
                    Some(1),
                    "{label}: expected a truncated torn tail; {recovery}"
                );
            }
            let (rows, cost) = dump_rows_cost(c, "tran");
            assert_eq!(
                rows, expect_rows,
                "{label}: recovered rows diverged from the {} -batch reference",
                case.expect
            );
            assert_eq!(cost, expect_cost, "{label}: recovered cost diverged");
            // The recovered tenant keeps serving and stays on-reference.
            assert_ok(&c.rpc(&ingest_request("tran", BATCHES[case.expect])));
            let (rows, _) = dump_rows_cost(c, "tran");
            let (expect_rows, _) = reference_for(&(0..=case.expect).collect::<Vec<_>>());
            assert_eq!(rows, expect_rows, "{label}: post-recovery ingest diverged");
        });
    }
}

/// A transient snapshot-write failure is retried with backoff: the
/// ingest still acks, and the snapshot lands on the retry.
#[test]
fn transient_snapshot_error_is_retried() {
    let dir = scratch_dir("snap-retry");
    let (mut child, mut c, _stdout) = spawn_armed(&dir, 1, "snapshot.mid_write=error@1");
    assert_ok(&c.rpc(&open_request("tran")));
    // The first compaction attempt fails (injected), the retry succeeds;
    // either way the batch was already WAL-durable and must ack.
    assert_ok(&c.rpc(&ingest_request("tran", BATCHES[0])));
    assert!(
        dir.join(tenant_dir_name("tran"))
            .join("snapshot.json")
            .exists(),
        "snapshot landed on the retry"
    );
    assert_ok(&c.rpc(&obj(vec![("op", Json::str("shutdown"))])));
    drop(c);
    assert!(child.wait().unwrap().success());
}

/// A WAL append failure never acks: the tenant poisons (structured
/// `wal_error`, then `poisoned`), other tenants keep serving, and a
/// restart revives the poisoned tenant at its acked prefix.
#[test]
fn wal_error_poisons_tenant_without_acking() {
    let dir = scratch_dir("wal-error");
    // Hits: open(tran)=1, open(other)=2, batch0=3, batch1=4 → the second
    // tran batch fails to append.
    let (mut child, mut c, _stdout) = spawn_armed(&dir, 0, "wal.pre_frame=error@4");
    assert_ok(&c.rpc(&open_request("tran")));
    assert_ok(&c.rpc(&open_request("other")));
    assert_ok(&c.rpc(&ingest_request("tran", BATCHES[0])));
    let r = c.rpc(&ingest_request("tran", BATCHES[1]));
    assert_code(&r, "wal_error");
    // Sticky: every subsequent verb on the tenant answers `poisoned`.
    assert_code(&c.rpc(&ingest_request("tran", BATCHES[2])), "poisoned");
    assert_code(
        &c.rpc(&obj(vec![
            ("op", Json::str("dump")),
            ("relation", Json::str("tran")),
        ])),
        "poisoned",
    );
    // Blast radius is one tenant: the other keeps ingesting, and the
    // daemon itself answers ping.
    assert_ok(&c.rpc(&ingest_request("other", BATCHES[0])));
    assert_ok(&c.rpc(&obj(vec![("op", Json::str("ping"))])));
    assert_ok(&c.rpc(&obj(vec![("op", Json::str("shutdown"))])));
    drop(c);
    assert!(child.wait().unwrap().success());

    // Restart: the poisoned tenant comes back at its acked prefix and
    // serves again.
    let (expect_rows, _) = reference_for(&[0]);
    with_recovered_daemon(&dir, |c| {
        let (rows, _) = dump_rows_cost(c, "tran");
        assert_eq!(
            rows, expect_rows,
            "poisoned tenant recovered to acked prefix"
        );
        assert_ok(&c.rpc(&ingest_request("tran", BATCHES[1])));
    });
}

/// A panicking apply poisons one tenant; the daemon and its other
/// tenants answer on, and the poisoned tenant can be closed.
#[test]
fn panicking_tenant_does_not_take_down_the_daemon() {
    let dir = scratch_dir("panic-isolation");
    let (mut child, mut c, _stdout) = spawn_armed(&dir, 0, "ingest.apply=panic@1");
    assert_ok(&c.rpc(&open_request("tran")));
    assert_ok(&c.rpc(&open_request("other")));
    // The armed panic fires inside the first apply: structured answer,
    // tenant poisoned, daemon alive.
    assert_code(&c.rpc(&ingest_request("tran", BATCHES[0])), "poisoned");
    assert_code(&c.rpc(&ingest_request("tran", BATCHES[1])), "poisoned");
    // Nothing was acknowledged, so nothing may be durable.
    assert_ok(&c.rpc(&ingest_request("other", BATCHES[0])));
    let ping = c.rpc(&obj(vec![("op", Json::str("ping"))]));
    assert_ok(&ping);
    assert_eq!(ping.get("relations").and_then(Json::as_usize), Some(2));
    // The poisoned tenant still closes (cleanup path), and the name can
    // be reopened fresh.
    assert_ok(&c.rpc(&obj(vec![
        ("op", Json::str("close")),
        ("relation", Json::str("tran")),
    ])));
    assert_ok(&c.rpc(&open_request("tran")));
    assert_ok(&c.rpc(&ingest_request("tran", BATCHES[0])));
    assert_ok(&c.rpc(&obj(vec![("op", Json::str("shutdown"))])));
    drop(c);
    assert!(child.wait().unwrap().success());
}
