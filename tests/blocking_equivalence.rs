//! Integration test: the §5.2 blocked master access is *equivalent* to the
//! naive O(|D|·|Dm|) scan — blocking accelerates, never changes results.

use uniclean::core::{MasterIndex, ProbeScratch};
use uniclean::datagen::{dblp_workload, hosp_workload, GenParams};
use uniclean::model::TupleId;

#[test]
fn blocked_md_matches_equal_naive_scan() {
    for w in [
        hosp_workload(&GenParams {
            tuples: 300,
            master_tuples: 120,
            ..GenParams::default()
        }),
        dblp_workload(&GenParams {
            tuples: 300,
            master_tuples: 120,
            ..GenParams::default()
        }),
    ] {
        // l = |Dm| makes top-l retrieval exhaustive, isolating the bound's
        // correctness from the top-l approximation.
        let idx = MasterIndex::build(w.rules.mds(), &w.master, w.master.len().max(1));
        let mut scratch = ProbeScratch::new();
        let mut blocked = Vec::new();
        for (i, md) in w.rules.mds().iter().enumerate() {
            for (tid, t) in w.dirty.iter() {
                idx.matches_into(i, md, t, &w.master, None, &mut scratch, &mut blocked);
                let naive: Vec<TupleId> = w
                    .master
                    .iter()
                    .filter(|(_, s)| md.premise_matches(t, s))
                    .map(|(sid, _)| sid)
                    .collect();
                assert_eq!(
                    blocked,
                    naive,
                    "{}: md {} tuple {tid} — blocked and naive disagree",
                    w.name,
                    md.name()
                );
            }
        }
    }
}

#[test]
fn default_l_loses_no_matches_on_generated_data() {
    // With the paper's l = 20 the index is an approximation; on the
    // generated workloads (few similar master values per query) it is
    // still exhaustive.
    let w = hosp_workload(&GenParams {
        tuples: 300,
        master_tuples: 150,
        ..GenParams::default()
    });
    let exhaustive = MasterIndex::build(w.rules.mds(), &w.master, w.master.len());
    let default_l = MasterIndex::build(w.rules.mds(), &w.master, 20);
    let (mut sa, mut sb) = (ProbeScratch::new(), ProbeScratch::new());
    let (mut a, mut b) = (Vec::new(), Vec::new());
    for (i, md) in w.rules.mds().iter().enumerate() {
        for (_, t) in w.dirty.iter() {
            exhaustive.matches_into(i, md, t, &w.master, None, &mut sa, &mut a);
            default_l.matches_into(i, md, t, &w.master, None, &mut sb, &mut b);
            assert_eq!(a, b, "md {}", md.name());
        }
    }
}

#[test]
fn every_generated_md_is_indexed() {
    // The acceptance bar of the access-path planner: no Scan plan for any
    // MD whose premises use the paper's predicate families.
    for w in [
        hosp_workload(&GenParams {
            tuples: 50,
            master_tuples: 30,
            ..GenParams::default()
        }),
        dblp_workload(&GenParams {
            tuples: 50,
            master_tuples: 30,
            ..GenParams::default()
        }),
    ] {
        let idx = MasterIndex::build(w.rules.mds(), &w.master, 20);
        for (i, md) in w.rules.mds().iter().enumerate() {
            assert!(
                idx.is_indexed(i),
                "{}: md {} fell back to scan ({})",
                w.name,
                md.name(),
                idx.scan_reason(i).unwrap_or("?")
            );
        }
    }
}
