//! Integration test: the §5.2 blocked master access is *equivalent* to the
//! naive O(|D|·|Dm|) scan — blocking accelerates, never changes results.

use uniclean::core::MasterIndex;
use uniclean::datagen::{dblp_workload, hosp_workload, GenParams};
use uniclean::model::TupleId;

#[test]
fn blocked_md_matches_equal_naive_scan() {
    for w in [
        hosp_workload(&GenParams {
            tuples: 300,
            master_tuples: 120,
            ..GenParams::default()
        }),
        dblp_workload(&GenParams {
            tuples: 300,
            master_tuples: 120,
            ..GenParams::default()
        }),
    ] {
        // l = |Dm| makes top-l retrieval exhaustive, isolating the bound's
        // correctness from the top-l approximation.
        let idx = MasterIndex::build(w.rules.mds(), &w.master, w.master.len().max(1));
        for (i, md) in w.rules.mds().iter().enumerate() {
            for (tid, t) in w.dirty.iter() {
                let mut blocked = idx.matches(i, md, t, &w.master);
                blocked.sort_unstable();
                let mut naive: Vec<TupleId> = w
                    .master
                    .iter()
                    .filter(|(_, s)| md.premise_matches(t, s))
                    .map(|(sid, _)| sid)
                    .collect();
                naive.sort_unstable();
                assert_eq!(
                    blocked,
                    naive,
                    "{}: md {} tuple {tid} — blocked and naive disagree",
                    w.name,
                    md.name()
                );
            }
        }
    }
}

#[test]
fn default_l_loses_no_matches_on_generated_data() {
    // With the paper's l = 20 the index is an approximation; on the
    // generated workloads (few similar master values per query) it is
    // still exhaustive.
    let w = hosp_workload(&GenParams {
        tuples: 300,
        master_tuples: 150,
        ..GenParams::default()
    });
    let exhaustive = MasterIndex::build(w.rules.mds(), &w.master, w.master.len());
    let default_l = MasterIndex::build(w.rules.mds(), &w.master, 20);
    for (i, md) in w.rules.mds().iter().enumerate() {
        for (_, t) in w.dirty.iter() {
            let mut a = exhaustive.matches(i, md, t, &w.master);
            let mut b = default_l.matches(i, md, t, &w.master);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "md {}", md.name());
        }
    }
}
