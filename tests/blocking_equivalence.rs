//! Integration test: the §5.2 indexed master access is *equivalent* to the
//! naive O(|D|·|Dm|) scan — the count filters accelerate, never change
//! results. There is no truncation knob left to hold exhaustive: every
//! access path (exact hash, lev-count, q-gram count, Jaro 1-gram) is
//! complete by construction.

use uniclean::core::{MasterIndex, ProbeScratch};
use uniclean::datagen::{dblp_workload, hosp_workload, GenParams};
use uniclean::model::TupleId;

#[test]
fn blocked_md_matches_equal_naive_scan() {
    for w in [
        hosp_workload(&GenParams {
            tuples: 300,
            master_tuples: 120,
            ..GenParams::default()
        }),
        dblp_workload(&GenParams {
            tuples: 300,
            master_tuples: 120,
            ..GenParams::default()
        }),
    ] {
        let idx = MasterIndex::build(w.rules.mds(), &w.master);
        let mut scratch = ProbeScratch::new();
        let mut blocked = Vec::new();
        for (i, md) in w.rules.mds().iter().enumerate() {
            for (tid, t) in w.dirty.iter() {
                idx.matches_into(i, md, t, &w.master, None, &mut scratch, &mut blocked);
                let naive: Vec<TupleId> = w
                    .master
                    .iter()
                    .filter(|(_, s)| md.premise_matches(t, s))
                    .map(|(sid, _)| sid)
                    .collect();
                assert_eq!(
                    blocked,
                    naive,
                    "{}: md {} tuple {tid} — blocked and naive disagree",
                    w.name,
                    md.name()
                );
            }
        }
    }
}

#[test]
fn parallel_build_equals_sequential_on_generated_data() {
    // The batched multi-threaded artifact build must produce an index that
    // answers every probe identically to the single-threaded build — same
    // verified matches, same order.
    let w = hosp_workload(&GenParams {
        tuples: 300,
        master_tuples: 150,
        ..GenParams::default()
    });
    let sequential = MasterIndex::build(w.rules.mds(), &w.master);
    let parallel = MasterIndex::build_parallel(w.rules.mds(), &w.master, true, 4);
    let (mut sa, mut sb) = (ProbeScratch::new(), ProbeScratch::new());
    let (mut a, mut b) = (Vec::new(), Vec::new());
    for (i, md) in w.rules.mds().iter().enumerate() {
        for (_, t) in w.dirty.iter() {
            sequential.matches_into(i, md, t, &w.master, None, &mut sa, &mut a);
            parallel.matches_into(i, md, t, &w.master, None, &mut sb, &mut b);
            assert_eq!(a, b, "md {}", md.name());
        }
    }
}

#[test]
fn every_generated_md_is_indexed() {
    // The acceptance bar of the access-path planner: no Scan plan for any
    // MD whose premises use the paper's predicate families.
    for w in [
        hosp_workload(&GenParams {
            tuples: 50,
            master_tuples: 30,
            ..GenParams::default()
        }),
        dblp_workload(&GenParams {
            tuples: 50,
            master_tuples: 30,
            ..GenParams::default()
        }),
    ] {
        let idx = MasterIndex::build(w.rules.mds(), &w.master);
        for (i, md) in w.rules.mds().iter().enumerate() {
            assert!(
                idx.is_indexed(i),
                "{}: md {} fell back to scan ({})",
                w.name,
                md.name(),
                idx.scan_reason(i).unwrap_or("?")
            );
        }
    }
}
