//! Integration test: the §4 static analyses applied to the generated rule
//! sets — the rules shipped by every generator must be consistent, the
//! dependency order must cover all rules, and implication must recognize
//! normalized fragments as redundant.

use uniclean::datagen::{dblp_workload, hosp_workload, GenParams};
use uniclean::model::Schema;
use uniclean::reasoning::{
    determinism_check, erepair_order, implies_cfd, is_consistent, termination_diagnostics,
};
use uniclean::rules::{parse_rules, RuleSet};

fn small() -> GenParams {
    GenParams {
        tuples: 60,
        master_tuples: 30,
        ..GenParams::default()
    }
}

#[test]
fn generated_rule_sets_are_consistent() {
    // CFD-only consistency: the master-driven MD part is checked separately
    // (full consistency with 100+ master tuples is exponential in theory;
    // the CFD core is the part that can be inconsistent).
    for w in [hosp_workload(&small()), dblp_workload(&small())] {
        let cfd_only = w.rules.without_mds();
        assert!(
            is_consistent(&cfd_only, None),
            "{}: CFDs must be consistent",
            w.name
        );
    }
}

#[test]
fn erepair_order_covers_every_rule_once() {
    for w in [hosp_workload(&small()), dblp_workload(&small())] {
        let order = erepair_order(&w.rules);
        assert_eq!(order.len(), w.rules.len(), "{}", w.name);
        let distinct: std::collections::HashSet<_> = order.iter().collect();
        assert_eq!(distinct.len(), order.len(), "{}", w.name);
    }
}

#[test]
fn hosp_rules_have_no_constant_oscillators() {
    let w = hosp_workload(&small());
    let report = termination_diagnostics(&w.rules);
    assert!(
        report.constant_conflicts.is_empty(),
        "generator must not ship Example 4.6-style oscillators: {:?}",
        report.constant_conflicts
    );
}

#[test]
fn a_normalized_fragment_is_implied_by_its_source() {
    // ZIP → City is in the HOSP set; [ZIP=z] → [City] specializations are
    // implied; an unrelated FD is not.
    let tran = Schema::of_strings("hosp", &["ZIP", "City", "State", "Phone"]);
    let text = "cfd a: hosp([ZIP] -> [City])\ncfd b: hosp([ZIP] -> [State])";
    let parsed = parse_rules(text, &tran, None).unwrap();
    let rules = RuleSet::cfds_only(tran.clone(), parsed.cfds);
    let implied = parse_rules("cfd s: hosp([ZIP=99501] -> [City])", &tran, None)
        .unwrap()
        .cfds
        .remove(0);
    assert!(implies_cfd(&rules, None, &implied));
    let not_implied = parse_rules("cfd n: hosp([ZIP] -> [Phone])", &tran, None)
        .unwrap()
        .cfds
        .remove(0);
    assert!(!implies_cfd(&rules, None, &not_implied));
}

#[test]
fn chase_determinism_probe_on_clean_slice() {
    // Clean data is a fixpoint for every order: trivially deterministic.
    let w = hosp_workload(&GenParams {
        noise_rate: 0.0,
        tuples: 20,
        master_tuples: 10,
        ..GenParams::default()
    });
    let report = determinism_check(&w.rules, Some(&w.master), &w.truth, 200, 2);
    assert_eq!(report.deterministic, Some(true), "{report:?}");
}
