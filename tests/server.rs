//! End-to-end suite for the serving daemon: an in-process `Daemon` on an
//! ephemeral port, driven by real TCP clients speaking the line-delimited
//! JSON protocol.
//!
//! Covers the scripted session lifecycle (open → ingest → check → stats
//! → close), structured error responses for malformed and misshapen
//! requests, `busy` backpressure under a tiny queue bound, graceful
//! shutdown draining queued work, and the determinism pin: concurrent
//! clients streaming disjoint batches into one relation must land on a
//! state bit-identical (values, confidences, marks, acceptance) to a
//! serial in-process clean of the same batches in server application
//! order — across shard counts {1, 4} × engine parallelism {1, 4}.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::num::NonZeroUsize;
use std::time::Duration;

use uniclean::model::json::{relation_to_json, Json};
use uniclean::model::{Relation, Schema, Tuple};
use uniclean::rules::{parse_rules, RuleSet};
use uniclean::server::{Daemon, DaemonConfig};
use uniclean::{CleanConfig, Cleaner, MasterSource, Phase};

/// The shared scenario: a variable FD, a constant CFD and an MD against
/// two master tuples — every phase exercised.
const RULES: &str = "cfd fd: data([K] -> [A])\n\
                     cfd cc: data([A=a1] -> [B=b1])\n\
                     md m: data[K] = m[K] -> data[B] <=> m[B]";

/// One line-oriented protocol client.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to daemon");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client {
            writer: stream,
            reader,
        }
    }

    /// Send one raw line, read one response line.
    fn raw(&mut self, line: &str) -> Json {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("write request");
        self.writer.flush().expect("flush request");
        self.read_response()
    }

    /// Send a request without waiting for its response (pipelining —
    /// used by the backpressure and shutdown tests).
    fn send_only(&mut self, req: &Json) {
        self.writer
            .write_all(format!("{req}\n").as_bytes())
            .expect("write request");
        self.writer.flush().expect("flush request");
    }

    fn read_response(&mut self) -> Json {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        Json::parse(&line).expect("response parses")
    }

    fn rpc(&mut self, req: &Json) -> Json {
        self.raw(&req.render())
    }
}

fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn open_request(relation: &str, threads: usize) -> Json {
    obj(vec![
        ("op", Json::str("open")),
        ("relation", Json::str(relation)),
        ("table", Json::str("data")),
        (
            "attrs",
            Json::Arr(vec![Json::str("K"), Json::str("A"), Json::str("B")]),
        ),
        ("rules", Json::str(RULES)),
        (
            "master",
            obj(vec![
                ("table", Json::str("m")),
                ("attrs", Json::Arr(vec![Json::str("K"), Json::str("B")])),
                (
                    "rows",
                    Json::Arr(vec![
                        Json::Arr(vec![Json::str("k0"), Json::str("b1")]),
                        Json::Arr(vec![Json::str("k1"), Json::str("b2")]),
                    ]),
                ),
            ]),
        ),
        ("phase", Json::str("full")),
        ("default_cf", Json::Num(0.5)),
        ("eta", Json::Num(0.8)),
        ("threads", Json::Num(threads as f64)),
    ])
}

fn ingest_request(relation: &str, rows: &[[&str; 3]]) -> Json {
    obj(vec![
        ("op", Json::str("ingest")),
        ("relation", Json::str(relation)),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| Json::Arr(r.iter().map(|v| Json::str(*v)).collect()))
                    .collect(),
            ),
        ),
    ])
}

/// The in-process twin of [`open_request`]'s session, for references.
fn reference_cleaner(threads: usize) -> Cleaner {
    let data = Schema::of_strings("data", &["K", "A", "B"]);
    let m = Schema::of_strings("m", &["K", "B"]);
    let parsed = parse_rules(RULES, &data, Some(&m)).unwrap();
    let rules = RuleSet::new(
        data,
        Some(m.clone()),
        parsed.cfds,
        parsed.positive_mds,
        parsed.negative_mds,
    );
    let master = Relation::new(
        m,
        vec![
            Tuple::of_strs(&["k0", "b1"], 1.0),
            Tuple::of_strs(&["k1", "b2"], 1.0),
        ],
    );
    Cleaner::builder()
        .rules(rules)
        .master(MasterSource::external(master))
        .config(CleanConfig {
            eta: 0.8,
            parallelism: Some(NonZeroUsize::new(threads).unwrap()),
            ..CleanConfig::default()
        })
        .build()
        .unwrap()
}

fn tuples(rows: &[[&str; 3]]) -> Vec<Tuple> {
    rows.iter().map(|r| Tuple::of_strs(r, 0.5)).collect()
}

/// Run a daemon on an ephemeral port; returns its address and the thread
/// handle whose join observes the run loop's exit.
fn start_daemon(
    shards: usize,
    queue_bound: usize,
) -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    start_daemon_with(DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        shards,
        queue_bound,
        ..DaemonConfig::default()
    })
}

fn start_daemon_with(
    config: DaemonConfig,
) -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let daemon = Daemon::bind(config).expect("bind ephemeral port");
    let addr = daemon.local_addr();
    let handle = std::thread::spawn(move || daemon.run());
    (addr, handle)
}

fn assert_code(resp: &Json, code: &str) {
    assert_eq!(
        resp.get("ok").and_then(Json::as_bool),
        Some(false),
        "{resp}"
    );
    assert_eq!(
        resp.get("code").and_then(Json::as_str),
        Some(code),
        "{resp}"
    );
}

fn assert_ok(resp: &Json) -> &Json {
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
    resp
}

// ---------------------------------------------------------------------------

/// The full verb lifecycle on one relation, plus online `check` answers
/// agreeing with the engine's acceptance.
#[test]
fn scripted_session_lifecycle() {
    let (addr, handle) = start_daemon(2, 16);
    let mut c = Client::connect(addr);

    let open = c.rpc(&open_request("tran", 1));
    assert_ok(&open);
    assert_eq!(open.get("relation").and_then(Json::as_str), Some("tran"));
    assert_eq!(open.get("phase").and_then(Json::as_str), Some("full"));

    // Freshly opened: empty and consistent.
    let check = c.rpc(&obj(vec![
        ("op", Json::str("check")),
        ("relation", Json::str("tran")),
    ]));
    assert_ok(&check);
    assert_eq!(check.get("tuples").and_then(Json::as_usize), Some(0));
    assert_eq!(check.get("consistent").and_then(Json::as_bool), Some(true));

    // Three batches; k0 forces the MD fix B := b1 from the master.
    let rows: [[[&str; 3]; 2]; 3] = [
        [["k0", "a1", "b9"], ["k1", "a2", "b2"]],
        [["k2", "a3", "b3"], ["k0", "a1", "b8"]],
        [["k1", "a2", "b2"], ["k4", "a1", "b7"]],
    ];
    let mut total = 0;
    for batch in &rows {
        let r = c.rpc(&ingest_request("tran", batch));
        assert_ok(&r);
        assert_eq!(r.get("ingested").and_then(Json::as_usize), Some(2));
        assert_eq!(r.get("offset").and_then(Json::as_usize), Some(total));
        total += 2;
        assert_eq!(r.get("total").and_then(Json::as_usize), Some(total));
        assert_eq!(r.get("consistent").and_then(Json::as_bool), Some(true));
    }

    // Per-tuple check: every tuple accepted after full-phase cleaning,
    // agreeing with a serial in-process reference.
    let reference = reference_cleaner(1);
    let mut state = reference.begin_empty(Phase::Full);
    for batch in &rows {
        reference.clean_delta(&mut state, &tuples(batch)).unwrap();
    }
    for tid in 0..total {
        let r = c.rpc(&obj(vec![
            ("op", Json::str("check")),
            ("relation", Json::str("tran")),
            ("tuple", Json::Num(tid as f64)),
        ]));
        assert_ok(&r);
        assert_eq!(
            r.get("accepted").and_then(Json::as_bool),
            Some(state.is_accepted(uniclean::model::TupleId(tid as u32))),
            "tuple {tid} verdict diverged"
        );
    }

    // Out-of-range tuple: structured error carrying the valid bound.
    let r = c.rpc(&obj(vec![
        ("op", Json::str("check")),
        ("relation", Json::str("tran")),
        ("tuple", Json::Num(99.0)),
    ]));
    assert_code(&r, "bad_tuple");
    assert_eq!(r.get("tuples").and_then(Json::as_usize), Some(total));

    // Stats: shard counters plus the relation's serving history.
    let stats = c.rpc(&obj(vec![("op", Json::str("stats"))]));
    assert_ok(&stats);
    let relations = stats.get("relations").and_then(Json::as_arr).unwrap();
    assert_eq!(relations.len(), 1);
    let rel = &relations[0];
    assert_eq!(rel.get("relation").and_then(Json::as_str), Some("tran"));
    assert_eq!(rel.get("batches").and_then(Json::as_usize), Some(3));
    assert_eq!(rel.get("tuples_ingested").and_then(Json::as_usize), Some(6));
    assert_eq!(rel.get("consistent").and_then(Json::as_bool), Some(true));
    let shards = stats.get("shards").and_then(Json::as_arr).unwrap();
    assert_eq!(shards.len(), 2);
    let applied: usize = shards
        .iter()
        .map(|s| s.get("batches_applied").and_then(Json::as_usize).unwrap())
        .sum();
    assert_eq!(applied, 3, "three ingests routed through the shard pool");

    // Dump matches the reference bit-for-bit (values, cf, marks).
    let dump = c.rpc(&obj(vec![
        ("op", Json::str("dump")),
        ("relation", Json::str("tran")),
    ]));
    assert_ok(&dump);
    assert_eq!(
        dump.get("rows"),
        Some(&relation_to_json(state.repaired())),
        "dump diverged from the serial reference"
    );

    // Close, then the relation is gone.
    let close = c.rpc(&obj(vec![
        ("op", Json::str("close")),
        ("relation", Json::str("tran")),
    ]));
    assert_ok(&close);
    assert_eq!(close.get("tuples").and_then(Json::as_usize), Some(6));
    // A closed name answers `already_closed` (idempotent close) — it is
    // distinguishable from a name that never existed...
    let r = c.rpc(&ingest_request("tran", &[["k0", "a1", "b1"]]));
    assert_code(&r, "already_closed");
    assert_code(
        &c.rpc(&obj(vec![
            ("op", Json::str("close")),
            ("relation", Json::str("tran")),
        ])),
        "already_closed",
    );
    assert_code(
        &c.rpc(&obj(vec![
            ("op", Json::str("close")),
            ("relation", Json::str("never-opened")),
        ])),
        "unknown_relation",
    );
    // ...and reopening the name lifts the tombstone.
    assert_ok(&c.rpc(&open_request("tran", 1)));
    assert_ok(&c.rpc(&ingest_request("tran", &[["k0", "a1", "b1"]])));

    assert_ok(&c.rpc(&obj(vec![("op", Json::str("shutdown"))])));
    drop(c);
    handle.join().unwrap().unwrap();
}

/// Malformed lines and misshapen requests answer with structured codes
/// on a live connection (which stays usable afterwards).
#[test]
fn structured_errors_over_the_wire() {
    let (addr, handle) = start_daemon(1, 16);
    let mut c = Client::connect(addr);

    assert_code(&c.raw("this is not json"), "malformed");
    assert_code(&c.raw("[1,2,3]"), "bad_request");
    assert_code(&c.raw(r#"{"op":"frobnicate"}"#), "unknown_op");
    assert_code(
        &c.raw(r#"{"op":"ingest","relation":"nope","rows":[]}"#),
        "unknown_relation",
    );
    assert_code(
        &c.raw(r#"{"op":"open","relation":"r","attrs":["K"],"rules":"cfd broken("}"#),
        "rule_parse",
    );

    assert_ok(&c.rpc(&open_request("tran", 1)));
    // Arity mismatch inside a row: rejected at decode, state untouched.
    assert_code(
        &c.raw(r#"{"op":"ingest","relation":"tran","rows":[["k0","a1"]]}"#),
        "bad_batch",
    );
    // Confidence outside [0,1]: rejected by the cell validator.
    assert_code(
        &c.raw(r#"{"op":"ingest","relation":"tran","rows":[[["k0",1.5],"a1","b1"]]}"#),
        "bad_batch",
    );
    let check = c.rpc(&obj(vec![
        ("op", Json::str("check")),
        ("relation", Json::str("tran")),
    ]));
    assert_eq!(check.get("tuples").and_then(Json::as_usize), Some(0));
    // Double open of the same name.
    assert_code(&c.rpc(&open_request("tran", 1)), "relation_exists");

    assert_ok(&c.rpc(&obj(vec![("op", Json::str("shutdown"))])));
    drop(c);
    handle.join().unwrap().unwrap();
}

/// With a queue bound of 1 and the single worker held busy by a large
/// batch, a second queued mutation fills the queue and a third answers
/// `busy` immediately, carrying the observed depth.
#[test]
fn backpressure_answers_busy() {
    let (addr, handle) = start_daemon(1, 1);
    let mut opener = Client::connect(addr);
    assert_ok(&opener.rpc(&open_request("tran", 1)));

    // A batch big enough to keep the worker busy while we probe (the
    // engine clears ~3k tuples in tens of milliseconds, so hold it with
    // more). Unique keys keep the FD quiet; the constant CFD still scans
    // every tuple.
    let big: Vec<[String; 3]> = (0..25_000)
        .map(|i| [format!("u{i}"), format!("a{i}"), format!("b{i}")])
        .collect();
    let big_rows = Json::Arr(
        big.iter()
            .map(|r| Json::Arr(r.iter().map(Json::str).collect()))
            .collect(),
    );
    let big_req = obj(vec![
        ("op", Json::str("ingest")),
        ("relation", Json::str("tran")),
        ("rows", big_rows),
    ]);

    let mut saw_busy = false;
    for _ in 0..5 {
        let mut holder = Client::connect(addr);
        let mut filler = Client::connect(addr);
        let mut prober = Client::connect(addr);
        // holder's batch occupies the worker...
        holder.send_only(&big_req);
        std::thread::sleep(Duration::from_millis(60));
        // ...filler's small batch occupies the queue's single slot...
        filler.send_only(&ingest_request("tran", &[["k0", "a1", "b1"]]));
        std::thread::sleep(Duration::from_millis(10));
        // ...so the third ingest must be told `busy` (answered
        // immediately). Scheduling decides *which* client that is — under
        // load the holder's large request can parse last and itself take
        // the rejection — so accept the busy from any of the three.
        let responses = [
            prober.read_after(&ingest_request("tran", &[["k1", "a2", "b2"]])),
            holder.read_response(),
            filler.read_response(),
        ];
        for resp in &responses {
            if resp.get("code").and_then(Json::as_str) == Some("busy") {
                assert_eq!(resp.get("queue_bound").and_then(Json::as_usize), Some(1));
                assert!(
                    resp.get("queue_depth").and_then(Json::as_usize).is_some(),
                    "{resp}"
                );
                saw_busy = true;
            } else {
                // Accepted requests complete; the worker may have outrun
                // us entirely (tiny machine hiccup) — then retry the
                // pattern.
                assert_ok(resp);
            }
        }
        if saw_busy {
            break;
        }
    }
    assert!(saw_busy, "never observed busy under a held worker");

    // The busy rejection is visible in shard stats.
    let stats = opener.rpc(&obj(vec![("op", Json::str("stats"))]));
    let shard0 = &stats.get("shards").and_then(Json::as_arr).unwrap()[0];
    assert!(
        shard0
            .get("busy_rejections")
            .and_then(Json::as_usize)
            .unwrap()
            >= 1
    );

    assert_ok(&opener.rpc(&obj(vec![("op", Json::str("shutdown"))])));
    drop(opener);
    handle.join().unwrap().unwrap();
}

impl Client {
    /// Send, then read the one response (helper for interleaved clients).
    fn read_after(&mut self, req: &Json) -> Json {
        self.send_only(req);
        self.read_response()
    }
}

/// Shutdown is graceful: work already queued is applied and answered
/// before the daemon exits, and post-shutdown mutations are refused.
#[test]
fn shutdown_drains_queued_work() {
    let (addr, handle) = start_daemon(1, 8);
    let mut c = Client::connect(addr);
    assert_ok(&c.rpc(&open_request("tran", 1)));

    // Hold the worker, queue a small batch behind it.
    let big: Vec<[String; 3]> = (0..50_000)
        .map(|i| [format!("u{i}"), format!("a{i}"), format!("b{i}")])
        .collect();
    let mut holder = Client::connect(addr);
    holder.send_only(&obj(vec![
        ("op", Json::str("ingest")),
        ("relation", Json::str("tran")),
        (
            "rows",
            Json::Arr(
                big.iter()
                    .map(|r| Json::Arr(r.iter().map(Json::str).collect()))
                    .collect(),
            ),
        ),
    ]));
    // Wait until the big batch is in flight (its connection thread first
    // has to read and decode the ~MB request line), then queue a small
    // batch behind it and confirm both are pending before the plug.
    let shard_depth = |c: &mut Client| {
        let stats = c.rpc(&obj(vec![("op", Json::str("stats"))]));
        stats.get("shards").and_then(Json::as_arr).unwrap()[0]
            .get("queue_depth")
            .and_then(Json::as_usize)
            .unwrap()
    };
    for attempt in 0.. {
        if shard_depth(&mut c) >= 1 {
            break;
        }
        assert!(attempt < 2000, "big ingest never reached the shard");
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut queued = Client::connect(addr);
    queued.send_only(&ingest_request("tran", &[["k0", "a1", "b1"]]));
    for attempt in 0.. {
        if shard_depth(&mut c) >= 2 {
            break;
        }
        assert!(
            attempt < 2000,
            "small ingest never queued behind the big one"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // Shutdown while both are outstanding.
    assert_ok(&c.rpc(&obj(vec![("op", Json::str("shutdown"))])));
    // New mutations are refused once shutdown begins.
    assert_code(
        &c.rpc(&ingest_request("tran", &[["k1", "a2", "b2"]])),
        "shutting_down",
    );

    // The in-flight and queued batches still complete and answer.
    assert_ok(&holder.read_response());
    let drained = queued.read_response();
    assert_ok(&drained);
    assert_eq!(drained.get("total").and_then(Json::as_usize), Some(50_001));

    drop((c, holder, queued));
    handle.join().unwrap().unwrap();
}

/// The determinism pin: concurrent clients streaming disjoint batches
/// into one relation land on a state bit-identical to a serial
/// in-process clean of the same batches in server application order
/// (recovered from the `offset` each ingest reply carries) — across
/// shard counts × engine parallelism.
#[test]
fn concurrent_ingest_is_bit_deterministic() {
    // Disjoint four-way split of a workload that exercises all rules:
    // shared keys (FD groups), a1 tuples (constant CFD), k0/k1 (MD hits).
    let client_batches: [Vec<[&str; 3]>; 4] = [
        vec![["k0", "a1", "b9"], ["k1", "a2", "b2"], ["k2", "a1", "b3"]],
        vec![["k0", "a1", "b8"], ["k3", "a4", "b4"]],
        vec![["k1", "a2", "b5"], ["k5", "a1", "b1"], ["k0", "a9", "b9"]],
        vec![["k6", "a6", "b6"], ["k2", "a1", "b2"]],
    ];

    for shards in [1usize, 4] {
        for threads in [1usize, 4] {
            let label = format!("shards={shards} threads={threads}");
            let (addr, handle) = start_daemon(shards, 64);
            let mut c = Client::connect(addr);
            assert_ok(&c.rpc(&open_request("tran", threads)));

            // Each client ingests its batch concurrently; the reply's
            // offset reveals the order the shard serialized them in.
            let mut joins = Vec::new();
            for batch in &client_batches {
                let batch: Vec<[String; 3]> = batch.iter().map(|r| r.map(str::to_string)).collect();
                joins.push(std::thread::spawn(move || {
                    let mut client = Client::connect(addr);
                    let rows: Vec<[&str; 3]> = batch
                        .iter()
                        .map(|r| [r[0].as_str(), r[1].as_str(), r[2].as_str()])
                        .collect();
                    let resp = client.rpc(&ingest_request("tran", &rows));
                    let offset = resp.get("offset").and_then(Json::as_usize);
                    (
                        offset,
                        rows.iter()
                            .map(|r| r.map(str::to_string))
                            .collect::<Vec<_>>(),
                        resp,
                    )
                }));
            }
            let mut applied: Vec<(usize, Vec<[String; 3]>)> = joins
                .into_iter()
                .map(|j| {
                    let (offset, rows, resp) = j.join().unwrap();
                    assert_ok(&resp);
                    (offset.expect("ingest reply carries offset"), rows)
                })
                .collect();
            applied.sort_by_key(|(offset, _)| *offset);

            // Serial reference: the same batches, same order, in process.
            let reference = reference_cleaner(threads);
            let mut state = reference.begin_empty(Phase::Full);
            for (_, rows) in &applied {
                let batch: Vec<Tuple> = rows
                    .iter()
                    .map(|r| Tuple::of_strs(&[&r[0], &r[1], &r[2]], 0.5))
                    .collect();
                reference.clean_delta(&mut state, &batch).unwrap();
            }

            let dump = c.rpc(&obj(vec![
                ("op", Json::str("dump")),
                ("relation", Json::str("tran")),
            ]));
            assert_ok(&dump);
            assert_eq!(
                dump.get("rows"),
                Some(&relation_to_json(state.repaired())),
                "{label}: served state diverged from serial reference"
            );
            assert_eq!(
                dump.get("cost").and_then(Json::as_f64),
                Some(state.cost()),
                "{label}: cost diverged"
            );

            // Check verdicts agree tuple by tuple.
            for tid in 0..state.len() {
                let r = c.rpc(&obj(vec![
                    ("op", Json::str("check")),
                    ("relation", Json::str("tran")),
                    ("tuple", Json::Num(tid as f64)),
                ]));
                assert_eq!(
                    r.get("accepted").and_then(Json::as_bool),
                    Some(state.is_accepted(uniclean::model::TupleId(tid as u32))),
                    "{label}: tuple {tid} verdict diverged"
                );
            }

            assert_ok(&c.rpc(&obj(vec![("op", Json::str("shutdown"))])));
            drop(c);
            handle.join().unwrap().unwrap();
        }
    }
}

/// Distinct relations land on distinct shards (when the hash says so)
/// and serve independently.
#[test]
fn relations_shard_independently() {
    let (addr, handle) = start_daemon(4, 16);
    let mut c = Client::connect(addr);

    // Pick three names placed on at least two distinct shards.
    let names = ["alpha", "beta", "gamma"];
    let mut seen_shards = std::collections::HashSet::new();
    for name in names {
        let open = c.rpc(&open_request(name, 1));
        assert_ok(&open);
        let shard = open.get("shard").and_then(Json::as_usize).unwrap();
        assert_eq!(shard, uniclean::server::shard_for(name, 4));
        seen_shards.insert(shard);
        let r = c.rpc(&ingest_request(name, &[["k0", "a1", "b9"]]));
        assert_ok(&r);
    }
    assert!(seen_shards.len() >= 2, "want some spread: {seen_shards:?}");

    let stats = c.rpc(&obj(vec![("op", Json::str("stats"))]));
    let relations = stats.get("relations").and_then(Json::as_arr).unwrap();
    assert_eq!(relations.len(), 3);
    // Sorted by name for deterministic output.
    let listed: Vec<_> = relations
        .iter()
        .map(|r| r.get("relation").and_then(Json::as_str).unwrap())
        .collect();
    assert_eq!(listed, ["alpha", "beta", "gamma"]);
    // Narrowed stats.
    let one = c.rpc(&obj(vec![
        ("op", Json::str("stats")),
        ("relation", Json::str("beta")),
    ]));
    assert_eq!(
        one.get("relations")
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(1)
    );

    assert_ok(&c.rpc(&obj(vec![("op", Json::str("shutdown"))])));
    drop(c);
    handle.join().unwrap().unwrap();
}

/// `ping` (and its `health` alias) answer liveness without touching any
/// tenant: uptime, relation/shard counts, durability and shutdown state.
#[test]
fn ping_reports_health() {
    let (addr, handle) = start_daemon(2, 16);
    let mut c = Client::connect(addr);
    assert_ok(&c.rpc(&open_request("tran", 1)));

    for op in ["ping", "health"] {
        let r = c.rpc(&obj(vec![("op", Json::str(op))]));
        assert_ok(&r);
        assert!(
            r.get("uptime_seconds").and_then(Json::as_f64).unwrap() >= 0.0,
            "{r}"
        );
        assert_eq!(r.get("relations").and_then(Json::as_usize), Some(1));
        assert_eq!(r.get("shards").and_then(Json::as_usize), Some(2));
        assert_eq!(r.get("durable").and_then(Json::as_bool), Some(false));
        assert_eq!(r.get("shutting_down").and_then(Json::as_bool), Some(false));
        // The similarity kernel dispatch line, for fleet-wide visibility of
        // which SIMD level each box actually runs.
        let kernels = r.get("kernels").and_then(Json::as_str).unwrap();
        assert!(
            kernels.contains("gram-hash=") && kernels.contains("lev-driver="),
            "{kernels}"
        );
        // Memory-only daemon: no recovery ran.
        assert_eq!(r.get("recovery"), Some(&Json::Null));
    }

    assert_ok(&c.rpc(&obj(vec![("op", Json::str("shutdown"))])));
    drop(c);
    handle.join().unwrap().unwrap();
}

/// Exactly one shutdown wins; a second request (pipelined in the same
/// segment, so the connection is still being read) answers a structured
/// `shutting_down` error instead of a duplicate drain.
#[test]
fn shutdown_is_idempotent() {
    let (addr, handle) = start_daemon(1, 8);
    let mut c = Client::connect(addr);
    // One write puts both lines in the reader's buffer together, so the
    // second is dispatched before shutdown tears the connection down.
    c.writer
        .write_all(b"{\"op\":\"shutdown\"}\n{\"op\":\"shutdown\"}\n")
        .unwrap();
    c.writer.flush().unwrap();
    assert_ok(&c.read_response());
    assert_code(&c.read_response(), "shutting_down");
    drop(c);
    handle.join().unwrap().unwrap();
}

/// A request line over the configured byte bound answers a structured
/// `line_too_long` error and drops the connection (framing is lost), with
/// bounded memory and the daemon still serving.
#[test]
fn oversized_lines_are_rejected_with_bounded_memory() {
    let (addr, handle) = start_daemon_with(DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        shards: 1,
        queue_bound: 8,
        max_line_bytes: 4096,
        ..DaemonConfig::default()
    });
    let mut c = Client::connect(addr);
    let huge = format!(
        "{{\"op\":\"ingest\",\"relation\":\"tran\",\"rows\":[{}]}}",
        "1,".repeat(8192)
    );
    let r = c.raw(&huge);
    assert_code(&r, "line_too_long");
    assert_eq!(r.get("max_line_bytes").and_then(Json::as_usize), Some(4096));
    // The connection is closed after the error (EOF, or a reset if the
    // daemon dropped the socket with our excess bytes still unread)...
    let mut line = String::new();
    match c.reader.read_line(&mut line) {
        Ok(0) | Err(_) => {}
        Ok(n) => panic!("expected a closed connection, read {n} more bytes"),
    }
    // ...but the daemon still serves new connections.
    let mut c2 = Client::connect(addr);
    assert_ok(&c2.rpc(&obj(vec![("op", Json::str("ping"))])));
    assert_ok(&c2.rpc(&obj(vec![("op", Json::str("shutdown"))])));
    drop((c, c2));
    handle.join().unwrap().unwrap();
}
