//! Determinism suite for the parallel phase internals: every
//! `parallelism` setting (and both interning modes) must produce a
//! `CleanResult` bit-identical to the single-threaded path — same repaired
//! cells (values, confidences, marks), same fix records in the same order,
//! same cost and acceptance verdict. This is the contract the
//! chunk–merge–apply design (`uniclean::core::parallel`) promises.

mod common;

use std::num::NonZeroUsize;

use proptest::prelude::*;
use uniclean::core::{CleanConfig, CleanResult, Cleaner, MasterSource, Phase};
use uniclean::datagen::{hosp_workload, GenParams};
use uniclean::model::{Value, ValueInterner};

/// Full structural equality of two runs, with float fields compared by
/// bits (a "close enough" comparison would mask order divergence).
fn assert_identical(a: &CleanResult, b: &CleanResult, label: &str) {
    assert_eq!(
        a.repaired.len(),
        b.repaired.len(),
        "{label}: tuple count diverged"
    );
    for (ta, tb) in a.repaired.rows().zip(b.repaired.rows()) {
        for (ca, cb) in ta.cells().zip(tb.cells()) {
            assert_eq!(ca.value, cb.value, "{label}: cell value diverged");
            assert_eq!(
                ca.cf.to_bits(),
                cb.cf.to_bits(),
                "{label}: cell confidence diverged"
            );
            assert_eq!(ca.mark, cb.mark, "{label}: fix mark diverged");
        }
    }
    assert_eq!(
        a.report.records(),
        b.report.records(),
        "{label}: fix report diverged"
    );
    assert_eq!(
        a.cost.to_bits(),
        b.cost.to_bits(),
        "{label}: repair cost diverged"
    );
    assert_eq!(a.consistent, b.consistent, "{label}: acceptance diverged");
    assert_eq!(a.phases.len(), b.phases.len(), "{label}: phase count");
    for (pa, pb) in a.phases.iter().zip(&b.phases) {
        assert_eq!(pa.phase, pb.phase, "{label}: phase order diverged");
        assert_eq!(pa.fixes, pb.fixes, "{label}: phase fix count diverged");
    }
}

fn run(
    rules: &uniclean::rules::RuleSet,
    master: MasterSource,
    d: &uniclean::model::Relation,
    eta: f64,
    threads: usize,
    interning: bool,
    phase: Phase,
) -> CleanResult {
    let cfg = CleanConfig {
        eta,
        parallelism: Some(NonZeroUsize::new(threads).unwrap()),
        interning,
        ..CleanConfig::default()
    };
    Cleaner::builder()
        .rules(rules.clone())
        .master(master)
        .config(cfg)
        .build()
        .expect("valid session")
        .clean(d, phase)
}

#[test]
fn example_1_1_is_thread_count_invariant() {
    let (_, rules, dirty, master) = common::example_1_1();
    let baseline = run(
        &rules,
        MasterSource::external(master.clone()),
        &dirty,
        0.8,
        1,
        true,
        Phase::Full,
    );
    assert!(baseline.consistent);
    assert!(!baseline.report.is_empty());
    for threads in [2, 4, 8] {
        for interning in [true, false] {
            let other = run(
                &rules,
                MasterSource::external(master.clone()),
                &dirty,
                0.8,
                threads,
                interning,
                Phase::Full,
            );
            assert_identical(
                &baseline,
                &other,
                &format!("example 1.1, threads={threads}, interning={interning}"),
            );
        }
    }
}

#[test]
fn example_1_1_self_snapshot_is_thread_count_invariant() {
    let (_, rules, dirty, _) = common::example_1_1();
    let baseline = run(
        &rules,
        MasterSource::SelfSnapshot,
        &dirty,
        0.8,
        1,
        true,
        Phase::Full,
    );
    let parallel = run(
        &rules,
        MasterSource::SelfSnapshot,
        &dirty,
        0.8,
        4,
        true,
        Phase::Full,
    );
    assert_identical(&baseline, &parallel, "example 1.1 self-snapshot");
}

#[test]
fn generated_hosp_1k_is_thread_count_invariant() {
    let w = hosp_workload(&GenParams {
        tuples: 1000,
        master_tuples: 300,
        ..GenParams::default()
    });
    // η = 1.0, the paper's experimental setting: deterministic fixes fire
    // from fully asserted premises, eRepair resolves the rest.
    let baseline = run(
        &w.rules,
        MasterSource::external(w.master.clone()),
        &w.dirty,
        1.0,
        1,
        true,
        Phase::CERepair,
    );
    assert!(
        !baseline.report.is_empty(),
        "workload must exercise both phases"
    );
    for threads in [2, 4] {
        for interning in [true, false] {
            let other = run(
                &w.rules,
                MasterSource::external(w.master.clone()),
                &w.dirty,
                1.0,
                threads,
                interning,
                Phase::CERepair,
            );
            assert_identical(
                &baseline,
                &other,
                &format!("hosp 1k, threads={threads}, interning={interning}"),
            );
        }
    }
}

#[test]
fn full_pipeline_on_hosp_is_thread_count_invariant() {
    // Smaller instance so hRepair's equivalence-class machinery stays fast,
    // but all three phases run.
    let w = hosp_workload(&GenParams {
        tuples: 300,
        master_tuples: 100,
        ..GenParams::default()
    });
    let baseline = run(
        &w.rules,
        MasterSource::external(w.master.clone()),
        &w.dirty,
        1.0,
        1,
        true,
        Phase::Full,
    );
    let parallel = run(
        &w.rules,
        MasterSource::external(w.master.clone()),
        &w.dirty,
        1.0,
        8,
        true,
        Phase::Full,
    );
    assert_identical(&baseline, &parallel, "hosp 300 full pipeline");
}

/// The SIMD dispatch (q-gram hash lanes, bitset Jaro, columnar `~lev`
/// driver) must be a pure performance knob: a forced-scalar run is
/// bit-identical to the auto-dispatched run over the full cleaning matrix —
/// every thread count × interning mode — on a workload exercising every
/// similarity predicate family. This is the same contract
/// `UNICLEAN_FORCE_SCALAR=1` relies on (the CI feature matrix re-runs the
/// suites under it); here the override is flipped programmatically so one
/// process pins both engines against each other.
///
/// The override is process-global, which is safe precisely because of the
/// property under test: any concurrently running test sees either engine,
/// and both produce the same bits.
#[test]
fn forced_scalar_dispatch_is_bit_identical() {
    use uniclean::datagen::dblp_similarity_workload;
    use uniclean::similarity::simd::set_forced_scalar;

    let w = dblp_similarity_workload(&GenParams {
        tuples: 300,
        master_tuples: 120,
        ..GenParams::default()
    });
    for threads in [1, 4] {
        for interning in [true, false] {
            set_forced_scalar(Some(false));
            let auto = run(
                &w.rules,
                MasterSource::external(w.master.clone()),
                &w.dirty,
                1.0,
                threads,
                interning,
                Phase::CERepair,
            );
            set_forced_scalar(Some(true));
            let scalar = run(
                &w.rules,
                MasterSource::external(w.master.clone()),
                &w.dirty,
                1.0,
                threads,
                interning,
                Phase::CERepair,
            );
            set_forced_scalar(None);
            assert!(
                !auto.report.is_empty(),
                "workload must actually exercise the kernels"
            );
            assert_identical(
                &auto,
                &scalar,
                &format!(
                    "dblp similarity, scalar vs auto, threads={threads}, interning={interning}"
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Interner properties (vendored proptest shim).
// ---------------------------------------------------------------------------

/// Build a `Value` from a generated discriminant + payload.
fn value_of(kind: u8, n: i64, s: &str) -> Value {
    match kind % 3 {
        0 => Value::Null,
        1 => Value::int(n),
        _ => Value::str(s),
    }
}

proptest! {
    /// Round-trip: every interned value resolves back to itself, and
    /// re-interning returns the same symbol.
    #[test]
    fn interner_round_trips(
        items in proptest::collection::vec((0u8..3, -50i64..50, "[a-d]{0,6}"), 1..60)
    ) {
        let mut interner = ValueInterner::new();
        let symbols: Vec<_> = items
            .iter()
            .map(|(k, n, s)| interner.intern(&value_of(*k, *n, s)))
            .collect();
        for ((k, n, s), sym) in items.iter().zip(&symbols) {
            let v = value_of(*k, *n, s);
            prop_assert_eq!(interner.resolve(*sym), &v);
            prop_assert_eq!(interner.intern(&v), *sym);
            prop_assert_eq!(interner.get(&v), Some(*sym));
        }
    }

    /// No collisions: distinct values get distinct symbols, equal values
    /// share one, and the symbol space stays dense.
    #[test]
    fn interner_is_collision_free(
        items in proptest::collection::vec((0u8..3, -10i64..10, "[ab]{0,3}"), 1..80)
    ) {
        let mut interner = ValueInterner::new();
        let mut by_value: std::collections::HashMap<Value, _> = std::collections::HashMap::new();
        for (k, n, s) in &items {
            let v = value_of(*k, *n, s);
            let sym = interner.intern(&v);
            if let Some(prev) = by_value.insert(v.clone(), sym) {
                prop_assert_eq!(prev, sym, "equal values must share a symbol");
            }
        }
        // Distinctness + density: as many symbols as distinct values, with
        // indexes 0..len.
        prop_assert_eq!(interner.len(), by_value.len());
        let mut idxs: Vec<usize> = by_value.values().map(|s| s.index()).collect();
        idxs.sort_unstable();
        prop_assert_eq!(idxs, (0..by_value.len()).collect::<Vec<_>>());
    }
}
