//! The `uniclean` command-line tool.
//!
//! ```text
//! uniclean clean    --data d.csv --rules r.rules [--master m.csv] [--out out.csv]
//!                   [--table tran] [--master-table card] [--eta 1.0] [--delta2 0.8]
//!                   [--phase c|ce|full] [--self-match] [--threads n] [--report]
//! uniclean check    --data d.csv --rules r.rules [--master m.csv] …
//! uniclean analyze  --rules r.rules --data d.csv [--master m.csv] …
//! uniclean discover --data d.csv [--max-lhs 2] [--min-support 3]
//! uniclean serve    [--addr 127.0.0.1:7401] [--shards 4] [--queue 64]
//!                   [--data-dir dir] [--snapshot-every 64] [--no-fsync]
//! ```
//!
//! CSV files carry a header row naming the attributes; every column is read
//! as text; the literal `\N` denotes null. Rule files use the textual rule
//! language of `uniclean::rules::parse_rules` (see `--help`).

use std::process::ExitCode;
use std::sync::Arc;

use uniclean::discovery::{discover_constant_cfds, discover_fds, ConstantCfdConfig, FdConfig};
use uniclean::model::csv::{from_csv, to_csv};
use uniclean::model::{Relation, Schema, ValueType};
use uniclean::reasoning::{is_consistent, termination_diagnostics};
use uniclean::rules::{cfd_violations, md_violations, parse_rules, RuleSet, Violation};
use uniclean::{CleanConfig, CleanResult, Cleaner, MasterSource, Phase};

const USAGE: &str = "\
uniclean — unified record matching and data repairing (Fan et al., SIGMOD 2011)

USAGE:
    uniclean <COMMAND> [OPTIONS]

COMMANDS:
    clean      repair --data using --rules (and optionally --master)
    check      list rule violations in --data without repairing
    analyze    static analyses of the rule set: consistency, termination
    discover   mine FDs and constant CFDs from --data
    serve      run the cleaning daemon (line-delimited JSON over TCP)
    promote    flip a standby daemon to serving (see --replicate-from)

COMMON OPTIONS:
    --data <file.csv>          the (dirty) relation; header row names attributes
    --rules <file.rules>       rule file (cfd/md/neg lines; see README)
    --master <file.csv>        master relation (required when rules contain MDs,
                               unless --self-match)
    --table <name>             relation name used in the rule file [default: data]
    --master-table <name>      master relation name in the rule file [default: master]

CLEAN OPTIONS:
    --out <file.csv>           write the repaired relation here (default: stdout)
    --eta <0..1>               confidence threshold η [default: 1.0]
    --delta2 <0..1>            entropy threshold δ2 [default: 0.8]
    --phase <c|ce|full>        run cRepair / +eRepair / all phases [default: full]
    --cf <0..1>                default confidence for every input cell [default: 0]
    --self-match               master-free mode: the data is its own master
    --threads <n>              worker threads for the phase internals
                               [default: all cores; output is identical at any n]
    --no-interning             disable value interning (benchmarking only)
    --delta <b1.csv,b2.csv>    incremental mode: clean --data once, then absorb
                               each batch CSV via clean_delta (same header row);
                               the output is the repaired concatenated relation,
                               bit-identical to recleaning it from scratch
    --report                   print every fix (mark, cell, old → new, rule)
    --explain-plans            print the active similarity kernel dispatch
                               (SIMD level, Jaro matcher, ~lev driver; see
                               UNICLEAN_FORCE_SCALAR) and the master-index
                               access path chosen for each MD (exact /
                               composite / q-gram count / lev count / Jaro /
                               intersection) before cleaning

DISCOVER OPTIONS:
    --max-lhs <n>              maximum FD LHS size [default: 2]
    --min-support <n>          minimum pattern support for constant CFDs [default: 3]

SERVE OPTIONS:
    --addr <host:port>         listen address [default: 127.0.0.1:7401]; port 0
                               picks an ephemeral port (printed at startup)
    --shards <n>               worker shards; relations are placed by
                               hash(relation) % shards [default: 4]
    --queue <n>                per-shard ingest queue bound; a full queue
                               answers busy instead of buffering [default: 64]
    --data-dir <dir>           durable mode: per-tenant write-ahead logs and
                               snapshots under this directory; on startup the
                               daemon recovers every tenant found there
    --snapshot-every <n>       snapshot + compact a tenant's WAL every n
                               logged batches; 0 disables compaction
                               [default: 64]
    --no-fsync                 skip fsync on WAL appends and snapshots
                               (faster; an OS crash may lose acked batches)
    --max-line-bytes <n>       longest accepted request line [default: 64 MiB]
    --replicate-from <addr>    start as a read-only standby streaming the WAL
                               of the primary at <addr>; requires --data-dir;
                               mutations answer `standby` until promoted

PROMOTE OPTIONS:
    --addr <host:port>         the standby daemon to promote; it stops
                               replicating, drains its apply queue, and
                               starts accepting writes

    The protocol is one JSON request per line, one JSON response per line
    (ops: open, ingest, check, dump, stats, ping, close, shutdown, hello,
    promote, repl_list, repl_fetch, repl_ack); see the README \"Serving\",
    \"Durability & recovery\" and \"Replication & failover\" sections.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Tiny `--key value` / `--flag` parser (mirrors the bench harness's).
struct Opts {
    values: std::collections::HashMap<String, String>,
    flags: std::collections::HashSet<String>,
}

impl Opts {
    fn parse(args: &[String]) -> Opts {
        let mut values = std::collections::HashMap::new();
        let mut flags = std::collections::HashSet::new();
        let mut i = 0;
        while i < args.len() {
            if let Some(key) = args[i].strip_prefix("--") {
                if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                    values.insert(key.to_string(), args[i + 1].clone());
                    i += 2;
                } else {
                    flags.insert(key.to_string());
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
        Opts { values, flags }
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(|s| s.as_str())
    }

    fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    fn flag(&self, key: &str) -> bool {
        self.flags.contains(key)
    }

    fn get_f64(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects a number, got `{v}`")),
        }
    }

    fn get_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects an integer, got `{v}`")),
        }
    }
}

/// Dispatch; returns the text to print on success.
fn run(args: &[String]) -> Result<String, String> {
    let Some(cmd) = args.first() else {
        return Err("no command given".into());
    };
    let opts = Opts::parse(&args[1..]);
    match cmd.as_str() {
        "clean" => cmd_clean(&opts),
        "check" => cmd_check(&opts),
        "analyze" => cmd_analyze(&opts),
        "discover" => cmd_discover(&opts),
        "serve" => cmd_serve(&opts),
        "promote" => cmd_promote(&opts),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(format!("unknown command `{other}`")),
    }
}

fn load_relation(path: &str, table: &str, default_cf: f64) -> Result<Relation, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let header_cols = text
        .lines()
        .next()
        .map(|l| l.split(',').count())
        .unwrap_or(0);
    let types = vec![ValueType::Str; header_cols];
    from_csv(table, &types, &text, default_cf).map_err(|e| format!("{path}: {e}"))
}

struct LoadedInput {
    rules: RuleSet,
    data: Relation,
    master: Option<Relation>,
}

fn load_input(opts: &Opts, default_cf: f64) -> Result<LoadedInput, String> {
    let data_path = opts.require("data")?;
    let rules_path = opts.require("rules")?;
    let table = opts.get_or("table", "data");
    let master_table = opts.get_or("master-table", "master");

    let data = load_relation(data_path, table, default_cf)?;
    let master = match opts.get("master") {
        Some(p) => Some(load_relation(p, master_table, 1.0)?),
        None if opts.flag("self-match") => {
            // Self-matching: the master schema mirrors the data schema.
            let schema: Arc<Schema> = Arc::new(Schema::new(
                master_table,
                data.schema().attrs().iter().map(|a| (a.name.clone(), a.ty)),
            ));
            Some(Relation::with_schema(schema, &data))
        }
        None => None,
    };

    let rule_text = std::fs::read_to_string(rules_path)
        .map_err(|e| format!("cannot read {rules_path}: {e}"))?;
    let parsed = parse_rules(
        &rule_text,
        data.schema(),
        master.as_ref().map(|m| m.schema()),
    )
    .map_err(|e| e.to_string())?;
    let rules = RuleSet::try_new(
        data.schema().clone(),
        master.as_ref().map(|m| m.schema().clone()),
        parsed.cfds,
        parsed.positive_mds,
        parsed.negative_mds,
    )
    .map_err(|e| e.to_string())?;
    Ok(LoadedInput {
        rules,
        data,
        master,
    })
}

fn parse_phase(s: &str) -> Result<Phase, String> {
    match s {
        "c" => Ok(Phase::CRepair),
        "ce" => Ok(Phase::CERepair),
        "full" => Ok(Phase::Full),
        other => Err(format!("--phase expects c|ce|full, got `{other}`")),
    }
}

fn cmd_clean(opts: &Opts) -> Result<String, String> {
    let default_cf = opts.get_f64("cf", 0.0)?;
    let LoadedInput {
        rules,
        data,
        master,
    } = load_input(opts, default_cf)?;
    let parallelism = match opts.get("threads") {
        None => None, // auto: all available cores
        Some(v) => Some(
            v.parse::<std::num::NonZeroUsize>()
                .map_err(|_| format!("--threads expects a positive integer, got `{v}`"))?,
        ),
    };
    let cfg = CleanConfig {
        eta: opts.get_f64("eta", 1.0)?,
        delta_entropy: opts.get_f64("delta2", 0.8)?,
        parallelism,
        interning: !opts.flag("no-interning"),
        ..CleanConfig::default()
    };
    let phase = parse_phase(opts.get_or("phase", "full"))?;

    // One builder path for all three master modes; every misuse (bad
    // thresholds, MDs without master, schema mismatch) surfaces as a typed
    // error rendered on stderr instead of a panic. Rules and master move
    // into the session — no copies.
    let master = if opts.flag("self-match") {
        MasterSource::SelfSnapshot
    } else {
        match master {
            Some(dm) => MasterSource::external(dm),
            None => MasterSource::None,
        }
    };
    let cleaner = Cleaner::builder()
        .rules(rules)
        .master(master)
        .config(cfg)
        .build()
        .map_err(|e| e.to_string())?;

    let mut out = String::new();
    if opts.flag("explain-plans") {
        let prepared = cleaner.prepared();
        out.push_str(&format!(
            "similarity kernels: {}\n",
            uniclean::similarity::simd::dispatch_info()
        ));
        match prepared.master_index() {
            Some(idx) => {
                out.push_str("access paths:\n");
                for (i, md) in prepared.rules().mds().iter().enumerate() {
                    out.push_str(&format!("  {}: {}\n", md.name(), idx.describe_plan(i, md)));
                }
            }
            None => out.push_str(
                "access paths: none prebuilt (self-snapshot mode re-plans per phase, \
                 and CFD-only rule sets need no master index)\n",
            ),
        }
    }
    let result = match opts.get("delta") {
        None => cleaner.clean(&data, phase),
        Some(batches) => {
            // Incremental mode: clean the base once, then absorb each
            // batch through the persistent RepairState.
            let (mut state, first) = cleaner.begin(&data, phase);
            out.push_str(&format!(
                "base: {} tuples, {} fixes, consistent: {}\n",
                data.len(),
                first.report.len(),
                first.consistent
            ));
            for path in batches.split(',').filter(|p| !p.is_empty()) {
                let batch = load_relation(path, opts.get_or("table", "data"), default_cf)?;
                // The library API takes schema-less tuples; the CLI holds
                // both headers, so a reordered or renamed batch header must
                // fail here instead of silently feeding swapped columns.
                let (want, got) = (data.schema(), batch.schema());
                if want
                    .attrs()
                    .iter()
                    .map(|a| &a.name)
                    .ne(got.attrs().iter().map(|a| &a.name))
                {
                    return Err(format!(
                        "{path}: batch header ({}) does not match the data header ({})",
                        got.attrs()
                            .iter()
                            .map(|a| a.name.as_str())
                            .collect::<Vec<_>>()
                            .join(","),
                        want.attrs()
                            .iter()
                            .map(|a| a.name.as_str())
                            .collect::<Vec<_>>()
                            .join(","),
                    ));
                }
                let escalations_before = state.escalations();
                let started = std::time::Instant::now();
                let r = cleaner
                    .clean_delta(&mut state, &batch.to_tuples())
                    .map_err(|e| format!("{path}: {e}"))?;
                out.push_str(&format!(
                    "delta {path}: +{} tuples, {} fixes, consistent: {}{} ({:.3}s)\n",
                    batch.len(),
                    r.report.len(),
                    r.consistent,
                    if state.escalations() > escalations_before {
                        " [escalated to full reclean]"
                    } else {
                        ""
                    },
                    started.elapsed().as_secs_f64(),
                ));
            }
            // The session log re-records eRepair/hRepair fixes re-derived
            // on every delta call; summarize (and --report) each cell's
            // final fix once so the counts are not inflated.
            let mut report = uniclean::core::FixReport::new();
            for rec in state.log().final_states() {
                report.push(rec.clone());
            }
            CleanResult {
                repaired: state.repaired().clone(),
                report,
                cost: state.cost(),
                consistent: state.consistent(),
                phases: Vec::new(),
            }
        }
    };

    let (det, rel, pos) = result.fix_counts();
    out.push_str(&format!(
        "applied {} fixes ({det} deterministic, {rel} reliable, {pos} possible); \
         repair cost {:.3}; consistent: {}\n",
        result.report.len(),
        result.cost,
        result.consistent
    ));
    if opts.flag("report") {
        for fix in result.report.records() {
            out.push_str(&format!(
                "  [{}] {}.{}: {} -> {}   (rule {})\n",
                fix.mark,
                fix.tuple,
                data.schema().attr_name(fix.attr),
                fix.old,
                fix.new,
                fix.rule
            ));
        }
    }
    let csv = to_csv(&result.repaired);
    match opts.get("out") {
        Some(path) => {
            std::fs::write(path, csv).map_err(|e| format!("cannot write {path}: {e}"))?;
            out.push_str(&format!("repaired relation written to {path}\n"));
        }
        None => out.push_str(&csv),
    }
    Ok(out)
}

fn cmd_check(opts: &Opts) -> Result<String, String> {
    let input = load_input(opts, 0.0)?;
    let mut out = String::new();
    let cv = cfd_violations(input.rules.cfds(), &input.data, false);
    let mut by_rule: std::collections::BTreeMap<&str, usize> = Default::default();
    for v in &cv {
        let name = match v {
            Violation::ConstantCfd { rule, .. } | Violation::VariableCfd { rule, .. } => {
                input.rules.cfds()[*rule].name()
            }
            Violation::Md { rule, .. } => input.rules.mds()[*rule].name(),
        };
        *by_rule.entry(name).or_default() += 1;
    }
    let mut md_count = 0usize;
    if let Some(master) = &input.master {
        let mv = md_violations(input.rules.mds(), &input.data, master, false);
        md_count = mv.len();
        for v in &mv {
            if let Violation::Md { rule, .. } = v {
                *by_rule.entry(input.rules.mds()[*rule].name()).or_default() += 1;
            }
        }
    }
    out.push_str(&format!(
        "{} CFD violation(s), {} MD violation(s)\n",
        cv.len(),
        md_count
    ));
    for (rule, n) in by_rule {
        out.push_str(&format!("  {rule}: {n}\n"));
    }
    Ok(out)
}

fn cmd_analyze(opts: &Opts) -> Result<String, String> {
    let input = load_input(opts, 0.0)?;
    let mut out = String::new();
    out.push_str(&format!(
        "rules: {} CFDs, {} MDs (normalized)\n",
        input.rules.cfds().len(),
        input.rules.mds().len()
    ));
    let consistent = is_consistent(&input.rules.without_mds(), None);
    out.push_str(&format!("CFD core consistent: {consistent}\n"));
    let report = termination_diagnostics(&input.rules);
    out.push_str(&format!(
        "dependency graph acyclic: {}\nguaranteed terminating: {}\n",
        report.dep_graph_acyclic, report.guaranteed_terminating
    ));
    if !report.constant_conflicts.is_empty() {
        out.push_str("oscillating constant-CFD pairs (Example 4.6):\n");
        for (i, j) in &report.constant_conflicts {
            out.push_str(&format!(
                "  {} <-> {}\n",
                input.rules.cfds()[*i].name(),
                input.rules.cfds()[*j].name()
            ));
        }
    }
    Ok(out)
}

fn cmd_discover(opts: &Opts) -> Result<String, String> {
    let data_path = opts.require("data")?;
    let table = opts.get_or("table", "data");
    let data = load_relation(data_path, table, 0.0)?;
    let max_lhs = opts.get_usize("max-lhs", 2)?;
    let min_support = opts.get_usize("min-support", 3)?;
    let fds = discover_fds(
        &data,
        &FdConfig {
            max_lhs,
            min_support_pairs: 2,
        },
    );
    let ccfds = discover_constant_cfds(
        &data,
        &ConstantCfdConfig {
            min_support,
            ..Default::default()
        },
    );
    let mut out = String::new();
    out.push_str(&format!(
        "# {} FDs, {} constant CFDs mined from {data_path}\n",
        fds.len(),
        ccfds.len()
    ));
    for fd in fds.iter().chain(ccfds.iter()) {
        out.push_str(&format!("cfd {}\n", strip_name(fd)));
    }
    Ok(out)
}

fn cmd_serve(opts: &Opts) -> Result<String, String> {
    let defaults = uniclean::server::DaemonConfig::default();
    let config = uniclean::server::DaemonConfig {
        addr: opts.get_or("addr", "127.0.0.1:7401").to_string(),
        shards: opts.get_usize("shards", 4)?,
        queue_bound: opts.get_usize("queue", 64)?,
        data_dir: opts.get("data-dir").map(std::path::PathBuf::from),
        snapshot_every: opts.get_usize("snapshot-every", defaults.snapshot_every as usize)? as u64,
        fsync: !opts.flag("no-fsync"),
        max_line_bytes: opts.get_usize("max-line-bytes", defaults.max_line_bytes)?,
        replicate_from: opts.get("replicate-from").map(str::to_string),
    };
    if config.shards == 0 || config.queue_bound == 0 {
        return Err("--shards and --queue must be positive".into());
    }
    let daemon = uniclean::server::Daemon::bind(config.clone())
        .map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
    // Announce before blocking so scripts can await readiness on stdout.
    let durability = match &config.data_dir {
        Some(dir) => format!(
            ", durable at {} (snapshot every {}, fsync {})",
            dir.display(),
            config.snapshot_every,
            if config.fsync { "on" } else { "off" }
        ),
        None => ", in-memory".to_string(),
    };
    let role = match &config.replicate_from {
        Some(primary) => format!(", standby of {primary}"),
        None => String::new(),
    };
    println!(
        "uniclean serve: listening on {} ({} shards, queue bound {}{durability}{role})",
        daemon.local_addr(),
        config.shards,
        config.queue_bound
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    daemon.run().map_err(|e| format!("serve failed: {e}"))?;
    Ok("uniclean serve: shut down cleanly\n".to_string())
}

fn cmd_promote(opts: &Opts) -> Result<String, String> {
    let addr = opts.require("addr")?;
    // `promote_standby` targets the configured standby address, which is
    // exactly the node named on the command line.
    let mut client =
        uniclean::client::Client::new(uniclean::client::ClientConfig::new(addr).with_standby(addr));
    let resp = client
        .promote_standby()
        .map_err(|e| format!("promote failed: {e}"))?;
    let relations = resp
        .get("relations")
        .and_then(uniclean::model::Json::as_u64)
        .unwrap_or(0);
    Ok(format!(
        "uniclean promote: {addr} is now the primary ({relations} relations)\n"
    ))
}

/// Render a CFD as a rule-file line (the `Display` form already matches the
/// parser's grammar).
fn strip_name(cfd: &uniclean::rules::Cfd) -> String {
    cfd.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, content: &str) -> String {
        let dir = std::env::temp_dir().join("uniclean-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{}-{name}", std::process::id()));
        std::fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn clean_repairs_a_csv_end_to_end() {
        let data = write_temp("d.csv", "AC,city\n131,Ldn\n020,Ldn\n");
        let rules = write_temp("r.rules", "cfd phi1: data([AC=131] -> [city=Edi])");
        let out = run(&argv(&[
            "clean", "--data", &data, "--rules", &rules, "--report",
        ]))
        .unwrap();
        assert!(out.contains("applied 1 fixes"), "{out}");
        assert!(out.contains("consistent: true"), "{out}");
        assert!(out.contains("131,Edi"), "{out}");
        assert!(out.contains("020,Ldn"), "{out}");
        assert!(out.contains("Ldn -> Edi"), "{out}");
    }

    #[test]
    fn clean_delta_mode_absorbs_batches() {
        let data = write_temp("dd0.csv", "AC,city\n131,Ldn\n020,Ldn\n");
        let b1 = write_temp("dd1.csv", "AC,city\n131,Lds\n");
        let b2 = write_temp("dd2.csv", "AC,city\n020,Edi\n");
        let rules = write_temp(
            "rdd.rules",
            "cfd phi1: data([AC=131] -> [city=Edi])\ncfd phi2: data([AC=020] -> [city=Ldn])",
        );
        let out = run(&argv(&[
            "clean",
            "--data",
            &data,
            "--rules",
            &rules,
            "--delta",
            &format!("{b1},{b2}"),
        ]))
        .unwrap();
        assert!(out.contains("base: 2 tuples"), "{out}");
        assert!(out.contains(&format!("delta {b1}: +1 tuples")), "{out}");
        assert!(out.contains(&format!("delta {b2}: +1 tuples")), "{out}");
        // The final CSV carries all four repaired tuples, batches included.
        assert_eq!(out.matches("131,Edi").count(), 2, "{out}");
        assert_eq!(out.matches("020,Ldn").count(), 2, "{out}");
        assert!(out.contains("consistent: true"), "{out}");
    }

    #[test]
    fn clean_delta_rejects_mismatched_batch_headers() {
        let data = write_temp("dh0.csv", "AC,city\n131,Ldn\n");
        let bad = write_temp("dh1.csv", "city,AC\nLdn,131\n");
        let rules = write_temp("rdh.rules", "cfd phi1: data([AC=131] -> [city=Edi])");
        let err = run(&argv(&[
            "clean", "--data", &data, "--rules", &rules, "--delta", &bad,
        ]))
        .unwrap_err();
        assert!(err.contains("does not match the data header"), "{err}");
    }

    #[test]
    fn clean_with_master_applies_mds() {
        let data = write_temp("dm.csv", "LN,phn\nBrady,000\n");
        let master = write_temp("m.csv", "LN,tel\nBrady,3887644\n");
        let rules = write_temp(
            "rm.rules",
            "md psi: data[LN] = master[LN] -> data[phn] <=> master[tel]",
        );
        let out = run(&argv(&[
            "clean", "--data", &data, "--rules", &rules, "--master", &master,
        ]))
        .unwrap();
        assert!(out.contains("Brady,3887644"), "{out}");
    }

    #[test]
    fn self_match_flag_builds_a_snapshot_master() {
        let data = write_temp(
            "ds.csv",
            "LN,city,AC,phn\nBrady,Ldn,020,111\nBrady,Ldn,020,999\n",
        );
        let rules = write_temp(
            "rs.rules",
            "md psi: data[LN] = master[LN] AND data[city] = master[city] -> data[phn] <=> master[phn]",
        );
        // With cf 1.0 everywhere both records are asserted; the heuristic
        // tail resolves the phone conflict one way or the other.
        let out = run(&argv(&[
            "clean",
            "--data",
            &data,
            "--rules",
            &rules,
            "--self-match",
            "--cf",
            "0",
            "--eta",
            "0.8",
        ]))
        .unwrap();
        assert!(out.contains("consistent: true"), "{out}");
    }

    #[test]
    fn explain_plans_prints_kernel_dispatch_and_access_paths() {
        let data = write_temp("dp.csv", "LN,phn\nBrady,000\n");
        let master = write_temp("mp.csv", "LN,tel\nBrady,3887644\n");
        let rules = write_temp(
            "rp.rules",
            "md psi: data[LN] ~lev(1) master[LN] -> data[phn] <=> master[tel]",
        );
        let out = run(&argv(&[
            "clean",
            "--data",
            &data,
            "--rules",
            &rules,
            "--master",
            &master,
            "--explain-plans",
        ]))
        .unwrap();
        // The dispatch line names every kernel choice plus the detected
        // SIMD level, whatever this machine happens to support.
        assert!(out.contains("similarity kernels: gram-hash="), "{out}");
        assert!(
            out.contains("jaro=") && out.contains("lev-driver="),
            "{out}"
        );
        assert!(out.contains("access paths:"), "{out}");
        assert!(out.contains("lev-count"), "{out}");
    }

    #[test]
    fn check_counts_violations_per_rule() {
        let data = write_temp("dc.csv", "AC,city\n131,Ldn\n131,Ldn\n020,Edi\n");
        let rules = write_temp(
            "rc.rules",
            "cfd phi1: data([AC=131] -> [city=Edi])\ncfd phi2: data([AC=020] -> [city=Ldn])",
        );
        let out = run(&argv(&["check", "--data", &data, "--rules", &rules])).unwrap();
        assert!(out.contains("3 CFD violation(s)"), "{out}");
        assert!(out.contains("phi1: 2"), "{out}");
        assert!(out.contains("phi2: 1"), "{out}");
    }

    #[test]
    fn analyze_flags_oscillators() {
        let data = write_temp("da.csv", "AC,post,city\n131,X,Edi\n");
        let rules = write_temp(
            "ra.rules",
            "cfd a: data([AC=131] -> [city=Edi])\ncfd b: data([post=X] -> [city=Ldn])",
        );
        let out = run(&argv(&["analyze", "--data", &data, "--rules", &rules])).unwrap();
        assert!(out.contains("guaranteed terminating: false"), "{out}");
        assert!(out.contains("a <-> b"), "{out}");
    }

    #[test]
    fn discover_emits_parseable_rules() {
        let data = write_temp(
            "dd.csv",
            "City,State\nBoston,MA\nBoston,MA\nBoston,MA\nChicago,IL\nChicago,IL\nChicago,IL\n",
        );
        let out = run(&argv(&["discover", "--data", &data, "--min-support", "3"])).unwrap();
        assert!(out.contains("FDs"), "{out}");
        // Every emitted rule line must parse back.
        let schema = Schema::of_strings("data", &["City", "State"]);
        let rule_lines: String = out
            .lines()
            .filter(|l| l.starts_with("cfd "))
            .collect::<Vec<_>>()
            .join("\n");
        let parsed = parse_rules(&rule_lines, &schema, None).unwrap();
        assert!(!parsed.cfds.is_empty());
    }

    #[test]
    fn builder_misuse_is_reported_not_panicked() {
        // Out-of-range threshold.
        let data = write_temp("de.csv", "AC,city\n131,Ldn\n");
        let rules = write_temp("re.rules", "cfd phi1: data([AC=131] -> [city=Edi])");
        let err = run(&argv(&[
            "clean", "--data", &data, "--rules", &rules, "--eta", "2.0",
        ]))
        .unwrap_err();
        assert!(err.contains("eta"), "{err}");
        // MDs without a master relation.
        let data = write_temp("dn.csv", "LN,phn\nBrady,000\n");
        let rules = write_temp(
            "rn.rules",
            "md psi: data[LN] = master[LN] -> data[phn] <=> master[tel]",
        );
        let err = run(&argv(&["clean", "--data", &data, "--rules", &rules])).unwrap_err();
        assert!(err.contains("master"), "{err}");
    }

    #[test]
    fn missing_options_produce_helpful_errors() {
        let err = run(&argv(&["clean"])).unwrap_err();
        assert!(err.contains("--data"), "{err}");
        let err = run(&argv(&["bogus"])).unwrap_err();
        assert!(err.contains("unknown command"), "{err}");
        let err = run(&argv(&[])).unwrap_err();
        assert!(err.contains("no command"), "{err}");
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&argv(&["help"])).unwrap();
        assert!(out.contains("USAGE"));
        assert!(out.contains("discover"));
    }

    #[test]
    fn clean_writes_output_file() {
        let data = write_temp("do.csv", "AC,city\n131,Ldn\n");
        let rules = write_temp("ro.rules", "cfd phi1: data([AC=131] -> [city=Edi])");
        let out_path = write_temp("out.csv", "");
        let out = run(&argv(&[
            "clean", "--data", &data, "--rules", &rules, "--out", &out_path,
        ]))
        .unwrap();
        assert!(out.contains("written to"), "{out}");
        let written = std::fs::read_to_string(&out_path).unwrap();
        assert!(written.contains("131,Edi"), "{written}");
    }
}
