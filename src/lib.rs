//! # UniClean
//!
//! A from-scratch Rust reproduction of **"Interaction between Record
//! Matching and Data Repairing"** (Fan, Ma, Tang, Yu — SIGMOD 2011; extended
//! JDIQ version), a data-cleaning system that *unifies* record matching
//! (matching dependencies against master data) and data repairing
//! (conditional functional dependencies) into one rule-based process.
//!
//! The public API is the [`Cleaner`] session: an owned, reusable, thread-
//! shareable engine built once from rules + a [`MasterSource`] + a
//! [`CleanConfig`], then applied to any number of dirty relations.
//! Construction is fallible and typed — every misuse is a [`CleanError`],
//! never a panic.
//!
//! ## Quickstart
//!
//! ```
//! use uniclean::{CleanConfig, Cleaner, MasterSource, Phase};
//! use uniclean::model::{Relation, Schema, Tuple, TupleId, Value};
//! use uniclean::rules::{parse_rules, RuleSet};
//!
//! // A CFD in the paper's notation: area code 131 means Edinburgh.
//! let tran = Schema::of_strings("tran", &["AC", "city"]);
//! let parsed = parse_rules("cfd phi1: tran([AC=131] -> [city=Edi])", &tran, None)?;
//! let rules = RuleSet::cfds_only(tran.clone(), parsed.cfds);
//!
//! // Build a session. CFD-only rules need no master data; record matching
//! // would use `.master(MasterSource::external(master_relation))` or
//! // `MasterSource::SelfSnapshot` for master-free deduplication.
//! let cleaner = Cleaner::builder()
//!     .rules(rules)
//!     .master(MasterSource::None)
//!     .config(CleanConfig::default())
//!     .build()?;
//!
//! // One dirty tuple; clean it through all three phases.
//! let dirty = Relation::new(tran, vec![Tuple::of_strs(&["131", "Ldn"], 0.5)]);
//! let result = cleaner.clean(&dirty, Phase::Full);
//!
//! assert!(result.consistent);
//! assert_eq!(
//!     result.repaired.tuple(TupleId(0)).value(uniclean::model::AttrId(1)),
//!     &Value::str("Edi"),
//! );
//! # Ok::<(), uniclean::CleanError>(())
//! ```
//!
//! Builder misuse is an `Err`, not a crash:
//!
//! ```
//! use uniclean::{CleanConfig, Cleaner, CleanError, MasterSource};
//! use uniclean::model::Schema;
//! use uniclean::rules::{parse_rules, RuleSet};
//!
//! let tran = Schema::of_strings("tran", &["LN", "phn"]);
//! let card = Schema::of_strings("card", &["LN", "tel"]);
//! let parsed = parse_rules("md m: tran[LN] = card[LN] -> tran[phn] <=> card[tel]", &tran, Some(&card)).unwrap();
//! let rules = RuleSet::new(tran, Some(card), vec![], parsed.positive_mds, vec![]);
//!
//! // MDs need master data: `MasterSource::None` is a typed error.
//! let err = Cleaner::builder().rules(rules).build().unwrap_err();
//! assert_eq!(err, CleanError::MdsWithoutMaster);
//! ```
//!
//! ## Migrating from the pre-0.2 API
//!
//! `UniClean::new(&rules, Some(&master), cfg)` and
//! `clean_without_master(&rules, &d, cfg, phase)` still compile (as
//! deprecated shims) but panic on bad input. Their replacements:
//!
//! | Before | After |
//! |---|---|
//! | `UniClean::new(&rules, Some(&dm), cfg)` | `Cleaner::builder().rules(rules).master(MasterSource::external(dm)).config(cfg).build()?` |
//! | `UniClean::new(&rules, None, cfg)` | `Cleaner::builder().rules(rules).config(cfg).build()?` |
//! | `clean_without_master(&rules, &d, cfg, ph)` | `Cleaner::builder().rules(rules).master(MasterSource::SelfSnapshot).config(cfg).build()?.clean(&d, ph)` |
//! | `result.phase_seconds[i]` | `result.phase_seconds()[i]`, or a [`PhaseObserver`] / [`PhaseTimings`] passed to [`Cleaner::clean_observed`] |
//!
//! ## Workspace layout
//!
//! This façade crate re-exports the workspace crates under stable paths:
//!
//! * [`model`] — schemas, confidence-annotated tuples, relations, cost model;
//! * [`similarity`] — similarity predicates, generalized suffix tree, top-l
//!   LCS blocking;
//! * [`rules`] — CFDs and (positive/negative) MDs, satisfaction, violations,
//!   parsing;
//! * [`reasoning`] — consistency / implication / termination / determinism
//!   analyses (§4 of the paper);
//! * [`core`] — the three cleaning phases (`cRepair`, `eRepair`, `hRepair`)
//!   and the [`Cleaner`] session;
//! * [`server`] — cleaning-as-a-service: a sharded daemon hosting named
//!   relations with streaming ingest and online violation queries over
//!   line-delimited JSON/TCP (`uniclean serve`);
//! * [`baselines`] — SortN matching and Quaid repairing, the paper's
//!   comparators;
//! * [`datagen`] — synthetic HOSP / DBLP / TPC-H-like workloads with noise,
//!   duplicates and ground truth;
//! * [`metrics`] — precision / recall / F-measure for both tasks.
//!
//! See `examples/quickstart.rs` for the paper's running example (the credit
//! card fraud of Example 1.1) executed end to end, and the `uniclean` CLI
//! (`src/bin/uniclean.rs`) for file-based cleaning
//! (`uniclean clean --data d.csv --rules r.rules --master m.csv`).

pub use uniclean_baselines as baselines;
pub use uniclean_client as client;
pub use uniclean_core as core;
pub use uniclean_datagen as datagen;
pub use uniclean_discovery as discovery;
pub use uniclean_metrics as metrics;
pub use uniclean_model as model;
pub use uniclean_reasoning as reasoning;
pub use uniclean_rules as rules;
pub use uniclean_server as server;
pub use uniclean_similarity as similarity;

// The session API is the front door — re-export it at the crate root so
// `use uniclean::{Cleaner, MasterSource, Phase}` is all a caller needs.
pub use uniclean_core::{
    CleanConfig, CleanError, CleanResult, Cleaner, CleanerBuilder, ConfigError, MasterSource,
    NoOpObserver, Phase, PhaseObserver, PhaseStats, PhaseTimings, PreparedCleaner, RepairState,
    TupleViolation, ViolationKind,
};
