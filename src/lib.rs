//! # UniClean
//!
//! A from-scratch Rust reproduction of **"Interaction between Record
//! Matching and Data Repairing"** (Fan, Ma, Tang, Yu — SIGMOD 2011; extended
//! JDIQ version), a data-cleaning system that *unifies* record matching
//! (matching dependencies against master data) and data repairing
//! (conditional functional dependencies) into one rule-based process.
//!
//! This façade crate re-exports the workspace crates under stable paths:
//!
//! * [`model`] — schemas, confidence-annotated tuples, relations, cost model;
//! * [`similarity`] — similarity predicates, generalized suffix tree, top-l
//!   LCS blocking;
//! * [`rules`] — CFDs and (positive/negative) MDs, satisfaction, violations,
//!   parsing;
//! * [`reasoning`] — consistency / implication / termination / determinism
//!   analyses (§4 of the paper);
//! * [`core`] — the three cleaning phases (`cRepair`, `eRepair`, `hRepair`)
//!   and the [`core::pipeline::UniClean`] orchestrator;
//! * [`baselines`] — SortN matching and Quaid repairing, the paper's
//!   comparators;
//! * [`datagen`] — synthetic HOSP / DBLP / TPC-H-like workloads with noise,
//!   duplicates and ground truth;
//! * [`metrics`] — precision / recall / F-measure for both tasks.
//!
//! ## Quickstart
//!
//! ```
//! use uniclean::core::{CleanConfig, Phase, UniClean};
//! use uniclean::model::{Relation, Schema, Tuple, TupleId, Value};
//! use uniclean::rules::{parse_rules, RuleSet};
//!
//! // A CFD in the paper's notation: area code 131 means Edinburgh.
//! let tran = Schema::of_strings("tran", &["AC", "city"]);
//! let parsed = parse_rules("cfd phi1: tran([AC=131] -> [city=Edi])", &tran, None).unwrap();
//! let rules = RuleSet::cfds_only(tran.clone(), parsed.cfds);
//!
//! // One dirty tuple; clean it through all three phases.
//! let dirty = Relation::new(tran, vec![Tuple::of_strs(&["131", "Ldn"], 0.5)]);
//! let uni = UniClean::new(&rules, None, CleanConfig::default());
//! let result = uni.clean(&dirty, Phase::Full);
//!
//! assert!(result.consistent);
//! assert_eq!(
//!     result.repaired.tuple(TupleId(0)).value(uniclean::model::AttrId(1)),
//!     &Value::str("Edi"),
//! );
//! ```
//!
//! See `examples/quickstart.rs` for the paper's running example (the credit
//! card fraud of Example 1.1) executed end to end, and the `uniclean` CLI
//! (`src/bin/uniclean.rs`) for file-based cleaning
//! (`uniclean clean --data d.csv --rules r.rules --master m.csv`).

pub use uniclean_baselines as baselines;
pub use uniclean_core as core;
pub use uniclean_datagen as datagen;
pub use uniclean_discovery as discovery;
pub use uniclean_metrics as metrics;
pub use uniclean_model as model;
pub use uniclean_reasoning as reasoning;
pub use uniclean_rules as rules;
pub use uniclean_similarity as similarity;
